//! Cache-key stability goldens and crash-safety of the run cache.
//!
//! The golden constants pin the content-addressed cell keys for a fixed
//! experiment matrix. They must only change when the cache format changes
//! *intentionally* — in which case bump [`sim::cache::CACHE_EPOCH`] in the
//! same commit and refresh the constants below. An accidental key change
//! (a refactor that perturbs canonicalization) silently invalidates every
//! cache on disk, so this test treats any drift as a failure.

use sim::cache::{cell_key, RunCache, CACHE_EPOCH};
use sim::experiment::{AttackChoice, Experiment};
use sim::spec::SweepSpec;

/// The pinned matrix: one golden per canonicalization feature (defaults,
/// parameter overrides, tailored-attack resolution, engine/seed knobs).
fn golden_matrix() -> Vec<(&'static str, Experiment, &'static str)> {
    vec![
        (
            "defaults",
            Experiment::new("mcf_like").tracker("para"),
            "532bbf365a9ad9615e9bba3c06d860e3",
        ),
        (
            "param-override",
            Experiment::new("mcf_like").tracker("hydra").tracker_param("rcc_entries", 4096i64),
            "aeaf43d27c6fceaf69452897db277db5",
        ),
        (
            "tailored-attack",
            Experiment::new("libquantum_like").tracker("dapper-s").attack(AttackChoice::Tailored),
            "c0c8211340fa096157f37d81079b25ad",
        ),
        (
            "event-driven-seeded",
            Experiment::new("gups_like")
                .tracker("comet")
                .engine(sim::Engine::EventDriven)
                .seed(0xFEED)
                .nrh(750),
            "36c9f421c0dab90a1115e1baa27ada74",
        ),
    ]
}

#[test]
fn cell_keys_are_stable_across_releases() {
    assert_eq!(CACHE_EPOCH, 1, "epoch bumped: refresh the golden keys below in the same commit");
    for (label, experiment, golden) in golden_matrix() {
        let key = cell_key(&experiment).expect("matrix cells are cacheable").key;
        assert_eq!(
            key, golden,
            "cell key drifted for '{label}': either revert the canonicalization \
             change or bump CACHE_EPOCH and refresh this golden"
        );
    }
}

#[test]
fn cell_keys_ignore_threads_but_track_geometry() {
    // Threads is an execution knob: the sharded executor is bit-identical
    // to sequential, so a sequential warm-up and a sharded re-run must
    // share one cache entry.
    let base = Experiment::new("mcf_like").tracker("dapper-h");
    let seq = cell_key(&base.clone().threads(sim::Threads::Seq)).expect("cacheable").key;
    let sharded = cell_key(&base.clone().threads(sim::Threads::N(4))).expect("cacheable").key;
    let auto = cell_key(&base.clone().threads(sim::Threads::Auto)).expect("cacheable").key;
    assert_eq!(seq, sharded, "lane count must not perturb the cell key");
    assert_eq!(seq, auto, "auto lane selection must not perturb the cell key");

    // Geometry, by contrast, shapes results: the enlarged eight-channel
    // system must never collide with the two-channel baseline.
    let enlarged = cell_key(&base.clone().eight_channel(2)).expect("cacheable").key;
    assert_ne!(seq, enlarged, "channel count is part of the modeled system");
}

#[test]
fn corrupt_entries_are_evicted_and_recomputed() {
    let dir = std::env::temp_dir().join(format!("cache-crash-safety-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut spec = SweepSpec::new("crash_safety");
    spec.workloads = vec!["mcf_like".to_string()];
    spec.trackers = vec!["none".to_string(), "para".to_string()];
    spec.options.window_us = Some(20.0);

    let cache = RunCache::open(&dir).expect("open cache");
    let (cold, summary) = spec.run_cached(&cache).expect("cold run");
    assert_eq!((summary.hits, summary.misses), (0, 2));
    let cold_json = cold.to_json().render();

    // Simulate a crash mid-write: truncate one entry to half its length.
    let entries: Vec<std::path::PathBuf> = walk_entries(&dir);
    assert_eq!(entries.len(), 2, "one entry file per cell");
    let victim = &entries[0];
    let text = std::fs::read_to_string(victim).expect("read entry");
    std::fs::write(victim, &text[..text.len() / 2]).expect("truncate entry");

    // A fresh cache over the same dir detects the bad checksum, evicts the
    // entry, recomputes the cell, and reproduces the report byte-for-byte.
    let cache = RunCache::open(&dir).expect("reopen cache");
    let (warm, summary) = spec.run_cached(&cache).expect("warm run");
    assert_eq!((summary.hits, summary.misses), (1, 1), "only the corrupt cell recomputes");
    assert_eq!(cache.stats().corrupt, 1, "the truncated entry must be counted");
    assert_eq!(warm.to_json().render(), cold_json, "recomputed report is byte-identical");

    // The recomputed entry was re-stored: a third pass is all hits.
    let cache = RunCache::open(&dir).expect("reopen again");
    let (_, summary) = spec.run_cached(&cache).expect("third run");
    assert_eq!((summary.hits, summary.misses), (2, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_io_errors_recover_across_engines_and_thread_counts() {
    use sim_core::fault::FaultPlan;
    // The recovery path (injected read IO error → miss → recompute →
    // re-store) must behave identically however the cell executes: both
    // engines are bit-identical by contract and lane count is an
    // execution knob, so all four combinations share one result payload
    // and the sequential/sharded pair shares one cell key per engine.
    let combos = [
        ("dense-seq", sim::Engine::Dense, sim::Threads::Seq),
        ("dense-n2", sim::Engine::Dense, sim::Threads::N(2)),
        ("event-seq", sim::Engine::EventDriven, sim::Threads::Seq),
        ("event-n2", sim::Engine::EventDriven, sim::Threads::N(2)),
    ];
    let mut renders = Vec::new();
    for (label, engine, threads) in combos {
        let dir =
            std::env::temp_dir().join(format!("cache-io-golden-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Experiment::quick("mcf_like")
            .tracker("para")
            .window_us(50.0)
            .engine(engine)
            .threads(threads);
        let key = cell_key(&e).expect("cacheable");
        let cache = RunCache::open(&dir).expect("open cache");
        let cold = e.clone().run();
        cache.save(&key, &cold);

        // Arm the read fault: the warm lookup errors, degrades to a
        // miss, and the recomputed result matches the cold one exactly.
        let cache = RunCache::open(&dir).expect("reopen");
        cache.store().arm_faults(FaultPlan::new(71).fail_cache_read_nth(0).arm());
        assert!(cache.lookup(&key).is_none(), "{label}: injected IO error reads as a miss");
        assert_eq!(cache.stats().io_errors, 1, "{label}: the error is counted");
        let recomputed = e.clone().run();
        cache.save(&key, &recomputed);
        let back = cache.lookup(&key).expect("re-stored entry reads back");
        let render = sim::spec::result_to_json(&back).render();
        assert_eq!(
            render,
            sim::spec::result_to_json(&cold).render(),
            "{label}: recovery reproduces the cold result byte-for-byte"
        );
        renders.push((label, key.key.clone(), render));
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Engines and lane counts are bit-identical: one payload for all four.
    for (label, _, render) in &renders[1..] {
        assert_eq!(render, &renders[0].2, "{label}: bit-identical across engines and lanes");
    }
    // Lane count never perturbs the key; the engine is allowed to.
    assert_eq!(renders[0].1, renders[1].1, "dense: Seq and N(2) share a key");
    assert_eq!(renders[2].1, renders[3].1, "event-driven: Seq and N(2) share a key");
}

fn walk_entries(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir").flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "entry") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}
