//! Whole-system scheduler differential: the indexed FR-FCFS scheduler and
//! the retained naive-scan oracle must produce **bit-identical**
//! [`RunStats`] across the quick-subset × tracker matrix.
//!
//! The oracle re-derives every eligibility from scratch each bus cycle
//! (no cached decision bound, no per-bank shortcuts, no quiet-tick fast
//! path), so any divergence convicts the index maintenance: a stale bound
//! that skipped a due command, a selection shortcut that broke the
//! (class, age) order, or a missed wake-up after a mutation.
//!
//! Together with `tests/engine_equivalence.rs` (dense vs event-driven on
//! the indexed scheduler) this closes the triangle: oracle == indexed
//! dense == indexed event-driven.

use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::sim::{parallel_map, RunStats};
use dapper_repro::workloads;

/// Runs `e` once with the naive-scan oracle (dense loop: the oracle never
/// skips) and once with the indexed scheduler under the default
/// event-driven engine, returning both.
fn oracle_vs_indexed(e: &Experiment) -> (RunStats, RunStats) {
    let mut oracle_sys = e.build_system(false);
    oracle_sys.set_naive_scan(true);
    let oracle = oracle_sys.run_dense();
    let indexed = e.build_system(false).run();
    (oracle, indexed)
}

fn assert_matrix_equal(jobs: Vec<(String, Experiment)>) {
    let outcomes = parallel_map(jobs, |(label, e)| {
        let (oracle, indexed) = oracle_vs_indexed(&e);
        (label, oracle == indexed, format!("{oracle:?}\n  vs\n{indexed:?}"))
    });
    for o in outcomes {
        let (label, equal, detail) = o.expect("differential job must not panic");
        assert!(equal, "indexed scheduler diverged from the oracle on {label}:\n{detail}");
    }
}

#[test]
fn quick_subset_matches_the_oracle() {
    let mut jobs = Vec::new();
    for spec in workloads::quick_subset() {
        for tracker in ["none", "hydra", "comet", "dapper-h"] {
            let e = Experiment::quick(spec.name).tracker(tracker).window_us(100.0);
            jobs.push((format!("{}/{}", spec.name, tracker), e));
        }
    }
    assert_matrix_equal(jobs);
}

#[test]
fn every_tracker_matches_the_oracle_under_attack() {
    let mut jobs = Vec::new();
    for tracker in dapper_repro::sim::tracker_keys() {
        let e = Experiment::quick("gcc_like")
            .tracker(&tracker)
            .attack(AttackChoice::Tailored)
            .window_us(100.0);
        jobs.push((format!("gcc_like/{tracker}/tailored"), e));
    }
    assert_matrix_equal(jobs);
}

#[test]
#[ignore = "full quick-subset x tracker matrix; run with --ignored (acceptance)"]
fn full_quick_subset_tracker_matrix_matches_the_oracle() {
    let mut jobs = Vec::new();
    for spec in workloads::quick_subset() {
        for tracker in dapper_repro::sim::tracker_keys() {
            for attack in [AttackChoice::None, AttackChoice::Tailored] {
                let e =
                    Experiment::quick(spec.name).tracker(&tracker).attack(attack).window_us(100.0);
                jobs.push((format!("{}/{}/{:?}", spec.name, tracker, attack), e));
            }
        }
    }
    assert_matrix_equal(jobs);
}
