//! Cross-engine determinism: the event-driven time-skipping loop must
//! produce **bit-identical** [`RunStats`] to the dense-tick reference loop.
//!
//! The skip engine only jumps stretches it can prove are no-ops for the
//! memory system and exactly summarizable for the cores; any gap in those
//! proofs (a dropped refresh boundary, a missed tracker hook, a core
//! advanced past a completion) shows up here as a field-level mismatch.
//!
//! The default suite covers every tracker (benign and tailored attack) and
//! a suite-spanning workload subset; `--ignored` unlocks the full
//! 57-workload × 11-tracker matrix the acceptance criteria describe.

use dapper_repro::sim::experiment::{AttackChoice, Experiment, TrackerSel};
use dapper_repro::sim::{parallel_map, RunStats};
use dapper_repro::{attacklab, sim, workloads};

/// Runs one experiment's system under both engines and returns the pair.
fn both_engines(e: &Experiment) -> (RunStats, RunStats) {
    let dense = e.build_system(false).run_dense();
    let event = e.build_system(false).run();
    (dense, event)
}

fn assert_matrix_equal(jobs: Vec<(String, Experiment)>) {
    let outcomes = parallel_map(jobs, |(label, e)| {
        let (dense, event) = both_engines(&e);
        (label, dense == event, format!("{dense:?}\n  vs\n{event:?}"))
    });
    for o in outcomes {
        let (label, equal, detail) = o.expect("equivalence job must not panic");
        assert!(equal, "engines diverged on {label}:\n{detail}");
    }
}

#[test]
fn every_tracker_is_engine_equivalent_benign_and_attacked() {
    let mut jobs = Vec::new();
    for tracker in dapper_repro::sim::tracker_keys() {
        let benign = Experiment::quick("gcc_like").tracker(&tracker).window_us(100.0);
        jobs.push((format!("{tracker}/benign"), benign));
        let attacked = Experiment::quick("gcc_like")
            .tracker(&tracker)
            .attack(AttackChoice::Tailored)
            .window_us(100.0);
        jobs.push((format!("{tracker}/tailored"), attacked));
    }
    assert_matrix_equal(jobs);
}

#[test]
fn workload_subset_is_engine_equivalent() {
    let mut jobs = Vec::new();
    for spec in workloads::quick_subset() {
        for tracker in ["none", "dapper-h"] {
            let e = Experiment::quick(spec.name).tracker(tracker).window_us(100.0);
            jobs.push((format!("{}/{}", spec.name, tracker), e));
        }
    }
    assert_matrix_equal(jobs);
}

#[test]
fn sharded_execution_is_engine_equivalent_across_channel_counts() {
    // The sharded executor must be invisible: for both engines and both
    // geometries (paper baseline and the enlarged eight-channel system),
    // every lane count yields bit-identical `RunStats` and byte-identical
    // telemetry windows. Thread scheduling cannot leak into results because
    // shards merge in channel-index order at every core-phase rendezvous.
    use dapper_repro::sim::experiment::TelemetrySpec;
    use dapper_repro::sim::Threads;
    let mut jobs = Vec::new();
    for channels in [2usize, 8] {
        let mut base = Experiment::quick("gcc_like")
            .tracker("dapper-h")
            .attack(AttackChoice::Tailored)
            .window_us(200.0)
            .with_telemetry(TelemetrySpec::all_recorders(50.0));
        if channels == 8 {
            base = base.eight_channel(2);
        }
        for engine in [sim::Engine::Dense, sim::Engine::EventDriven] {
            for (tname, threads) in [("seq", Threads::Seq), ("sharded", Threads::N(2))] {
                jobs.push((
                    format!("{channels}ch/{engine:?}/{tname}"),
                    base.clone().engine(engine).threads(threads),
                ));
            }
        }
    }
    let outcomes: Vec<(String, RunStats, String)> = parallel_map(jobs, |(label, e)| {
        let r = e.run();
        let telemetry = r.telemetry.map(|t| t.to_json().render()).unwrap_or_default();
        (label, r.run, telemetry)
    })
    .into_iter()
    .map(|o| o.expect("matrix job must not panic"))
    .collect();
    // Four executions per geometry; the first (dense/seq) is the reference.
    for group in outcomes.chunks(4) {
        let (ref_label, ref_stats, ref_telemetry) = &group[0];
        assert!(!ref_telemetry.is_empty(), "{ref_label}: telemetry must be recorded");
        for (label, stats, telemetry) in &group[1..] {
            assert_eq!(stats, ref_stats, "{label} diverged from {ref_label}");
            assert_eq!(
                telemetry, ref_telemetry,
                "{label} telemetry windows diverged from {ref_label}"
            );
        }
    }
}

#[test]
fn oracle_runs_are_engine_equivalent() {
    // Event collection and the ground-truth oracle must see the identical
    // activation stream under both engines.
    let e = Experiment::quick("povray_like")
        .tracker("para")
        .attack(AttackChoice::Tailored)
        .window_us(150.0)
        .with_oracle();
    let (dense, event) = both_engines(&e);
    assert_eq!(dense, event);
    assert!(dense.oracle.is_some(), "oracle must be attached");
}

#[test]
fn sweep_heavy_trackers_skip_across_blocks_equivalently() {
    // CoMeT/ABACUS reset sweeps block ranks for milliseconds — exactly the
    // stretch the skip engine jumps via the sweep-unblock bound. Use a
    // window long enough to contain a sweep.
    for tracker in ["comet", "abacus"] {
        let e = Experiment::quick("povray_like")
            .tracker(tracker)
            .attack(AttackChoice::Tailored)
            .nrh(120)
            .window_us(400.0);
        let (dense, event) = both_engines(&e);
        assert_eq!(dense, event, "{tracker} diverged across a sweep block");
    }
}

#[test]
fn campaign_smoke_runs_on_the_event_engine() {
    // The attacklab campaign runner goes through Experiment, which defaults
    // to the event-driven engine: a small end-to-end campaign must complete
    // and produce sane normalized-performance numbers.
    let mut cfg = attacklab::CampaignConfig::new(
        vec![TrackerSel::by_key("none").unwrap(), TrackerSel::by_key("dapper-h").unwrap()],
        "gcc_like",
    );
    cfg.window_us = 100.0;
    cfg.search_budget = 0;
    cfg.scenarios.truncate(2);
    let report = attacklab::run_campaign(&cfg);
    assert_eq!(report.rows.len(), 2 * 2, "2 trackers x 2 fixed scenarios");
    for row in &report.rows {
        let np = row.record.normalized_performance;
        assert!(np.is_finite() && np > 0.0 && np < 1.5, "{}: {np}", row.tracker);
    }
}

#[test]
#[ignore = "full 57x11 matrix; run with --ignored (CI nightly / acceptance)"]
fn full_catalog_tracker_matrix_is_engine_equivalent() {
    let mut jobs = Vec::new();
    for spec in workloads::catalog() {
        for tracker in dapper_repro::sim::tracker_keys() {
            let e = Experiment::quick(spec.name).tracker(&tracker).window_us(100.0);
            jobs.push((format!("{}/{}", spec.name, tracker), e));
        }
    }
    assert_matrix_equal(jobs);
}

#[test]
fn event_engine_is_the_default_everywhere() {
    // Experiment::run and System::run both use the event engine; a dense
    // run of the same experiment must agree, so default-path consumers
    // (figures, campaigns, sweeps) inherit identical numbers.
    let e = Experiment::quick("namd_like").tracker("dapper-s").window_us(100.0);
    let default_run = e.clone().run();
    let dense_run = e.engine(sim::Engine::Dense).run();
    assert_eq!(default_run.run, dense_run.run);
    assert_eq!(default_run.reference, dense_run.reference);
    assert!((default_run.normalized_performance - dense_run.normalized_performance).abs() < 1e-15);
}
