//! Oracle-audited security: no tracker may let any victim row accumulate
//! N_RH disturbances, even under the strongest attack patterns; and the
//! undefended system must actually be hammered by them.

use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::workloads::Attack;

fn audit(tracker: &str, attack: Attack, window_us: f64) -> (u32, u64) {
    let r = Experiment::new("povray_like")
        .tracker(tracker)
        .attack(AttackChoice::Specific(attack))
        .window_us(window_us)
        .nrh(500)
        .with_oracle()
        .run();
    r.run.oracle.expect("oracle attached")
}

#[test]
fn undefended_system_is_hammered_by_the_refresh_pattern() {
    let (max_damage, violations) = audit("none", Attack::RefreshAttack, 400.0);
    assert!(violations > 0, "attack too weak: max damage {max_damage}");
}

#[test]
fn dapper_h_prevents_rowhammer_under_refresh_attack() {
    let (max_damage, violations) = audit("dapper-h", Attack::RefreshAttack, 400.0);
    assert_eq!(violations, 0, "max damage {max_damage}");
    assert!(max_damage < 500);
}

#[test]
fn dapper_h_prevents_rowhammer_under_streaming() {
    let (max_damage, violations) = audit("dapper-h", Attack::Streaming, 400.0);
    assert_eq!(violations, 0, "max damage {max_damage}");
}

#[test]
fn dapper_s_prevents_rowhammer_under_refresh_attack() {
    let (max_damage, violations) = audit("dapper-s", Attack::RefreshAttack, 400.0);
    assert_eq!(violations, 0, "max damage {max_damage}");
}

#[test]
fn baseline_trackers_also_hold_the_line() {
    for t in ["hydra", "comet", "abacus", "prac"] {
        let (max_damage, violations) = audit(t, Attack::RefreshAttack, 400.0);
        assert_eq!(violations, 0, "{}: max damage {max_damage}", t);
    }
}

#[test]
fn para_is_probabilistically_safe_at_this_scale() {
    let (max_damage, violations) = audit("para", Attack::RefreshAttack, 400.0);
    assert_eq!(violations, 0, "max damage {max_damage}");
}
