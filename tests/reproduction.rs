//! Shape-level reproduction assertions: the orderings the paper's figures
//! rest on, checked at miniature scale. EXPERIMENTS.md records the
//! full-scale numbers.

use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::workloads::Attack;

const W: f64 = 400.0; // microseconds per run

#[test]
fn fig1_shape_tailored_attacks_beat_cache_thrashing() {
    // Tailored RH-tracker attacks must hurt (strictly) more than plain
    // cache thrashing does on the undefended machine.
    let thrash = Experiment::new("libquantum_like")
        .tracker("none")
        .attack(AttackChoice::CacheThrash)
        .window_us(W)
        .run();
    let hydra = Experiment::new("libquantum_like")
        .tracker("hydra")
        .attack(AttackChoice::Tailored)
        .window_us(W)
        .run();
    assert!(
        hydra.normalized_performance < thrash.normalized_performance,
        "hydra {} vs thrash {}",
        hydra.normalized_performance,
        thrash.normalized_performance
    );
}

#[test]
fn fig10_shape_dapper_h_isolated_overhead_is_small() {
    for attack in [Attack::Streaming, Attack::RefreshAttack] {
        let r = Experiment::new("gcc_like")
            .tracker("dapper-h")
            .attack(AttackChoice::Specific(attack))
            .isolating()
            .window_us(W)
            .run();
        assert!(r.normalized_performance > 0.9, "{:?}: {}", attack, r.normalized_performance);
    }
}

#[test]
fn fig9_vs_fig10_shape_dapper_h_beats_dapper_s_under_refresh() {
    let s = Experiment::new("milc_like")
        .tracker("dapper-s")
        .attack(AttackChoice::Specific(Attack::RefreshAttack))
        .isolating()
        .window_us(W)
        .run();
    let h = Experiment::new("milc_like")
        .tracker("dapper-h")
        .attack(AttackChoice::Specific(Attack::RefreshAttack))
        .isolating()
        .window_us(W)
        .run();
    assert!(
        h.normalized_performance > s.normalized_performance,
        "H {} must beat S {}",
        h.normalized_performance,
        s.normalized_performance
    );
    // And DAPPER-S pays in whole-group refreshes.
    assert!(s.run.mem.victim_rows_refreshed > h.run.mem.victim_rows_refreshed * 4);
}

#[test]
fn fig11_shape_dapper_h_benign_overhead_is_negligible() {
    let r = Experiment::new("mcf_like").tracker("dapper-h").window_us(W).run();
    assert!(r.normalized_performance > 0.95, "{}", r.normalized_performance);
}

#[test]
fn fig14_shape_blockhammer_collapses_at_low_thresholds() {
    // BlockHammer's false positives need a few ms for the Bloom filters to
    // saturate, so this test runs a longer window than the others.
    let bh_low =
        Experiment::new("milc_like").tracker("blockhammer").nrh(125).window_us(3000.0).run();
    let dh_low = Experiment::new("milc_like").tracker("dapper-h").nrh(125).window_us(3000.0).run();
    assert!(
        bh_low.normalized_performance < dh_low.normalized_performance,
        "BlockHammer {} must trail DAPPER-H {} at N_RH=125",
        bh_low.normalized_performance,
        dh_low.normalized_performance
    );
}

#[test]
fn fig17_shape_prac_taxes_benign_runs_more_than_dapper_h() {
    let prac = Experiment::new("lbm_like").tracker("prac").window_us(W).run();
    let dh = Experiment::new("lbm_like").tracker("dapper-h").window_us(W).run();
    assert!(
        prac.normalized_performance < dh.normalized_performance,
        "PRAC {} vs DAPPER-H {}",
        prac.normalized_performance,
        dh.normalized_performance
    );
}

#[test]
fn table3_shape_dapper_h_storage_is_96kb() {
    use dapper_repro::analysis::storage::storage_table;
    let rows = storage_table(500);
    let dh = rows.iter().find(|r| r.name == "DAPPER-H").expect("row exists");
    assert!((dh.overhead.sram_kb() - 96.0).abs() < 0.5);
    let comet = rows.iter().find(|r| r.name == "CoMeT").expect("row exists");
    assert!(dh.overhead.die_area_mm2() < comet.overhead.die_area_mm2());
}
