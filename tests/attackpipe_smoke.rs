//! Attackpipe smoke: the recon stage must actually work, and knowledge
//! must order outcomes.
//!
//! Two claims keep the pipeline honest. First, the timing-side-channel
//! recon is no mock: on the seeded baseline machine it must recover the
//! row stride and recognize at least 90% of the truly same-bank
//! verification pairs, within its probe budget, bit-identically across
//! repeated runs. Second, the knowledge axis must order end-to-end
//! outcomes — omniscient ≥ timing-recon ≥ blind in (flips, peak
//! pressure) — for several trackers, because an attacker who infers the
//! mapping can never beat one who is handed it, and one who knows
//! nothing concentrates no pressure at all.

use dapper_repro::attackpipe::recon::infer_map;
use dapper_repro::attackpipe::{reference_for, run_cell, PipelineVerdict};
use dapper_repro::sim::experiment::{AttackerConfig, AttackerKnowledge, Experiment};
use dapper_repro::sim::parallel_map;

const SEED: u64 = 0xDA99E5;
const RECON_BUDGET: u64 = 2500;

fn attacker(knowledge: AttackerKnowledge) -> AttackerConfig {
    AttackerConfig { knowledge, recon_budget: RECON_BUDGET, seed: AttackerConfig::DEFAULT_SEED }
}

#[test]
fn timing_recon_recovers_the_map_deterministically() {
    let e = Experiment::quick("libquantum_like").tracker("dapper-s").seed(SEED);
    let cfg = attacker(AttackerKnowledge::TimingRecon);
    let map = infer_map(&e, &cfg);
    let geom = &e.cfg.geometry;

    assert!(map.probes_spent <= RECON_BUDGET, "spent {} of {RECON_BUDGET}", map.probes_spent);
    let true_stride = dapper_repro::sim_core::addr::DramAddr::new(0, 0, 0, 0, 1, 0);
    assert_eq!(
        map.row_stride(),
        Some(geom.encode(&true_stride).0),
        "stride discovery must find the true same-bank adjacent-row stride"
    );
    let recall = map.same_bank_recall(geom).expect("same-bank pairs were probed");
    assert!(recall >= 0.90, "same-bank recall {recall} below 90%");
    let accuracy = map.accuracy(geom).expect("pairs were probed");
    assert!(accuracy >= 0.80, "overall pair accuracy {accuracy} below 80%");

    // Re-running the identical campaign must reproduce the identical
    // evidence — recon is seeded simulation, not a flaky measurement.
    let again = infer_map(&e, &cfg);
    assert_eq!(format!("{map:?}"), format!("{again:?}"), "recon must be deterministic");
}

#[test]
fn knowledge_orders_outcomes_for_three_trackers() {
    const LEVELS: [AttackerKnowledge; 3] =
        [AttackerKnowledge::Omniscient, AttackerKnowledge::TimingRecon, AttackerKnowledge::Blind];
    let cell = |tracker: &str, k: AttackerKnowledge| {
        Experiment::quick("libquantum_like")
            .tracker(tracker)
            .window_us(120.0)
            .seed(SEED)
            .attacker(attacker(k))
    };
    // One reference serves every cell: it depends only on the workload
    // and machine, never on the tracker under test or knowledge level.
    let reference = reference_for(&cell("dapper-s", AttackerKnowledge::Omniscient));

    let mut jobs = Vec::new();
    for tracker in ["dapper-s", "hydra", "para"] {
        for k in LEVELS {
            jobs.push((tracker, cell(tracker, k)));
        }
    }
    let verdicts: Vec<(&str, PipelineVerdict)> =
        parallel_map(jobs, |(tracker, e)| (tracker, run_cell(&e, &reference)))
            .into_iter()
            .map(|o| o.expect("pipeline cell must not panic"))
            .collect();

    for chunk in verdicts.chunks(3) {
        let [(tracker, omni), (_, timing), (_, blind)] = chunk else {
            panic!("three levels per tracker");
        };
        let pressure = |v: &PipelineVerdict| (v.flips, v.max_victim_peak);
        assert!(
            pressure(omni) >= pressure(timing) && pressure(timing) >= pressure(blind),
            "{tracker}: knowledge must order outcomes, got omniscient {:?} / timing {:?} / blind {:?}",
            pressure(omni),
            pressure(timing),
            pressure(blind)
        );
        assert!(
            omni.max_victim_peak > 0,
            "{tracker}: the omniscient hammer must land real pressure"
        );
        assert!(timing.recon_accuracy.is_some(), "{tracker}: timing-recon reports accuracy");
        assert!(omni.recon_accuracy.is_none() && blind.recon_accuracy.is_none());
    }

    // Determinism end to end: re-running one timing-recon cell must
    // reproduce the verdict field for field.
    let again = run_cell(&cell("hydra", AttackerKnowledge::TimingRecon), &reference);
    assert_eq!(again, verdicts[4].1, "pipeline verdicts must be reproducible");
}
