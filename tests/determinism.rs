//! The `RowHammerTracker` trait contract requires every implementation to
//! be deterministic given its construction seed: the simulator depends on
//! replayability (shared reference runs, parallel sweeps, and attacklab's
//! "reproduce with this seed" reports are all meaningless otherwise).
//!
//! This property test drives every tracker twice through an identical
//! pseudo-random activation schedule — including tREFI and tREFW callbacks
//! and the pre-ACT `activation_delay` query — and asserts the two
//! [`TrackerAction`] streams are identical. A third pass with a different
//! seed checks the seed actually reaches the randomized internals.

use dapper_repro::sim::experiment::TrackerSel;
use dapper_repro::sim_core::addr::Geometry;
use dapper_repro::sim_core::req::SourceId;
use dapper_repro::sim_core::rng::Xoshiro256;
use dapper_repro::sim_core::tracker::{Activation, TrackerAction};
use dapper_repro::sim_core::Cycle;

/// tREFI in bus cycles (3.9 µs at 3.2 GHz), matching the controller cadence.
const TREFI: Cycle = 12_480;
/// Activations per simulated schedule.
const ACTS: usize = 30_000;

/// Replays a fixed activation schedule and records everything observable:
/// every action plus every activation delay.
fn observe(key: &str, build_seed: u64) -> (Vec<TrackerAction>, Vec<Cycle>) {
    let geom = Geometry::paper_baseline();
    let mut tracker =
        TrackerSel::by_key(key).expect("registry key").build(500, geom, 0, build_seed);
    // The schedule itself is fixed (same stream for every tracker/seed):
    // a mix of hot rows (hammering) and uniform traffic across both ranks.
    let mut sched = Xoshiro256::seed_from(0x5C_4ED0);
    let mut actions = Vec::new();
    let mut delays = Vec::new();
    let mut cycle: Cycle = 0;
    let mut next_trefi = TREFI;
    let hot: Vec<u64> = (0..8).map(|i| 4096 + i * 777).collect();
    for i in 0..ACTS {
        cycle += 4 + sched.gen_range(8);
        while cycle >= next_trefi {
            tracker.on_trefi(next_trefi, &mut actions);
            // Real hardware fires tREFW every 8192 tREFI; the schedule here
            // spans only ~18 tREFI, so fire it every 6 to actually exercise
            // the reset path (determinism must hold at any cadence).
            if (next_trefi / TREFI).is_multiple_of(6) {
                tracker.on_refresh_window(next_trefi, &mut actions);
            }
            next_trefi += TREFI;
        }
        let rank = (sched.next_u64() & 1) as u8;
        let idx = if sched.gen_bool(0.6) {
            hot[sched.gen_range(hot.len() as u64) as usize]
        } else {
            sched.gen_range(geom.rows_per_rank() - 64)
        };
        let addr = geom.addr_from_rank_row_index(0, rank, idx);
        let source = SourceId((i % 4) as u8);
        delays.push(tracker.activation_delay(&addr, source, cycle));
        tracker.on_activation(Activation { addr, source, cycle }, &mut actions);
    }
    (actions, delays)
}

#[test]
fn every_tracker_replays_identically_from_its_seed() {
    for key in dapper_repro::sim::tracker_keys() {
        let (actions_a, delays_a) = observe(&key, 0xD00D);
        let (actions_b, delays_b) = observe(&key, 0xD00D);
        assert_eq!(actions_a, actions_b, "{key}: action streams diverge between identical replays");
        assert_eq!(
            delays_a, delays_b,
            "{key}: activation delays diverge between identical replays"
        );
    }
}

#[test]
fn randomized_trackers_actually_consume_their_seed() {
    // PARA is purely sampling-based: a different seed must flip at least
    // one coin differently over 30K activations. (Deterministic counter
    // trackers may legitimately ignore the seed, so only the randomized
    // one is asserted here.)
    let (a, _) = observe("para", 1);
    let (b, _) = observe("para", 2);
    assert_ne!(a, b, "PARA: different seeds produced identical mitigation streams");
}

#[test]
fn every_tracker_acts_under_a_hammering_schedule() {
    // Sanity for the schedule itself: it hammers hard enough that every
    // real tracker issues at least one action, so the equality assertions
    // above compare non-trivial streams.
    for key in dapper_repro::sim::tracker_keys() {
        if key == "none" {
            continue;
        }
        let (actions, delays) = observe(&key, 0xD00D);
        assert!(
            !actions.is_empty() || delays.iter().any(|&d| d > 0),
            "{key}: schedule produced no observable behaviour"
        );
    }
}
