//! Registry/legacy equivalence: the deprecated [`TrackerChoice`] enum is a
//! shim over the open [`TrackerRegistry`], and this suite proves the
//! transition is bit-exact — for every legacy variant, an experiment
//! resolved through the enum and one resolved through the registry key
//! with default parameters produce **bit-identical** [`RunStats`]
//! (`PartialEq` on `RunStats` compares every field exactly, floats
//! included).
//!
//! It also pins the metadata contract the shim relies on: display names,
//! LLC reservation, parse round-trips through the registry's single
//! lookup path, and paper-baseline defaults in every schema.

#![allow(deprecated)]

use dapper_repro::sim::experiment::{AttackChoice, Experiment, TrackerChoice, TrackerSel};
use dapper_repro::sim::{self, parallel_map};

/// Quick setting shared by every equivalence run.
fn quick(workload: &str) -> Experiment {
    Experiment::quick(workload).window_us(100.0)
}

#[test]
fn every_legacy_variant_matches_its_registry_key_bit_exactly() {
    let jobs: Vec<TrackerChoice> = TrackerChoice::all().to_vec();
    let outcomes = parallel_map(jobs, |choice| {
        let legacy = quick("povray_like").tracker(choice).build_system(false).run();
        let via_registry = quick("povray_like")
            .tracker(TrackerSel::by_key(choice.key()).expect("legacy key registered"))
            .build_system(false)
            .run();
        (choice.key(), legacy == via_registry, format!("{legacy:?}\n vs\n{via_registry:?}"))
    });
    for o in outcomes {
        let (key, equal, detail) = o.expect("equivalence run must not panic");
        assert!(equal, "legacy enum and registry diverged for '{key}':\n{detail}");
    }
}

#[test]
fn attacked_runs_match_through_both_paths() {
    // The tailored attack resolves off the tracker's display name; a shim
    // that renamed anything would silently change the attacker here.
    for key in ["hydra", "comet", "dapper-h"] {
        let choice = TrackerChoice::parse(key).expect("legacy variant");
        let legacy = quick("gcc_like")
            .tracker(choice)
            .attack(AttackChoice::Tailored)
            .build_system(false)
            .run();
        let via_registry =
            quick("gcc_like").tracker(key).attack(AttackChoice::Tailored).build_system(false).run();
        assert_eq!(legacy, via_registry, "attacked run diverged for '{key}'");
    }
}

#[test]
fn legacy_metadata_matches_the_registry() {
    for choice in TrackerChoice::all() {
        let spec = sim::registry::resolve(choice.key())
            .unwrap_or_else(|e| panic!("{}: {e}", choice.key()));
        assert_eq!(choice.name(), spec.display_name(), "display name drifted");
        assert_eq!(choice.reserves_llc(), spec.llc_reserved(), "{}", choice.key());
        // Display names resolve back to the same spec (one lookup path).
        assert_eq!(
            sim::registry::resolve(choice.name()).unwrap().key(),
            spec.key(),
            "display-name lookup drifted for {}",
            choice.key()
        );
        // parse is case- and separator-insensitive through the registry.
        let shouting = choice.key().to_uppercase().replace('-', "_");
        assert_eq!(TrackerChoice::parse(&shouting), Some(choice), "{shouting}");
    }
}

#[test]
fn every_registry_key_with_defaults_builds_every_schema_param() {
    // Defaults must be complete: building with an empty override map gives
    // each factory a fully-populated parameter set.
    for key in sim::tracker_keys() {
        let spec = sim::registry::resolve(&key).unwrap();
        let resolved = spec
            .resolve_params(&std::collections::BTreeMap::new())
            .unwrap_or_else(|e| panic!("{key}: {e}"));
        assert_eq!(resolved.len(), spec.param_schema().len(), "{key}");
    }
}

#[test]
fn default_params_are_explicit_baseline_overrides() {
    // Passing the schema defaults *explicitly* must match passing nothing:
    // the declarative layer round-trips spec files that spell defaults out.
    let spec = sim::registry::resolve("hydra").unwrap();
    let defaults: std::collections::BTreeMap<_, _> =
        spec.param_schema().iter().map(|p| (p.key.clone(), p.default.clone())).collect();
    let implicit = quick("povray_like").tracker("hydra").build_system(false).run();
    let explicit = quick("povray_like")
        .tracker(TrackerSel::by_key("hydra").unwrap().with_params(defaults).unwrap())
        .build_system(false)
        .run();
    assert_eq!(implicit, explicit);
}
