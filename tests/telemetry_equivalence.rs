//! Probe-perturbation freedom: attaching telemetry probes must not change
//! simulation results.
//!
//! The probe API's hard invariant is that observers only *read*: with
//! every built-in recorder attached (time series, slowdown trace,
//! mitigation log) the engines must produce **bit-identical** [`RunStats`]
//! to a probe-free run — on both the dense and the event-driven loop,
//! whose skip horizon the window recorders cap (splitting skips is still
//! an exact no-op). The matrix covers the quick workload subset across a
//! tracker spread; the oracle rides the same sink API and is checked to
//! change nothing but the `oracle` verdict field.

use dapper_repro::sim::experiment::{AttackChoice, Experiment, TelemetrySpec};
use dapper_repro::sim::{parallel_map, Engine, RunStats, Threads};
use dapper_repro::sim_core::req::SourceId;
use dapper_repro::sim_core::telemetry::{LatencyProbe, SlowdownTrace};
use dapper_repro::workloads;

const TRACKERS: [&str; 4] = ["none", "hydra", "para", "dapper-h"];

/// Runs the system under test probe-free.
fn plain_run(e: &Experiment, engine: Engine) -> RunStats {
    e.build_system(false).run_engine(engine)
}

/// Runs the system under test with every built-in recorder attached:
/// time series + mitigation log via the telemetry spec, plus a slowdown
/// trace attached by hand (its reference normally comes from
/// `run_against`).
fn probed_run(e: &Experiment, engine: Engine) -> RunStats {
    let cores = e.cfg.cpu.cores as usize;
    let probed = e.clone().with_telemetry(TelemetrySpec {
        time_series: true,
        mitigation_log: true,
        window_us: Some(17.0), // deliberately not a divisor of the run window
        ..Default::default()
    });
    let mut sys = probed.build_system(false);
    sys.attach_probe(Box::new(SlowdownTrace::flat(vec![1.0; cores], (0..cores).collect())));
    sys.run_engine(engine)
}

#[test]
fn recorders_do_not_perturb_the_quick_subset_matrix() {
    let mut jobs = Vec::new();
    for spec in workloads::quick_subset() {
        for tracker in TRACKERS {
            for engine in [Engine::Dense, Engine::EventDriven] {
                let e = Experiment::quick(spec.name).tracker(tracker).window_us(80.0);
                jobs.push((format!("{}/{}/{:?}", spec.name, tracker, engine), e, engine));
            }
        }
    }
    let outcomes = parallel_map(jobs, |(label, e, engine)| {
        let plain = plain_run(&e, engine);
        let probed = probed_run(&e, engine);
        (label, plain == probed, format!("{plain:?}\n  vs\n{probed:?}"))
    });
    for o in outcomes {
        let (label, equal, detail) = o.expect("equivalence job must not panic");
        assert!(equal, "probes perturbed {label}:\n{detail}");
    }
}

#[test]
fn recorders_do_not_perturb_attacked_runs() {
    // Attacked runs exercise the mitigation-event stream (the mitigation
    // log's food) and tracker throttling; the invariant must hold there
    // too, on both engines.
    let mut jobs = Vec::new();
    for tracker in ["hydra", "comet", "dapper-h"] {
        for engine in [Engine::Dense, Engine::EventDriven] {
            let e = Experiment::quick("gcc_like")
                .tracker(tracker)
                .attack(AttackChoice::Tailored)
                .window_us(100.0);
            jobs.push((format!("{tracker}/{engine:?}"), e, engine));
        }
    }
    let outcomes = parallel_map(jobs, |(label, e, engine)| {
        (label, plain_run(&e, engine) == probed_run(&e, engine))
    });
    for o in outcomes {
        let (label, equal) = o.expect("job must not panic");
        assert!(equal, "probes perturbed attacked run {label}");
    }
}

#[test]
fn oracle_rides_the_sink_api_without_perturbing() {
    // The oracle is now just one client of the registered-sink event API.
    // Its attachment may change exactly one thing: the `oracle` verdict
    // field goes from None to Some.
    let base = || {
        Experiment::quick("povray_like")
            .tracker("para")
            .attack(AttackChoice::Tailored)
            .window_us(100.0)
    };
    for engine in [Engine::Dense, Engine::EventDriven] {
        let plain = plain_run(&base(), engine);
        let mut with_oracle = base().with_oracle().build_system(false).run_engine(engine);
        assert!(with_oracle.oracle.is_some(), "oracle verdict must be present");
        assert!(plain.oracle.is_none());
        with_oracle.oracle = None;
        assert_eq!(plain, with_oracle, "oracle changed more than its verdict ({engine:?})");
    }
}

#[test]
fn latency_tap_does_not_perturb_either_engine_or_lane_count() {
    // The attackpipe recon stage reads its timing side channel through a
    // LatencyProbe on the attacker core's read completions. Like every
    // probe it must be a pure observer: RunStats stay bit-identical with
    // the tap attached, on both engines, sequential and sharded.
    let mut jobs = Vec::new();
    for engine in [Engine::Dense, Engine::EventDriven] {
        for (lanes, threads) in [("seq", Threads::Seq), ("n2", Threads::N(2))] {
            let e = Experiment::quick("mcf_like")
                .tracker("dapper-h")
                .attack(AttackChoice::Tailored)
                .seed(0xDA99E5)
                .window_us(100.0)
                .threads(threads);
            jobs.push((format!("{engine:?}/{lanes}"), e, engine));
        }
    }
    let outcomes = parallel_map(jobs, |(label, e, engine)| {
        let plain = plain_run(&e, engine);
        let mut sys = e.build_system(false);
        let attacker = e.cfg.cpu.cores - 1;
        sys.attach_probe(Box::new(LatencyProbe::new(SourceId(attacker))));
        let tapped = sys.run_engine(engine);
        let samples = sys
            .take_probes()
            .into_iter()
            .find_map(|p| p.as_any().downcast_ref::<LatencyProbe>().map(|l| l.samples().len()))
            .expect("latency probe must come back out");
        (label, plain == tapped, samples)
    });
    for o in outcomes {
        let (label, equal, samples) = o.expect("latency-tap job must not panic");
        assert!(equal, "latency tap perturbed {label}");
        assert!(samples > 0, "{label}: the tap must actually observe read completions");
    }
}

#[test]
fn telemetry_equipped_experiment_matches_probe_free_metrics() {
    // End-to-end through the Experiment layer: same normalized
    // performance, same run and reference stats, with recorders on.
    let base = || {
        Experiment::quick("mcf_like")
            .tracker("dapper-h")
            .attack(AttackChoice::CacheThrash)
            .window_us(120.0)
    };
    let plain = base().run();
    let probed = base().with_telemetry(TelemetrySpec::all_recorders(24.0)).run();
    assert_eq!(plain.run, probed.run);
    assert_eq!(plain.reference, probed.reference);
    assert!((plain.normalized_performance - probed.normalized_performance).abs() < 1e-15);
    let t = probed.telemetry.expect("recorders attached");
    assert_eq!(t.windows.len(), 5, "120 us run / 24 us windows");
    assert_eq!(t.slowdown.expect("trace").points().len(), 5);
}
