//! Byte-identical sensitivity heatmaps across execution knobs.
//!
//! The profiler's warm-start and zero-simulation guarantees both rest on
//! the heatmap being a pure function of the profile configuration: the
//! same grid must serialize byte-identically across
//! `Threads::{Seq, N(2), Auto}` and across both simulation engines —
//! threads are an execution knob excluded from the probe cache key, and
//! engines are modelled equivalently by construction. Any divergence
//! would silently split cache entries or make a "warm" profile disagree
//! with the cold one it claims to reproduce.

use dapper_repro::profiler::{run_profile, Family, ProfileConfig};
use dapper_repro::sim::{parallel_map, Engine, Threads};

fn base_config() -> ProfileConfig {
    let mut cfg = ProfileConfig::new("hydra", "povray_like");
    cfg.probe_window_us = 25.0;
    cfg.bank_groups = 2;
    cfg.row_groups = 2;
    cfg.families = vec![Family::Hammer, Family::Thrash];
    cfg
}

#[test]
fn heatmap_is_byte_identical_across_lane_counts_and_engines() {
    let mut jobs = Vec::new();
    for (tname, threads) in [("seq", Threads::Seq), ("n2", Threads::N(2)), ("auto", Threads::Auto)]
    {
        for (ename, engine) in [("dense", Engine::Dense), ("event", Engine::EventDriven)] {
            for rep in 0..2 {
                let mut cfg = base_config();
                cfg.threads = threads;
                cfg.engine = engine;
                jobs.push((format!("{tname}/{ename}/rep{rep}"), ename, cfg));
            }
        }
    }
    let outcomes: Vec<(String, &'static str, String)> =
        parallel_map(jobs, |(label, ename, cfg)| {
            let (map, stats) = run_profile(&cfg, None);
            assert_eq!(stats.cells, 8, "{label}");
            (label, ename, map.to_json().render())
        })
        .into_iter()
        .map(|o| o.expect("profile must not panic"))
        .collect();

    // Engines agree on the model (PR 2's equivalence), so every rendering
    // in the whole matrix must match the first — threads, engine, or rep.
    let (ref_label, _, ref_bytes) = &outcomes[0];
    assert!(ref_bytes.contains("\"cells\""), "{ref_label}: heatmap must serialize cells");
    for (label, _, bytes) in &outcomes[1..] {
        assert_eq!(bytes, ref_bytes, "{label}: heatmap bytes diverged from {ref_label}");
    }
}
