//! Every spec file shipped under `examples/specs/` must parse, resolve
//! through the registry, and expand — with no simulation — so a broken
//! example (typo'd tracker key, renamed parameter, dropped workload) fails
//! CI instead of a user.

use dapper_repro::sim::spec::SweepSpec;
use std::path::PathBuf;

fn spec_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs")
}

fn spec_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(spec_dir())
        .expect("examples/specs must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_example_spec_parses_and_expands() {
    let files = spec_files();
    assert!(!files.is_empty(), "examples/specs must ship at least one spec");
    for file in files {
        let text = std::fs::read_to_string(&file).unwrap();
        let spec =
            SweepSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        let experiments = spec.expand().unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        assert!(!experiments.is_empty(), "{}: empty expansion", file.display());
        // Serialization round-trips: a spec the tooling re-emits is the
        // same spec.
        let reparsed = SweepSpec::from_toml_str(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{} (re-render): {e}", file.display()));
        assert_eq!(reparsed, spec, "{}", file.display());
        let json_back = SweepSpec::from_json_str(&spec.to_json().render())
            .unwrap_or_else(|e| panic!("{} (json): {e}", file.display()));
        assert_eq!(json_back, spec, "{}", file.display());
    }
}

#[test]
fn fig09_spec_reproduces_the_figure_matrix() {
    // The acceptance spec: Fig. 9's tracker x workload x attack matrix —
    // DAPPER-S under the two mapping-agnostic attacks across the quick
    // subset, with the paper's isolating normalization.
    let text = std::fs::read_to_string(spec_dir().join("fig09_quick.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let experiments = spec.expand().unwrap();
    let quick = dapper_repro::workloads::quick_subset();
    assert_eq!(experiments.len(), quick.len() * 2, "9 workloads x 1 tracker x 2 attacks");
    assert!(experiments.iter().all(|e| e.tracker.key() == "dapper-s"));
    assert!(experiments.iter().all(|e| e.isolate_tracker_overhead));
    let attacks: std::collections::BTreeSet<String> =
        experiments.iter().map(|e| format!("{:?}", e.attack)).collect();
    assert_eq!(attacks.len(), 2, "streaming and refresh");
}

#[test]
fn transient_spec_attaches_telemetry_to_every_cell() {
    let text = std::fs::read_to_string(spec_dir().join("transient_telemetry.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let telemetry = spec.telemetry.as_ref().expect("[telemetry] section present");
    assert!(telemetry.spec.time_series && telemetry.spec.slowdown);
    assert_eq!(telemetry.spec.window_us, Some(20.0));
    assert_eq!(telemetry.out.as_deref(), Some("transient_quick"));
    let experiments = spec.expand().unwrap();
    assert_eq!(experiments.len(), 6, "1 workload x 3 trackers x 2 attacks");
    assert!(experiments.iter().all(|e| e.telemetry.slowdown && e.telemetry.time_series));
    assert!(experiments.iter().all(|e| e.telemetry.window_us == Some(20.0)));
}

#[test]
fn cached_spec_round_trips_its_cache_section() {
    let text = std::fs::read_to_string(spec_dir().join("cached_smoke.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let cache = spec.cache.as_ref().expect("[cache] section present");
    assert_eq!(cache.effective_dir(), Some("out/run_cache"));

    // The section survives both serialized forms.
    let toml_back = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
    assert_eq!(toml_back.cache, spec.cache);
    let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
    assert_eq!(json_back.cache, spec.cache);

    // `enabled = false` opts the spec out without losing the dir.
    let disabled = format!("{text}enabled = false\n");
    let spec = SweepSpec::from_toml_str(&disabled).unwrap();
    assert_eq!(spec.cache.as_ref().unwrap().effective_dir(), None);
    assert_eq!(
        SweepSpec::from_toml_str(&spec.to_toml()).unwrap().cache,
        spec.cache,
        "opt-out round-trips too"
    );
}

#[test]
fn profile_spec_round_trips_its_profile_section() {
    let text = std::fs::read_to_string(spec_dir().join("profile_quick.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let profile = spec.profile.as_ref().expect("[profile] section present");
    assert_eq!(profile.bank_groups, Some(2));
    assert_eq!(profile.row_groups, Some(2));
    assert_eq!(profile.probe_window_us, Some(40.0));
    assert_eq!(profile.families, vec!["hammer".to_string(), "sweep".to_string()]);
    assert_eq!(profile.top_k, Some(3));
    assert_eq!(profile.budget, Some(12));

    // The section survives both serialized forms.
    let toml_back = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
    assert_eq!(toml_back.profile, spec.profile);
    let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
    assert_eq!(json_back.profile, spec.profile);

    // The profiler's family enum accepts every family the spec names.
    for family in &profile.families {
        assert!(
            dapper_repro::profiler::Family::by_key(family).is_some(),
            "spec family '{family}' must resolve in the profiler"
        );
    }
}

#[test]
fn enlarged_spec_selects_the_eight_channel_geometry() {
    let text = std::fs::read_to_string(spec_dir().join("enlarged_8ch.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let system = spec.system.as_ref().expect("[system] section present");
    assert_eq!(system.geometry.as_deref(), Some("enlarged-8ch"));
    assert_eq!(system.threads, Some(dapper_repro::sim::Threads::Auto));

    let experiments = spec.expand().unwrap();
    assert_eq!(experiments.len(), 8, "2 workloads x 2 trackers x 2 attacks");
    for e in &experiments {
        assert_eq!(e.cfg.geometry.channels, 8, "enlarged-8ch applies to every cell");
        assert_eq!(e.cfg.threads, dapper_repro::sim::Threads::Auto);
    }
}

#[test]
fn sensitivity_spec_carries_param_overrides() {
    let text = std::fs::read_to_string(spec_dir().join("hydra_rcc_sensitivity.toml")).unwrap();
    let spec = SweepSpec::from_toml_str(&text).unwrap();
    let experiments = spec.expand().unwrap();
    let hydra = experiments.iter().find(|e| e.tracker.key() == "hydra").unwrap();
    assert_eq!(
        hydra.tracker.params()["rcc_entries"],
        dapper_repro::sim_core::ParamValue::Int(1024)
    );
    let dapper = experiments.iter().find(|e| e.tracker.key() == "dapper-h").unwrap();
    assert!(dapper.tracker.params().is_empty(), "overrides must not leak across trackers");
}
