//! The chaos matrix: seeded fault campaigns across the recovery stack.
//!
//! Every test arms a deterministic [`sim_core::fault::FaultPlan`] against
//! one layer — cache payload corruption, cache IO errors, job panics,
//! shard-worker death, campaignd client disconnects, kill-and-resume —
//! and asserts the headline invariant: the surviving run produces a
//! report **byte-identical** to an undisturbed one (or, for permanent
//! faults, a deterministic quarantine list), with exact executed-cell
//! accounting. Faults are injector-instance scoped, so the matrix runs
//! safely in parallel with the rest of the suite.

use sim::cache::RunCache;
use sim::journal::SweepJournal;
use sim::runner::{RetryPolicy, RunnerConfig};
use sim::spec::{result_to_json, SweepSpec};
use sim_core::fault::{FaultPlan, FaultSite};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dapper-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Four unique cells, short window: real simulations, fast enough to
/// re-run several times per test.
fn chaos_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("chaos");
    spec.workloads = vec!["mcf_like".to_string()];
    spec.trackers =
        vec!["none".to_string(), "para".to_string(), "hydra".to_string(), "comet".to_string()];
    spec.options.window_us = Some(20.0);
    spec.options.seed = Some(7);
    spec
}

fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn corrupted_cache_entries_recompute_byte_identically() {
    let dir = scratch("corrupt");
    let spec = chaos_spec();
    let cache = RunCache::open(&dir).expect("open cache");
    let (cold, summary) = spec.run_cached(&cache).expect("cold run");
    assert_eq!((summary.hits, summary.misses), (0, 4));
    let cold_json = cold.to_json().render();

    // Bit-flip the first warm read, truncate the second: both damaged
    // entries must fail validation, evict, and recompute.
    let cache = RunCache::open(&dir).expect("reopen");
    let plan = FaultPlan::new(41).flip_cache_read_nth(1).truncate_cache_read_nth(2);
    cache.store().arm_faults(plan.arm());
    let (warm, summary) = spec.run_cached(&cache).expect("faulted warm run");
    assert_eq!((summary.hits, summary.misses), (2, 2), "exactly the damaged cells recompute");
    assert_eq!(cache.stats().corrupt, 2, "both damaged entries are counted");
    assert_eq!(warm.to_json().render(), cold_json, "recovered report is byte-identical");

    // The recomputed entries were re-stored: a clean pass is all hits.
    let cache = RunCache::open(&dir).expect("reopen clean");
    let (_, summary) = spec.run_cached(&cache).expect("clean pass");
    assert_eq!((summary.hits, summary.misses), (4, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_io_errors_degrade_to_recompute() {
    let dir = scratch("io-error");
    let spec = chaos_spec();

    // A write error on the cold run silently drops one entry (the cache
    // is an accelerator: losing a write must never fail the sweep).
    let cache = RunCache::open(&dir).expect("open cache");
    cache.store().arm_faults(FaultPlan::new(43).fail_cache_write_nth(1).arm());
    let (cold, summary) = spec.run_cached(&cache).expect("cold run under write faults");
    assert_eq!(summary.misses, 4);
    assert!(cold.failures.is_empty());
    assert_eq!(cache.stats().io_errors, 1, "the injected write error is counted");
    let cold_json = cold.to_json().render();

    // The dropped entry is a plain miss on the next pass — recomputed,
    // re-stored, report unflinching.
    let cache = RunCache::open(&dir).expect("reopen after lost write");
    let (warm, summary) = spec.run_cached(&cache).expect("warm run");
    assert_eq!((summary.hits, summary.misses), (3, 1), "exactly the lost write recomputes");
    assert_eq!(warm.to_json().render(), cold_json);

    // With the cache now complete, an injected *read* IO error degrades
    // exactly one hit to a recompute. The report never flinches.
    let cache = RunCache::open(&dir).expect("reopen for read faults");
    cache.store().arm_faults(FaultPlan::new(43).fail_cache_read_nth(1).arm());
    let (warm, summary) = spec.run_cached(&cache).expect("warm run under read faults");
    assert_eq!((summary.hits, summary.misses), (3, 1), "exactly the failed read recomputes");
    assert_eq!(cache.stats().io_errors, 1);
    assert_eq!(warm.to_json().render(), cold_json, "report is byte-identical throughout");

    let cache = RunCache::open(&dir).expect("reopen clean");
    let (_, summary) = spec.run_cached(&cache).expect("clean pass");
    assert_eq!((summary.hits, summary.misses), (4, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_job_panic_is_retried_to_byte_identity() {
    let spec = chaos_spec();
    let clean = spec.run().expect("clean run").to_json().render();
    let dir = scratch("retry");
    let cache = RunCache::open(&dir).expect("open cache");
    let runner = RunnerConfig {
        retry: RetryPolicy::standard(),
        faults: Some(FaultPlan::new(47).panic_job_once(2).arm()),
    };
    let (report, summary) =
        quiet_panics(|| spec.run_cached_with(&cache, None, &runner)).expect("faulted run");
    assert_eq!(summary.misses, 4, "every cell simulated (one of them twice)");
    assert!(report.failures.is_empty(), "the retry absorbed the injected panic");
    assert_eq!(report.to_json().render(), clean, "retried report is byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_job_panic_quarantines_deterministically() {
    let spec = chaos_spec();
    let run_once = || {
        let dir = scratch("quarantine");
        let cache = RunCache::open(&dir).expect("open cache");
        let runner = RunnerConfig {
            retry: RetryPolicy::standard(),
            faults: Some(FaultPlan::new(53).panic_job_always(1).arm()),
        };
        let (report, _) =
            quiet_panics(|| spec.run_cached_with(&cache, None, &runner)).expect("faulted run");
        let _ = std::fs::remove_dir_all(&dir);
        report
    };
    let (a, b) = (run_once(), run_once());
    assert_eq!(a.failures.len(), 1, "exactly the armed cell is quarantined");
    let f = &a.failures[0];
    assert_eq!(f.index, 1);
    assert_eq!(f.attempts, 3, "the whole retry budget was spent");
    assert!(f.cell.contains("mcf_like") && f.cell.contains("PARA"), "{}", f.cell);
    assert!(f.message.contains("injected fault"), "{}", f.message);
    assert_eq!(
        a.to_json().render(),
        b.to_json().render(),
        "quarantine (and the surviving cells) is deterministic"
    );
    assert_eq!(a.results.len(), 3, "healthy neighbours complete");
}

#[test]
fn shard_worker_death_is_bit_identical() {
    use sim::Experiment;
    let base = || {
        Experiment::quick("mcf_like")
            .tracker("para")
            .window_us(50.0)
            .eight_channel(2)
            .threads(sim::Threads::N(2))
    };
    let clean = result_to_json(&base().run()).render();
    let injector = FaultPlan::new(59).kill_worker_once(0).arm();
    let mut faulted = base();
    faulted.faults = Some(injector.clone());
    let survived = result_to_json(&faulted.run()).render();
    assert_eq!(injector.fired(FaultSite::ShardWorker), 1, "the worker really died");
    assert_eq!(survived, clean, "the respawned pool reproduces the run bit-identically");
}

#[test]
fn interrupted_sweep_resumes_byte_identically() {
    let spec = chaos_spec();
    // Uninterrupted baseline in its own cache dir.
    let baseline_dir = scratch("resume-baseline");
    let cache = RunCache::open(&baseline_dir).expect("open baseline cache");
    let (baseline, _) = spec.run_cached(&cache).expect("baseline run");
    let baseline_json = baseline.to_json().render();
    let _ = std::fs::remove_dir_all(&baseline_dir);

    // "Kill" a run partway: every cell from index 2 panics permanently,
    // leaving the same durable state (two cached + journaled cells, no
    // `end` record) a kill -9 after two cells would.
    let dir = scratch("resume");
    let cache = RunCache::open(&dir).expect("open cache");
    let journal = SweepJournal::in_cache_dir(&dir).expect("open journal");
    let runner = RunnerConfig {
        retry: RetryPolicy::none(),
        faults: Some(FaultPlan::new(61).halt_jobs_from(2).arm()),
    };
    let (hurt, summary) =
        quiet_panics(|| spec.run_cached_with(&cache, Some(&journal), &runner)).expect("hurt run");
    assert_eq!(summary.misses, 4);
    assert_eq!(hurt.failures.len(), 2, "the tail of the sweep died");
    let state = journal.load().expect("load journal");
    let hash = SweepJournal::sweep_hash(&spec);
    let progress = state.progress(&hash).expect("sweep journaled");
    assert_eq!(progress.completed.len(), 2, "exactly the committed cells are journaled");
    assert!(progress.unfinished(), "no end record for an interrupted sweep");

    // Resume against the same cache + journal, fault-free: only the
    // unfinished remainder re-executes, and the report is byte-identical
    // to the uninterrupted baseline.
    let cache = RunCache::open(&dir).expect("reopen cache");
    let journal = SweepJournal::in_cache_dir(&dir).expect("reopen journal");
    let (resumed, summary) = spec
        .run_cached_with(&cache, Some(&journal), &RunnerConfig::default())
        .expect("resumed run");
    assert_eq!(summary.resumed, 2, "the journaled cells are recognized");
    assert_eq!(summary.hits, 2);
    assert_eq!(summary.misses, 2, "executed count is exactly the unfinished remainder");
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.to_json().render(), baseline_json, "resumed report is byte-identical");
    assert!(
        !journal.load().expect("reload").progress(&hash).expect("progress").unfinished(),
        "the resumed sweep recorded its end"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn severed_campaignd_client_shares_the_finished_job() {
    use campaignd::{submit_request, Client, Server, ServerConfig};
    use sim_core::json::Json;
    let dir = scratch("disconnect");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("chaos.sock");
    let server = Server::bind(ServerConfig {
        socket: socket.clone(),
        cache_dir: Some(dir.join("cache")),
        faults: Some(FaultPlan::new(67).disconnect_client_nth(1).arm()),
        ..ServerConfig::default()
    })
    .expect("bind");
    std::thread::spawn(move || server.serve().expect("serve"));

    // The armed server severs this client at its first progress poll.
    let mut client = Client::connect(&socket).expect("connect");
    assert!(
        client.request_streaming(&submit_request(&chaos_spec(), true), |_| {}).is_err(),
        "the injected disconnect surfaces as an io error"
    );
    // The job keeps running server-side; a fresh client waits it out and
    // a warm resubmit shares the identical report with zero simulation.
    let mut client = Client::connect(&socket).expect("reconnect");
    let done = loop {
        let r = client
            .request(&Json::obj([("cmd", Json::str("wait")), ("job", Json::count(1))]))
            .expect("wait");
        if matches!(r.get("ok"), Some(Json::Bool(true))) {
            break r;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let report = done.get("report").expect("report").render();
    let warm =
        client.request_streaming(&submit_request(&chaos_spec(), true), |_| {}).expect("resubmit");
    assert_eq!(warm.get("executed"), Some(&Json::Num(0.0)), "warm resubmit simulates nothing");
    assert_eq!(warm.get("report").expect("report").render(), report, "byte-identical share");
    let _ = client.request(&Json::obj([("cmd", Json::str("shutdown"))]));
    let _ = std::fs::remove_dir_all(&dir);
}
