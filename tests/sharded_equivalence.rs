//! Seeded determinism of the sharded executor.
//!
//! The lane count is an execution knob, never a model knob: a mixed
//! benign/attack workload on the enlarged eight-channel system must be
//! **byte-identical** across `Threads::{Seq, N(2), Auto}` — and across
//! repeated runs of the same configuration. Any divergence means thread
//! scheduling leaked into results (a merge-order bug, a lookahead
//! violation, or nondeterminism in a shard), which would also silently
//! poison the run cache: sequential and sharded runs of one cell share a
//! single cache entry by design (see `tests/cache_keys.rs`).

use dapper_repro::sim::experiment::{AttackChoice, Experiment, TelemetrySpec};
use dapper_repro::sim::{parallel_map, Threads};

#[test]
fn seeded_eight_channel_runs_are_byte_identical_across_lane_counts() {
    // Three benign cores plus a tailored attacker, seeded, with every
    // window recorder attached so telemetry bytes are compared too.
    let base = Experiment::quick("mcf_like")
        .tracker("dapper-h")
        .attack(AttackChoice::Tailored)
        .eight_channel(2)
        .seed(0xDA99E5)
        .window_us(150.0)
        .with_telemetry(TelemetrySpec::all_recorders(50.0));

    // Each lane setting runs twice: repeats catch nondeterminism that a
    // single seq-vs-sharded comparison could miss (e.g. iteration over an
    // unordered container that happens to collide across settings).
    let mut jobs = Vec::new();
    for (name, threads) in [("seq", Threads::Seq), ("n2", Threads::N(2)), ("auto", Threads::Auto)] {
        for rep in 0..2 {
            jobs.push((format!("{name}/rep{rep}"), base.clone().threads(threads)));
        }
    }
    let outcomes: Vec<(String, String, String)> = parallel_map(jobs, |(label, e)| {
        let r = e.run();
        let stats = format!("{:?}", r.run);
        let telemetry = r.telemetry.map(|t| t.to_json().render()).unwrap_or_default();
        (label, stats, telemetry)
    })
    .into_iter()
    .map(|o| o.expect("sharded run must not panic"))
    .collect();

    let (ref_label, ref_stats, ref_telemetry) = &outcomes[0];
    assert!(!ref_telemetry.is_empty(), "{ref_label}: telemetry must be recorded");
    for (label, stats, telemetry) in &outcomes[1..] {
        assert_eq!(stats, ref_stats, "{label}: RunStats bytes diverged from {ref_label}");
        assert_eq!(telemetry, ref_telemetry, "{label}: telemetry diverged from {ref_label}");
    }
}
