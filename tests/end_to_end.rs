//! Cross-crate integration: every tracker runs inside the full system and
//! produces sane statistics.

use dapper_repro::sim::experiment::{AttackChoice, Experiment};

const ALL_TRACKERS: [&str; 11] = [
    "none",
    "hydra",
    "start",
    "comet",
    "abacus",
    "blockhammer",
    "para",
    "pride",
    "prac",
    "dapper-s",
    "dapper-h",
];

#[test]
fn every_tracker_completes_a_benign_run() {
    for t in ALL_TRACKERS {
        let r = Experiment::quick("h263enc_like").tracker(t).window_us(200.0).run();
        assert!(
            r.normalized_performance > 0.3 && r.normalized_performance < 1.15,
            "{}: normalized {}",
            t,
            r.normalized_performance
        );
        assert!(r.run.retired.iter().all(|&i| i > 0), "{}: no progress", t);
        assert!(r.run.mem.activations > 0, "{}: no DRAM traffic", t);
    }
}

#[test]
fn every_tracker_survives_its_tailored_attack() {
    for t in ALL_TRACKERS {
        let r = Experiment::quick("povray_like")
            .tracker(t)
            .attack(AttackChoice::Tailored)
            .window_us(200.0)
            .run();
        assert!(
            r.normalized_performance > 0.0 && r.normalized_performance <= 1.1,
            "{}: normalized {}",
            t,
            r.normalized_performance
        );
    }
}

#[test]
fn trackers_do_not_break_correct_completion_counts() {
    // The same workload and seed must retire the same instruction mix on
    // the reference machine regardless of tracker choice.
    let a = Experiment::quick("gcc_like").tracker("dapper-h").window_us(150.0).run();
    let b = Experiment::quick("gcc_like").tracker("para").window_us(150.0).run();
    assert_eq!(a.reference.retired, b.reference.retired, "references must be identical");
}

#[test]
fn memory_intensive_workloads_stress_dram_more() {
    let heavy = Experiment::quick("mcf_like").tracker("none").window_us(200.0).run();
    let light = Experiment::quick("povray_like").tracker("none").window_us(200.0).run();
    let heavy_apki =
        heavy.run.mem.activations as f64 / (heavy.run.retired.iter().sum::<u64>() as f64 / 1000.0);
    let light_apki =
        light.run.mem.activations as f64 / (light.run.retired.iter().sum::<u64>() as f64 / 1000.0);
    assert!(
        heavy_apki > light_apki * 5.0,
        "mcf {heavy_apki} vs povray {light_apki} activations/kilo-instruction"
    );
}

#[test]
fn start_reserves_half_the_llc() {
    // START's way reservation must show up as a lower LLC hit rate. Use a
    // Zipf-reuse workload (hot set straddles the halved capacity) so the
    // signal dominates scheduling noise.
    let with = Experiment::quick("ycsb_a_like").tracker("start").window_us(500.0).run();
    let without = Experiment::quick("ycsb_a_like").tracker("none").window_us(500.0).run();
    assert!(
        with.run.llc_hit_rate < without.run.llc_hit_rate,
        "START {} vs none {}",
        with.run.llc_hit_rate,
        without.run.llc_hit_rate
    );
}

#[test]
fn determinism_same_seed_same_result() {
    let a = Experiment::quick("milc_like").tracker("dapper-h").window_us(150.0).run();
    let b = Experiment::quick("milc_like").tracker("dapper-h").window_us(150.0).run();
    assert_eq!(a.run.retired, b.run.retired);
    assert_eq!(a.run.mem, b.run.mem);
}
