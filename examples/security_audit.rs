//! Ground-truth security audit: replay the command stream through the
//! oracle and verify no victim row crosses N_RH without a refresh.
//!
//! Run with: `cargo run --release --example security_audit`

use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::workloads::Attack;

fn main() {
    let nrh = 500;
    println!("auditing a refresh-attack run at N_RH = {nrh} (1 ms window)\n");
    for tracker in ["dapper-h", "dapper-s", "none"] {
        let r = Experiment::new("povray_like")
            .tracker(tracker)
            .attack(AttackChoice::Specific(Attack::RefreshAttack))
            .window_us(1000.0)
            .nrh(nrh)
            .with_oracle()
            .run();
        let (max_damage, violations) = r.run.oracle.expect("oracle attached");
        println!(
            "{:<10} max victim disturbance {:>6} / {nrh}   violations: {violations}",
            r.tracker_name, max_damage
        );
    }
    println!("\nThe undefended system is hammered (violations > 0); both DAPPER");
    println!("variants keep every victim row below the RowHammer threshold.");
}
