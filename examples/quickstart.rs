//! Quickstart: build DAPPER-H, watch it stop a hammering pattern, then run
//! a small full-system experiment.
//!
//! Run with: `cargo run --release --example quickstart`

use dapper_repro::dapper::{DapperConfig, DapperH};
use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::sim_core::addr::DramAddr;
use dapper_repro::sim_core::req::SourceId;
use dapper_repro::sim_core::tracker::{Activation, RowHammerTracker, TrackerAction};

fn main() {
    // --- 1. The tracker in isolation -------------------------------------
    let cfg = DapperConfig::baseline(500, 0, 42);
    let mut tracker = DapperH::new(cfg);
    println!(
        "DAPPER-H: {} groups/rank, N_M = {}, {:.0} KB SRAM per 32 GB channel",
        cfg.groups_per_rank(),
        cfg.nm(),
        tracker.storage_overhead().sram_kb()
    );

    // Hammer one row; DAPPER-H must refresh its victims before N_RH = 500.
    let aggressor = DramAddr::new(0, 0, 3, 1, 0x4242, 0);
    let mut actions = Vec::new();
    for cycle in 1..=500u64 {
        actions.clear();
        tracker.on_activation(
            Activation { addr: aggressor, source: SourceId(0), cycle },
            &mut actions,
        );
        if actions.iter().any(|a| matches!(a, TrackerAction::MitigateRow(r) if r.row == 0x4242)) {
            println!("aggressor mitigated after {cycle} activations (< N_RH = 500)");
            break;
        }
    }

    // --- 2. A full-system experiment -------------------------------------
    println!("\nrunning a 500us full-system window (4 cores, 2 DDR5 channels)...");
    let result = Experiment::quick("gcc_like").tracker("dapper-h").attack(AttackChoice::None).run();
    println!(
        "benign normalized performance with DAPPER-H: {:.4} (paper: ~0.999)",
        result.normalized_performance
    );
    println!(
        "memory activity: {} ACTs, {} reads, {} writes, {} mitigations",
        result.run.mem.activations,
        result.run.mem.reads,
        result.run.mem.writes,
        result.run.mem.vrr_commands,
    );
}
