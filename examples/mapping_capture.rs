//! Why single hashing is not enough: the Mapping-Capturing analysis of
//! Table II and Section VI-C, on real LLBC mappings.
//!
//! Run with: `cargo run --release --example mapping_capture`

use dapper_repro::analysis::equations::{dapper_h_success, table_two};
use dapper_repro::analysis::montecarlo::{h_capture_trials, s_capture_trials};
use dapper_repro::dapper::DapperConfig;
use dapper_repro::sim_core::addr::Geometry;

fn main() {
    println!("-- DAPPER-S: expected time to capture one mapping pair (Table II) --");
    for r in table_two() {
        println!(
            "  reset every {:>5.0} us -> captured in {:>9.3} ms ({:>7.1} iterations)",
            r.t_reset_ns / 1e3,
            r.at_time_ns / 1e6,
            r.at_iter
        );
    }

    let h = dapper_h_success(8192, 250, 616_000.0);
    println!("\n-- DAPPER-H: double hashing (Eqs. 6-7) --");
    println!("  per-trial success: {:.2e}", h.p_trial);
    println!("  success within one tREFW: {:.2e}", h.p_window);
    println!("  -> prevention rate {:.2}% (paper: 99.99%)", 100.0 * (1.0 - h.p_window));

    // Validate on the actual ciphers with a miniature geometry (256 groups)
    // so the event is frequent enough to measure quickly.
    let mut cfg = DapperConfig::baseline(500, 0, 7);
    cfg.geometry = Geometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows_per_bank: 16 * 1024,
        row_bytes: 8192,
    };
    let n = cfg.groups_per_rank() as f64;
    let (sh, st) = s_capture_trials(cfg, 300_000, 1);
    let (hh, ht) = h_capture_trials(cfg, 3_000_000, 2);
    println!("\n-- Monte-Carlo on real LLBC mappings ({} groups) --", n as u64);
    println!(
        "  single-hash capture rate: measured {:.5}, analytic {:.5}",
        sh as f64 / st as f64,
        1.0 / n
    );
    let one = 1.0 - (1.0 - 1.0 / n) * (1.0 - 1.0 / n);
    println!(
        "  double-hash capture rate: measured {:.2e}, analytic {:.2e}",
        hh as f64 / ht as f64,
        one * one
    );
}
