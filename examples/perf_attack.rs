//! The paper's headline experiment in miniature: a tailored Perf-Attack
//! devastates a shared-structure tracker (Hydra) while DAPPER-H shrugs off
//! its strongest mapping-agnostic attack.
//!
//! Run with: `cargo run --release --example perf_attack`

use dapper_repro::sim::experiment::{AttackChoice, Experiment};
use dapper_repro::workloads::Attack;

fn main() {
    let window_us = 2000.0;
    println!("co-running workload: parest_r_like (510.parest stand-in), {window_us} us window\n");

    // Hydra under its tailored RCC-thrash attack (normalized vs attack-free
    // baseline: shows the combined contention + tracker amplification).
    let hydra = Experiment::new("parest_r_like")
        .tracker("hydra")
        .attack(AttackChoice::Tailored)
        .window_us(window_us)
        .run();
    println!(
        "Hydra  + tailored attack : {:.3} of baseline ({} extra DRAM counter ops)",
        hydra.normalized_performance,
        hydra.run.mem.counter_reads + hydra.run.mem.counter_writes
    );

    // DAPPER-H under the refresh attack, tracker overhead isolated (the
    // paper's Fig. 10 normalization).
    let dapper = Experiment::new("parest_r_like")
        .tracker("dapper-h")
        .attack(AttackChoice::Specific(Attack::RefreshAttack))
        .isolating()
        .window_us(window_us)
        .run();
    println!(
        "DAPPER-H + refresh attack: {:.3} of baseline ({} victim-row refreshes)",
        dapper.normalized_performance, dapper.run.mem.victim_rows_refreshed
    );

    println!("\npaper: Hydra loses ~61% under its tailored attack; DAPPER-H loses <1%");
}
