//! A miniature red-team campaign: the fixed attack matrix plus a short
//! worst-case search against two trackers, in a few seconds.
//!
//! Run with: `cargo run --release --example redteam_quick`

use dapper_repro::attacklab::{run_campaign, CampaignConfig};
use dapper_repro::sim::TrackerSel;

fn main() {
    let mut cfg = CampaignConfig::new(
        vec![TrackerSel::by_key("dapper-h").unwrap(), TrackerSel::by_key("hydra").unwrap()],
        "libquantum_like",
    );
    cfg.window_us = 120.0;
    cfg.search_budget = 12;

    let report = run_campaign(&cfg);
    println!("resilience leaderboard (worst case per tracker, best defense first):");
    print!("{}", report.leaderboard_table());
    for s in &report.searches {
        println!(
            "{}: search best {:.2}x vs tailored {:.2}x (seed {:#x} reproduces it)",
            s.tracker, s.best.slowdown, s.tailored.slowdown, s.seed
        );
    }
}
