//! Quick diagnostic: how much of the window the event engine elides.
use sim::experiment::{AttackChoice, Experiment};
use sim::Engine;

fn main() {
    let cases: Vec<(&str, Experiment)> = vec![
        ("povray/dapper-h", Experiment::new("povray_like").tracker("dapper-h").window_us(500.0)),
        ("povray/none", Experiment::new("povray_like").tracker("none").window_us(500.0)),
        ("namd/none", Experiment::new("namd_like").tracker("none").window_us(500.0)),
        ("mcf/dapper-h", Experiment::new("mcf_like").tracker("dapper-h").window_us(500.0)),
        (
            "gcc/hydra+att",
            Experiment::new("gcc_like")
                .tracker("hydra")
                .attack(AttackChoice::Tailored)
                .window_us(500.0),
        ),
    ];
    for (name, e) in cases {
        let mut sys = e.build_system(false);
        let t = std::time::Instant::now();
        let stats = sys.run_engine(Engine::EventDriven);
        let dt = t.elapsed().as_secs_f64();
        let es = sys.engine_stats();
        let (dense, skipped, skips) = (es.dense_steps, es.skipped_cycles, es.skips);
        println!(
            "{name:<16} cycles {:>9}  dense {:>9} ({:>5.1}%)  skipped {:>9} in {:>7} jumps (avg {:>6.1})  {:>6.1} Mc/s",
            stats.cycles, dense,
            100.0 * dense as f64 / stats.cycles as f64,
            skipped, skips,
            skipped as f64 / skips.max(1) as f64,
            stats.cycles as f64 / dt / 1e6,
        );
    }
}
