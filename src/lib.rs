//! # DAPPER reproduction — workspace facade
//!
//! This crate re-exports every workspace member so examples and integration
//! tests can reach the whole system through one dependency. The interesting
//! code lives in the member crates:
//!
//! * [`dapper`] — DAPPER-S / DAPPER-H, the paper's contribution,
//! * [`trackers`] — Hydra, START, CoMeT, ABACUS, BlockHammer, PARA, PrIDE,
//!   PRAC baselines,
//! * [`sim`] — the full-system simulator and experiment runner,
//! * [`workloads`] — the 57-workload catalog and the Perf-Attack generators,
//! * [`analysis`] — security/storage/energy models and the RowHammer oracle,
//! * [`attacklab`] — the composable adversarial scenario engine, worst-case
//!   scenario search, and the campaign machinery,
//! * [`attackpipe`] — the end-to-end attacker pipeline (timing-side-channel
//!   recon → hammer compilation → victim bit-flip adjudication) and the
//!   `redteam` campaign runner,
//! * [`profiler`] — the profile → evaluate → attack campaign workflow:
//!   cached sensitivity heatmaps, ranked vulnerability reports,
//!   warm-started worst-case search, and the `warroom` live dashboard,
//! * [`dram`], [`memctrl`], [`llcache`], [`cpu`], [`llbc`], [`sim_core`] —
//!   substrates.
//!
//! # Quickstart
//!
//! Trackers resolve through the open registry by string key (any
//! registered tracker, built-in or third-party, with optional parameter
//! overrides):
//!
//! ```no_run
//! use dapper_repro::sim::experiment::{AttackChoice, Experiment};
//!
//! let result = Experiment::quick("milc_like")
//!     .tracker("dapper-h")
//!     .attack(AttackChoice::None)
//!     .run();
//! assert!(result.normalized_performance > 0.5);
//! ```

#![forbid(unsafe_code)]

pub use analysis;
pub use attacklab;
pub use attackpipe;
pub use cpu;
pub use dapper;
pub use dram;
pub use llbc;
pub use llcache;
pub use memctrl;
pub use profiler;
pub use sim;
pub use sim_core;
pub use trackers;
pub use workloads;
