//! The evaluate stage: re-run the heatmap's top-K cells at full fidelity
//! and rank them into a vulnerability report.
//!
//! Probe windows are deliberately short — cheap, but noisy about sustained
//! damage. The evaluate stage promotes the strongest cells to the full
//! campaign window (the same fidelity `attacklab` campaigns use) and ranks
//! the survivors by measured slowdown, which is the list a defender should
//! actually worry about.

use attacklab::scenario::ScenarioSpec;
use sim::cache::{cell_key_with_attack_id, RunCache};
use sim::experiment::TrackerSel;
use sim::runner::parallel_map;
use sim::{Engine, Threads};
use sim_core::json::Json;

use crate::heatmap::{Family, SensitivityHeatmap};
use crate::profile::{probe_experiment, ProfileConfig, ProfileStats};
use crate::CampaignEvent;

/// Evaluate-stage configuration.
#[derive(Debug, Clone)]
pub struct EvaluateConfig {
    /// Tracker to evaluate against (normally rebuilt from the heatmap's
    /// `tracker_key`; pass an explicit selection to carry parameter
    /// overrides the key alone cannot express).
    pub tracker: TrackerSel,
    /// Heatmap cells promoted to full fidelity.
    pub top_k: usize,
    /// Full-fidelity simulation window, microseconds.
    pub window_us: f64,
    /// Simulation engine.
    pub engine: Engine,
    /// Memory-phase execution lanes.
    pub threads: Threads,
}

impl EvaluateConfig {
    /// Defaults for a heatmap: its own tracker key, top 5 cells, the
    /// attacklab campaign window (250 µs).
    pub fn for_heatmap(map: &SensitivityHeatmap) -> Result<Self, String> {
        let tracker = TrackerSel::by_key(&map.tracker_key).map_err(|e| e.to_string())?;
        Ok(Self {
            tracker,
            top_k: 5,
            window_us: 250.0,
            engine: Engine::default(),
            threads: Threads::Seq,
        })
    }
}

/// One full-fidelity row of the vulnerability report.
#[derive(Debug, Clone)]
pub struct VulnRow {
    /// 1-based rank by full-fidelity slowdown.
    pub rank: usize,
    /// Probe family.
    pub family: Family,
    /// Bank-spread bucket.
    pub bank_group: u32,
    /// Intensity bucket.
    pub row_group: u32,
    /// The genome evaluated.
    pub probe: ScenarioSpec,
    /// The short-probe score that promoted this cell.
    pub probe_score: f64,
    /// Full-fidelity mean slowdown.
    pub slowdown: f64,
    /// Normalized performance (the paper's metric).
    pub normalized_performance: f64,
    /// Mitigation commands issued (VRR + RFM).
    pub mitigations: u64,
    /// Tracker counter reads + writes injected into DRAM.
    pub counter_ops: u64,
    /// Microseconds until the worst window.
    pub time_to_max_us: Option<f64>,
    /// Microseconds from the worst window to recovery.
    pub recovery_us: Option<f64>,
}

/// The ranked vulnerability report the evaluate stage emits.
#[derive(Debug, Clone)]
pub struct VulnReport {
    /// Tracker display label.
    pub tracker: String,
    /// Benign workload.
    pub workload: String,
    /// Full-fidelity window, microseconds.
    pub window_us: f64,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Seed shared with the profile stage.
    pub seed: u64,
    /// Rows ranked by slowdown descending.
    pub rows: Vec<VulnRow>,
}

impl VulnReport {
    /// Canonical JSON document.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("rank", Json::count(r.rank as u64)),
                    ("family", Json::str(r.family.key())),
                    ("bank_group", Json::count(r.bank_group as u64)),
                    ("row_group", Json::count(r.row_group as u64)),
                    ("probe", r.probe.to_json()),
                    ("probe_score", Json::num(r.probe_score)),
                    ("slowdown", Json::num(r.slowdown)),
                    ("normalized_performance", Json::num(r.normalized_performance)),
                    ("mitigations", Json::count(r.mitigations)),
                    ("counter_ops", Json::count(r.counter_ops)),
                    ("time_to_max_us", r.time_to_max_us.map_or(Json::Null, Json::num)),
                    ("recovery_us", r.recovery_us.map_or(Json::Null, Json::num)),
                ])
            })
            .collect();
        Json::obj([
            ("tracker", Json::str(&self.tracker)),
            ("workload", Json::str(&self.workload)),
            ("window_us", Json::num(self.window_us)),
            ("nrh", Json::count(self.nrh as u64)),
            ("seed", Json::hex(self.seed)),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Fixed-width table for terminals.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "vulnerability report — {} / {} ({} µs, N_RH {})\n",
            self.tracker, self.workload, self.window_us, self.nrh
        ));
        out.push_str(&format!(
            "{:<4} {:<28} {:>9} {:>11} {:>9} {:>12}\n",
            "rank", "scenario", "probe", "slowdown", "mitig.", "counter ops"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<4} {:<28} {:>8.2}x {:>10.2}x {:>9} {:>12}\n",
                r.rank,
                r.probe.name(),
                r.probe_score,
                r.slowdown,
                r.mitigations,
                r.counter_ops
            ));
        }
        out
    }
}

/// Runs the evaluate stage over the heatmap's top-K cells.
///
/// # Panics
///
/// Panics if a promoted genome fails to simulate (genomes are clamped, so
/// they always build).
pub fn run_evaluate(
    map: &SensitivityHeatmap,
    cfg: &EvaluateConfig,
    cache: Option<&RunCache>,
) -> (VulnReport, ProfileStats) {
    run_evaluate_observed(map, cfg, cache, &mut |_| {})
}

/// [`run_evaluate`] streaming [`CampaignEvent`]s to `observer`.
pub fn run_evaluate_observed(
    map: &SensitivityHeatmap,
    cfg: &EvaluateConfig,
    cache: Option<&RunCache>,
    observer: &mut dyn FnMut(&CampaignEvent),
) -> (VulnReport, ProfileStats) {
    observer(&CampaignEvent::Stage("evaluate"));
    // Full fidelity is just a profile configuration with a longer window:
    // the probe builder (telemetry, engine, threads, cache keys) is shared.
    let run_cfg = ProfileConfig {
        tracker: cfg.tracker.clone(),
        workload: map.workload.clone(),
        probe_window_us: cfg.window_us,
        nrh: map.nrh,
        seed: map.seed,
        bank_groups: map.bank_groups,
        row_groups: map.row_groups,
        families: map.families.clone(),
        engine: cfg.engine,
        threads: cfg.threads,
    };
    let promoted: Vec<_> = map.top(cfg.top_k).into_iter().cloned().collect();
    let mut stats = ProfileStats { cells: promoted.len(), ..ProfileStats::default() };

    let keyed: Vec<Option<sim::cache::CellKey>> = promoted
        .iter()
        .map(|cell| {
            cache.and_then(|_| {
                let e = probe_experiment(&run_cfg, &cell.probe);
                cell_key_with_attack_id(&e, Some(&cell.probe.to_json().render()))
            })
        })
        .collect();
    let mut results: Vec<Option<sim::ExperimentResult>> = Vec::with_capacity(promoted.len());
    let mut miss_idx = Vec::new();
    for (i, key) in keyed.iter().enumerate() {
        match (cache, key) {
            (Some(cache), Some(key)) => match cache.lookup(key) {
                Some(r) => {
                    stats.hits += 1;
                    results.push(Some(r));
                }
                None => {
                    results.push(None);
                    miss_idx.push(i);
                }
            },
            _ => {
                results.push(None);
                miss_idx.push(i);
            }
        }
    }
    stats.misses = miss_idx.len();
    if !miss_idx.is_empty() {
        let reference = {
            let mut e =
                probe_experiment(&run_cfg, &ScenarioSpec::baseline(workloads::Attack::CacheThrash));
            e.telemetry = sim::TelemetrySpec::default();
            e.build_system(true).run()
        };
        stats.simulations += 1;
        let specs: Vec<ScenarioSpec> =
            miss_idx.iter().map(|&i| promoted[i].probe.clone()).collect();
        let outcomes =
            parallel_map(specs, |spec| probe_experiment(&run_cfg, &spec).run_against(&reference));
        for (j, outcome) in outcomes.into_iter().enumerate() {
            let i = miss_idx[j];
            let result = outcome.unwrap_or_else(|e| {
                panic!("profiler: evaluation of {} failed: {e}", promoted[i].probe.name())
            });
            stats.simulations += 1;
            if let (Some(cache), Some(key)) = (cache, keyed[i].as_ref()) {
                cache.save(key, &result);
            }
            results[i] = Some(result);
        }
    }

    // Rank by full-fidelity slowdown; ties break on promotion order so the
    // report is deterministic.
    let mut rows: Vec<VulnRow> = promoted
        .iter()
        .zip(results)
        .map(|(cell, result)| {
            let r = result.expect("every promoted cell resolved");
            let np = r.normalized_performance.max(1e-6);
            VulnRow {
                rank: 0,
                family: cell.family,
                bank_group: cell.bank_group,
                row_group: cell.row_group,
                probe: cell.probe.clone(),
                probe_score: cell.score(),
                slowdown: 1.0 / np,
                normalized_performance: r.normalized_performance,
                mitigations: r.run.mem.vrr_commands + r.run.mem.rfm_commands,
                counter_ops: r.run.mem.counter_reads + r.run.mem.counter_writes,
                time_to_max_us: r.telemetry.as_ref().and_then(|t| t.time_to_max_slowdown_us()),
                recovery_us: r
                    .telemetry
                    .as_ref()
                    .and_then(|t| t.recovery_us(sim::RECOVERY_THRESHOLD)),
            }
        })
        .collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| rows[b].slowdown.total_cmp(&rows[a].slowdown).then(a.cmp(&b)));
    let mut ranked = Vec::with_capacity(rows.len());
    for (rank, i) in order.into_iter().enumerate() {
        let mut row = rows[i].clone();
        row.rank = rank + 1;
        observer(&CampaignEvent::Note(format!(
            "evaluate: #{} {} {:.2}x",
            row.rank,
            row.probe.name(),
            row.slowdown
        )));
        ranked.push(row);
    }
    rows = ranked;
    observer(&CampaignEvent::CacheStats { hits: stats.hits as u64, misses: stats.misses as u64 });
    (
        VulnReport {
            tracker: map.tracker.clone(),
            workload: map.workload.clone(),
            window_us: cfg.window_us,
            nrh: map.nrh,
            seed: map.seed,
            rows,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::Family;
    use crate::profile::{run_profile, ProfileConfig};

    #[test]
    fn evaluate_ranks_top_cells_at_full_fidelity() {
        let mut pcfg = ProfileConfig::new("hydra", "povray_like");
        pcfg.probe_window_us = 25.0;
        pcfg.bank_groups = 2;
        pcfg.row_groups = 2;
        pcfg.families = vec![Family::Hammer];
        let (map, _) = run_profile(&pcfg, None);
        let mut ecfg = EvaluateConfig::for_heatmap(&map).expect("tracker key resolves");
        ecfg.top_k = 2;
        ecfg.window_us = 60.0;
        let (report, stats) = run_evaluate(&map, &ecfg, None);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.simulations, 3, "2 cells + 1 reference");
        assert_eq!(report.rows[0].rank, 1);
        assert!(report.rows[0].slowdown >= report.rows[1].slowdown);
        let table = report.render_table();
        assert!(table.contains("vulnerability report"), "{table}");
        let json = report.to_json().render();
        assert!(json.contains("\"rows\""), "{json}");
    }
}
