//! `[profile]` spec routing: the declarative face of the campaign.
//!
//! A [`SweepSpec`] with a `[profile]` section runs
//! the profile → evaluate → attack workflow for every tracker × workload
//! cell instead of the plain sweep: `spec_run` dispatches here the same
//! way `[attacker]` sections dispatch to attackpipe. Artifacts (heatmap,
//! vulnerability report, and — when the section sets a non-zero `budget`
//! — the warm-started attack outcome) land in the output directory under
//! the spec's name.

use sim::cache::RunCache;
use sim::spec::{expand_workloads, SweepSpec};
use sim_core::json::Json;

use crate::attack::{run_attack, search_report_json, AttackConfig};
use crate::evaluate::{run_evaluate, EvaluateConfig};
use crate::heatmap::Family;
use crate::profile::{run_profile, ProfileConfig};

/// Defaults shared with the interactive CLI.
const DEFAULT_PROBE_WINDOW_US: f64 = 60.0;
const DEFAULT_GRID: u32 = 4;
const DEFAULT_TOP_K: usize = 5;
const DEFAULT_WINDOW_US: f64 = 250.0;
const DEFAULT_NRH: u32 = 500;
const DEFAULT_SEED: u64 = 0xDA99E5;

fn families_from_spec(names: &[String]) -> Result<Vec<Family>, String> {
    if names.is_empty() || names.iter().any(|n| n == "all") {
        return Ok(Family::ALL.to_vec());
    }
    let mut families = Vec::new();
    for name in names {
        let family = Family::by_key(name)
            .ok_or_else(|| format!("profile.families: unknown family '{name}'"))?;
        if !families.contains(&family) {
            families.push(family);
        }
    }
    Ok(families)
}

/// Runs a `[profile]` spec: the full workflow per tracker × workload cell,
/// reading probes through `cache_dir` when given (CLI flag or the spec's
/// own `[cache]` section, resolved by the caller). Prints per-cell stats
/// lines and returns the artifact paths written under `out_dir`.
pub fn run_profile_spec(
    spec: &SweepSpec,
    cache_dir: Option<&str>,
    out_dir: &str,
) -> Result<Vec<String>, String> {
    let popts = spec.profile.as_ref().ok_or("spec has no [profile] section")?;
    let trackers = spec.resolve_trackers().map_err(|e| e.to_string())?;
    let workload_names = expand_workloads(&spec.workloads).map_err(|e| e.to_string())?;
    let families = families_from_spec(&popts.families)?;
    let cache = match cache_dir {
        None => None,
        Some(dir) => {
            Some(RunCache::open(dir).map_err(|e| format!("cannot open cache dir {dir}: {e}"))?)
        }
    };
    let full_window_us = spec.options.window_us.unwrap_or(DEFAULT_WINDOW_US);
    let budget = popts.budget.unwrap_or(0);
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;

    let mut artifacts = Vec::new();
    let mut write = |stem: String, doc: Json| -> Result<(), String> {
        let path = format!("{out_dir}/{stem}.json");
        std::fs::write(&path, doc.render()).map_err(|e| format!("cannot write {path}: {e}"))?;
        artifacts.push(path);
        Ok(())
    };

    for tracker in &trackers {
        for workload in &workload_names {
            let cfg = ProfileConfig {
                tracker: tracker.clone(),
                workload: workload.clone(),
                probe_window_us: popts.probe_window_us.unwrap_or(DEFAULT_PROBE_WINDOW_US),
                nrh: spec.options.nrh.unwrap_or(DEFAULT_NRH),
                seed: spec.options.seed.unwrap_or(DEFAULT_SEED),
                bank_groups: popts.bank_groups.unwrap_or(DEFAULT_GRID),
                row_groups: popts.row_groups.unwrap_or(DEFAULT_GRID),
                families: families.clone(),
                engine: spec.options.engine.unwrap_or_default(),
                threads: sim::Threads::Seq,
            };
            let stem = format!("{}_{}_{}", spec.name, tracker.key(), workload);
            let (map, stats) = run_profile(&cfg, cache.as_ref());
            println!("  profile  {:<13} {:<18} {stats}", tracker.key(), workload);
            write(format!("{stem}_heatmap"), map.to_json())?;

            // Evaluate reuses the resolved selection so `[params.*]`
            // overrides survive (the heatmap file alone only carries the
            // registry key).
            let ecfg = EvaluateConfig {
                tracker: tracker.clone(),
                top_k: popts.top_k.unwrap_or(DEFAULT_TOP_K as u32) as usize,
                window_us: full_window_us,
                engine: cfg.engine,
                threads: cfg.threads,
            };
            let (report, estats) = run_evaluate(&map, &ecfg, cache.as_ref());
            println!("  evaluate {:<13} {:<18} {estats}", tracker.key(), workload);
            write(format!("{stem}_report"), report.to_json())?;

            if budget > 0 {
                let acfg = AttackConfig {
                    tracker: tracker.clone(),
                    window_us: full_window_us,
                    budget,
                    batch: budget.min(6),
                    seed: map.seed,
                    priors: 4,
                };
                let outcome = run_attack(&map, &acfg, false);
                println!(
                    "  attack   {:<13} {:<18} best {:.3}x via {} ({} evaluations, {} dedup hits)",
                    tracker.key(),
                    workload,
                    outcome.warm.best.slowdown,
                    outcome.warm.best.name,
                    outcome.warm.evaluations,
                    outcome.warm.dedup_hits,
                );
                write(format!("{stem}_attack"), search_report_json(&outcome.warm))?;
            }
        }
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "profile_spec_test"
workloads = ["povray_like"]
trackers = ["hydra"]
window_us = 60
seed = 14315493

[profile]
bank_groups = 2
row_groups = 2
probe_window_us = 25.0
families = ["hammer"]
top_k = 2
"#;

    #[test]
    fn profile_spec_runs_the_workflow_and_writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("profiler-spec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out_dir = dir.to_str().expect("utf-8 temp path");
        let spec = SweepSpec::from_toml_str(SPEC).expect("spec parses");
        let artifacts = run_profile_spec(&spec, None, out_dir).expect("spec runs");
        assert_eq!(artifacts.len(), 2, "heatmap + report, no attack at budget 0");
        assert!(artifacts[0].ends_with("profile_spec_test_hydra_povray_like_heatmap.json"));
        assert!(artifacts[1].ends_with("profile_spec_test_hydra_povray_like_report.json"));
        for path in &artifacts {
            let text = std::fs::read_to_string(path).expect("artifact readable");
            Json::parse(&text).expect("artifact is JSON");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn family_lists_expand_validate_and_dedupe() {
        assert_eq!(families_from_spec(&[]).unwrap(), Family::ALL.to_vec());
        assert_eq!(families_from_spec(&["all".into()]).unwrap(), Family::ALL.to_vec());
        assert_eq!(
            families_from_spec(&["sweep".into(), "sweep".into()]).unwrap(),
            vec![Family::Sweep]
        );
        assert!(families_from_spec(&["warp".into()]).is_err());
    }
}
