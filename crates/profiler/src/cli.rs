//! The `profile` / `evaluate` / `attack` subcommands of the `redteam`
//! binary.
//!
//! ```text
//! redteam profile  --tracker hydra --workload povray_like --cache-dir out/cache
//! redteam evaluate --heatmap out/heatmap.json --top-k 5
//! redteam attack   --heatmap out/heatmap.json --baseline --max-ratio 0.6
//! ```
//!
//! Each stage consumes the previous stage's artifact, so a campaign is
//! three commands — or one `[profile]` spec section through `spec_run`.
//! `--tui` renders the live warroom dashboard while a stage runs.

use sim::cache::RunCache;
use sim::experiment::TrackerSel;
use sim_core::json::Json;

use crate::attack::{run_attack_observed, AttackConfig};
use crate::evaluate::{run_evaluate_observed, EvaluateConfig};
use crate::heatmap::{Family, SensitivityHeatmap};
use crate::profile::{run_profile_observed, ProfileConfig};
use crate::warroom::Dashboard;
use crate::CampaignEvent;

const USAGE: &str = "redteam profiler — profile → evaluate → attack campaign stages

USAGE:
  redteam profile  [--tracker KEY] [--workload NAME] [--probe-window-us F]
                   [--nrh N] [--seed N] [--bank-groups N] [--row-groups N]
                   [--families a,b] [--cache-dir DIR] [--out FILE]
                   [--tui] [--no-ansi]
  redteam evaluate --heatmap FILE [--top-k N] [--window-us F]
                   [--cache-dir DIR] [--out FILE] [--tui] [--no-ansi]
  redteam attack   --heatmap FILE [--budget N] [--batch N] [--window-us F]
                   [--seed N] [--priors N] [--baseline] [--max-ratio F]
                   [--out FILE] [--tui] [--no-ansi]

profile   sweeps cheap short-horizon probes over the bank-spread ×
          intensity × pattern-family grid and writes a sensitivity
          heatmap (default tracker hydra, workload povray_like,
          out/profile_heatmap.json). With --cache-dir, probes read
          through the content-addressed run cache: a warm re-profile
          performs zero simulations and reproduces the heatmap
          byte-identically.
          --families is a comma list of hammer,sweep,diagonal,thrash
          or 'all' (default all).
evaluate  re-runs the heatmap's top-K cells at full fidelity (default
          250 us) and prints the ranked vulnerability report.
attack    feeds the heatmap's hottest genomes into the worst-case
          search as warm-start priors. --baseline also runs the cold
          random-restart search under the identical budget and reports
          warm/cold evaluations-to-target; --max-ratio F (requires
          --baseline) exits 1 unless the ratio is <= F.

--tui renders the live warroom dashboard (add --no-ansi for plain
frames); `warroom --render-once` previews it without a campaign.
";

/// Flag/value pairs plus boolean switches, strictly parsed: unknown
/// flags and missing values fail instead of silently defaulting.
struct Parsed<'a> {
    pairs: Vec<(&'static str, &'a String)>,
    switches: Vec<&'static str>,
}

impl<'a> Parsed<'a> {
    fn get(&self, flag: &str) -> Option<&'a String> {
        self.pairs.iter().rev().find(|(f, _)| *f == flag).map(|(_, v)| *v)
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.contains(&switch)
    }

    fn num(&self, flag: &str, default: f64) -> Result<f64, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{flag}: cannot parse '{v}'")),
        }
    }

    fn seed(&self, default: u64) -> Result<u64, String> {
        match self.get("--seed") {
            None => Ok(default),
            Some(v) => {
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                parsed.map_err(|_| format!("--seed: cannot parse '{v}'"))
            }
        }
    }
}

fn parse<'a>(
    args: &'a [String],
    flags: &'static [&'static str],
    switches: &'static [&'static str],
) -> Result<Parsed<'a>, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    let mut parsed = Parsed { pairs: Vec::new(), switches: Vec::new() };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(&known) = switches.iter().find(|&&s| s == arg) {
            parsed.switches.push(known);
            i += 1;
            continue;
        }
        let Some(&known) = flags.iter().find(|&&f| f == arg) else {
            return Err(format!("unknown argument '{arg}' (try --help)"));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("{arg} requires a value"));
        };
        parsed.pairs.push((known, value));
        i += 2;
    }
    Ok(parsed)
}

fn parse_families(list: &str) -> Result<Vec<Family>, String> {
    let mut families = Vec::new();
    for name in list.split(',').filter(|s| !s.is_empty()) {
        if name.trim().eq_ignore_ascii_case("all") {
            return Ok(Family::ALL.to_vec());
        }
        let family = Family::by_key(name.trim())
            .ok_or_else(|| format!("--families: unknown family '{name}' (try 'all')"))?;
        if !families.contains(&family) {
            families.push(family);
        }
    }
    if families.is_empty() {
        return Err("--families: no families named (try 'all')".to_string());
    }
    Ok(families)
}

fn open_cache(parsed: &Parsed<'_>) -> Result<Option<RunCache>, String> {
    match parsed.get("--cache-dir") {
        None => Ok(None),
        Some(dir) => RunCache::open(dir).map(Some).map_err(|e| format!("--cache-dir: {e}")),
    }
}

fn load_heatmap(parsed: &Parsed<'_>) -> Result<SensitivityHeatmap, String> {
    let path = parsed.get("--heatmap").ok_or("--heatmap FILE is required (try --help)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    SensitivityHeatmap::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn write_artifact(path: &str, content: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// An observer that optionally re-renders the warroom dashboard on every
/// event (the `--tui` path) while always accumulating state for a final
/// frame.
struct TuiObserver {
    dashboard: Dashboard,
    live: bool,
    ansi: bool,
}

impl TuiObserver {
    fn new(parsed: &Parsed<'_>) -> Self {
        Self {
            dashboard: Dashboard::new(),
            live: parsed.has("--tui"),
            ansi: !parsed.has("--no-ansi"),
        }
    }

    fn handle(&mut self, event: &CampaignEvent) {
        self.dashboard.handle(event);
        if self.live {
            print!("{}", self.dashboard.render(self.ansi));
        }
    }

    fn finish(mut self, heatmap_art: Option<&str>) {
        if !self.live {
            return;
        }
        if let Some(art) = heatmap_art {
            self.dashboard.set_heatmap_art(art);
        }
        print!("{}", self.dashboard.render(self.ansi));
    }
}

fn cmd_profile(args: &[String]) -> Result<i32, String> {
    let parsed = parse(
        args,
        &[
            "--tracker",
            "--workload",
            "--probe-window-us",
            "--nrh",
            "--seed",
            "--bank-groups",
            "--row-groups",
            "--families",
            "--cache-dir",
            "--out",
        ],
        &["--tui", "--no-ansi"],
    )?;
    let tracker_key = parsed.get("--tracker").map(String::as_str).unwrap_or("hydra");
    let tracker = TrackerSel::by_key(tracker_key).map_err(|e| e.to_string())?;
    let workload = parsed.get("--workload").map(String::as_str).unwrap_or("povray_like");
    if workloads::spec_by_name(workload).is_none() {
        return Err(format!("unknown workload '{workload}'"));
    }
    let mut cfg = ProfileConfig::new(tracker, workload);
    cfg.probe_window_us = parsed.num("--probe-window-us", cfg.probe_window_us)?;
    cfg.nrh = parsed.num("--nrh", cfg.nrh as f64)? as u32;
    cfg.seed = parsed.seed(cfg.seed)?;
    cfg.bank_groups = parsed.num("--bank-groups", cfg.bank_groups as f64)? as u32;
    cfg.row_groups = parsed.num("--row-groups", cfg.row_groups as f64)? as u32;
    if cfg.bank_groups == 0 || cfg.row_groups == 0 || cfg.probe_window_us <= 0.0 {
        return Err("profile grid and probe window must be positive".to_string());
    }
    if let Some(list) = parsed.get("--families") {
        cfg.families = parse_families(list)?;
    }
    let cache = open_cache(&parsed)?;
    let mut tui = TuiObserver::new(&parsed);
    let (map, stats) = run_profile_observed(&cfg, cache.as_ref(), &mut |e| tui.handle(e));
    let art = map.render_ascii();
    tui.finish(Some(&art));
    println!("profile: {stats}");
    print!("{art}");
    let out = parsed.get("--out").map(String::as_str).unwrap_or("out/profile_heatmap.json");
    write_artifact(out, &map.to_json().render())?;
    println!("heatmap written to {out}");
    Ok(0)
}

fn cmd_evaluate(args: &[String]) -> Result<i32, String> {
    let parsed = parse(
        args,
        &["--heatmap", "--top-k", "--window-us", "--cache-dir", "--out"],
        &["--tui", "--no-ansi"],
    )?;
    let map = load_heatmap(&parsed)?;
    let mut cfg = EvaluateConfig::for_heatmap(&map)?;
    cfg.top_k = parsed.num("--top-k", cfg.top_k as f64)? as usize;
    cfg.window_us = parsed.num("--window-us", cfg.window_us)?;
    if cfg.top_k == 0 || cfg.window_us <= 0.0 {
        return Err("--top-k and --window-us must be positive".to_string());
    }
    let cache = open_cache(&parsed)?;
    let mut tui = TuiObserver::new(&parsed);
    let (report, stats) = run_evaluate_observed(&map, &cfg, cache.as_ref(), &mut |e| tui.handle(e));
    tui.finish(None);
    println!("evaluate: {stats}");
    print!("{}", report.render_table());
    if let Some(out) = parsed.get("--out") {
        write_artifact(out, &report.to_json().render())?;
        println!("report written to {out}");
    }
    Ok(0)
}

fn cmd_attack(args: &[String]) -> Result<i32, String> {
    let parsed = parse(
        args,
        &[
            "--heatmap",
            "--budget",
            "--batch",
            "--window-us",
            "--seed",
            "--priors",
            "--max-ratio",
            "--out",
        ],
        &["--baseline", "--tui", "--no-ansi"],
    )?;
    let map = load_heatmap(&parsed)?;
    let mut cfg = AttackConfig::for_heatmap(&map)?;
    cfg.budget = parsed.num("--budget", cfg.budget as f64)? as u32;
    cfg.batch = parsed.num("--batch", cfg.batch as f64)? as u32;
    cfg.window_us = parsed.num("--window-us", cfg.window_us)?;
    cfg.seed = parsed.seed(cfg.seed)?;
    cfg.priors = parsed.num("--priors", cfg.priors as f64)? as usize;
    if cfg.budget == 0 || cfg.batch == 0 || cfg.window_us <= 0.0 {
        return Err("--budget, --batch and --window-us must be positive".to_string());
    }
    let baseline = parsed.has("--baseline");
    let max_ratio = match parsed.get("--max-ratio") {
        None => None,
        Some(v) => {
            if !baseline {
                return Err("--max-ratio requires --baseline".to_string());
            }
            Some(v.parse::<f64>().map_err(|_| format!("--max-ratio: cannot parse '{v}'"))?)
        }
    };
    let mut tui = TuiObserver::new(&parsed);
    let outcome = run_attack_observed(&map, &cfg, baseline, &mut |e| tui.handle(e));
    tui.finish(None);
    println!(
        "warm: best {:.3}x via {} in {} evaluations ({} dedup hits) | reproduce: --seed {}",
        outcome.warm.best.slowdown,
        outcome.warm.best.name,
        outcome.warm.evaluations,
        outcome.warm.dedup_hits,
        outcome.warm.seed,
    );
    if let Some(cold) = &outcome.cold {
        println!(
            "cold: best {:.3}x via {} in {} evaluations",
            cold.best.slowdown, cold.best.name, cold.evaluations
        );
        match (outcome.warm_evals_to_target, outcome.cold_evals_to_target) {
            (Some(w), Some(c)) => {
                println!("evals to cold target: warm {w}, cold {c}");
            }
            _ => println!("evals to cold target: warm never reached the cold best"),
        }
        match outcome.ratio {
            Some(r) => println!("warm/cold ratio: {r:.3}"),
            None => println!("warm/cold ratio: n/a"),
        }
    }
    if let Some(out) = parsed.get("--out") {
        let doc = Json::obj([
            ("warm", crate::attack::search_report_json(&outcome.warm)),
            ("cold", outcome.cold.as_ref().map_or(Json::Null, crate::attack::search_report_json)),
            (
                "warm_evals_to_target",
                outcome.warm_evals_to_target.map_or(Json::Null, |v| Json::count(v as u64)),
            ),
            (
                "cold_evals_to_target",
                outcome.cold_evals_to_target.map_or(Json::Null, |v| Json::count(v as u64)),
            ),
            ("ratio", outcome.ratio.map_or(Json::Null, Json::num)),
        ]);
        write_artifact(out, &doc.render())?;
        println!("outcome written to {out}");
    }
    if let Some(gate) = max_ratio {
        match outcome.ratio {
            Some(r) if r <= gate + 1e-9 => {
                println!("ratio gate: {r:.3} <= {gate} (pass)");
            }
            Some(r) => {
                eprintln!("ratio gate: {r:.3} > {gate} (fail)");
                return Ok(1);
            }
            None => {
                eprintln!("ratio gate: warm search never reached the cold best (fail)");
                return Ok(1);
            }
        }
    }
    Ok(0)
}

/// Profiler CLI entry point; returns the process exit code. `args` starts
/// at the subcommand (`profile`, `evaluate`, or `attack`).
pub fn main_with_args(args: &[String]) -> i32 {
    let Some(sub) = args.first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let rest = &args[1..];
    let outcome = match sub.as_str() {
        "profile" => cmd_profile(rest),
        "evaluate" => cmd_evaluate(rest),
        "attack" => cmd_attack(rest),
        _ => Err(format!("unknown subcommand '{sub}' (try --help)")),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn rejects_unknown_flags_subcommands_and_bad_values() {
        assert_eq!(main_with_args(&argv("profile --buget 5")), 2);
        assert_eq!(main_with_args(&argv("nonsense")), 2);
        assert_eq!(main_with_args(&argv("profile --tracker")), 2);
        assert_eq!(main_with_args(&[]), 2);
        assert_eq!(main_with_args(&argv("attack --max-ratio 0.6")), 2, "needs --heatmap");
        assert_eq!(main_with_args(&argv("evaluate --top-k 3")), 2, "needs --heatmap");
    }

    #[test]
    fn families_parse_with_dedup_and_the_all_token() {
        assert_eq!(parse_families("all").unwrap(), Family::ALL.to_vec());
        assert_eq!(
            parse_families("sweep,hammer,sweep").unwrap(),
            vec![Family::Sweep, Family::Hammer]
        );
        assert!(parse_families("warp").is_err());
        assert!(parse_families(",").is_err());
    }

    #[test]
    fn seeds_parse_in_decimal_and_hex() {
        let hex = argv("--seed 0xDA99E5");
        let parsed = parse(&hex, &["--seed"], &[]).unwrap();
        assert_eq!(parsed.seed(0).unwrap(), 0xDA99E5);
        let dec = argv("--seed 12345");
        let parsed = parse(&dec, &["--seed"], &[]).unwrap();
        assert_eq!(parsed.seed(0).unwrap(), 12345);
    }

    #[test]
    fn profile_and_attack_run_end_to_end_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("profiler-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let heatmap = dir.join("heatmap.json");
        let heatmap = heatmap.to_str().expect("utf-8 temp path");
        let code = main_with_args(&argv(&format!(
            "profile --tracker hydra --workload povray_like --probe-window-us 25 \
             --bank-groups 2 --row-groups 2 --families hammer --out {heatmap}"
        )));
        assert_eq!(code, 0);
        let text = std::fs::read_to_string(heatmap).expect("heatmap artifact");
        let map = SensitivityHeatmap::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(map.cells.len(), 4);
        let code = main_with_args(&argv(&format!(
            "attack --heatmap {heatmap} --budget 8 --batch 4 --window-us 60 --priors 2"
        )));
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
