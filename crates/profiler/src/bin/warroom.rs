//! `warroom` — render the profiler campaign dashboard.
//!
//! ```text
//! warroom --render-once [--no-ansi]
//! ```
//!
//! Prints one deterministic synthetic frame and exits: a headless smoke
//! test for the renderer (CI greps the panel titles). Live campaigns get
//! the same dashboard via `redteam profile|evaluate|attack --tui`.

use profiler::Dashboard;

const USAGE: &str = "warroom — profiler campaign dashboard

USAGE: warroom --render-once [--no-ansi]

  --render-once  print one deterministic synthetic frame and exit
  --no-ansi      plain text, no clear-screen/cursor-home escapes

Live rendering is driven by the campaign stages:
  redteam profile --tui | redteam evaluate --tui | redteam attack --tui
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut render_once = false;
    let mut ansi = true;
    for arg in &args {
        match arg.as_str() {
            "--render-once" => render_once = true,
            "--no-ansi" => ansi = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if !render_once {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    print!("{}", Dashboard::render_once_sample(ansi));
}
