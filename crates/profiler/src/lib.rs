//! # profiler — profile → evaluate → attack campaign workflow
//!
//! A three-stage red-team campaign against a tracker configuration,
//! porting the shape of CodeyBoi/kyber-not-it's `profile` / `evaluate` /
//! `attack` tooling onto the DAPPER reproduction:
//!
//! 1. **profile** ([`run_profile`]) — sweep cheap short-horizon probe
//!    scenarios over the bank-spread × intensity × pattern-family grid
//!    and score each cell by the benign slowdown it provokes, producing a
//!    [`SensitivityHeatmap`]. Probes read through the content-addressed
//!    run cache, so a warm profile performs **zero** simulations and
//!    reproduces the heatmap byte-identically.
//! 2. **evaluate** ([`run_evaluate`]) — re-run the top-K heatmap cells at
//!    full fidelity and emit a ranked [`VulnReport`].
//! 3. **attack** ([`run_attack`]) — feed the heatmap's hottest genomes
//!    into [`attacklab::search_seeded`] as warm-start priors, replacing
//!    the hill-climber's cold random restarts; the outcome records how
//!    many fewer evaluations the warm search needed to reach the cold
//!    baseline's worst-case slowdown.
//!
//! The [`warroom`] module renders campaigns live in a raw-ANSI terminal
//! dashboard (no dependencies, offline-friendly); [`cli`] exposes the
//! `profile` / `evaluate` / `attack` subcommands the `redteam` binary
//! dispatches to, and [`spec`] routes `[profile]` spec sections from
//! `spec_run`.

#![forbid(unsafe_code)]

pub mod attack;
pub mod cli;
pub mod evaluate;
pub mod heatmap;
pub mod profile;
pub mod spec;
pub mod warroom;

pub use attack::{run_attack, run_attack_observed, AttackConfig, AttackOutcome};
pub use evaluate::{run_evaluate, run_evaluate_observed, EvaluateConfig, VulnReport, VulnRow};
pub use heatmap::{probe_spec, Family, HeatmapCell, SensitivityHeatmap};
pub use profile::{
    probe_experiment, run_profile, run_profile_observed, ProfileConfig, ProfileStats,
};
pub use warroom::Dashboard;

/// One live event of a running campaign — what the stages stream and the
/// [`warroom::Dashboard`] renders.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// A stage began (`"profile"`, `"evaluate"`, `"attack"`).
    Stage(&'static str),
    /// A sweep-progress line in the campaignd wire shape (the daemon's
    /// streaming submits produce these; local stages synthesize them).
    Progress(campaignd::ProgressEvent),
    /// One heatmap probe resolved.
    ProbeDone {
        /// Probe family.
        family: Family,
        /// Bank-spread bucket.
        bank_group: u32,
        /// Intensity bucket.
        row_group: u32,
        /// Mean slowdown the probe provoked.
        slowdown: f64,
        /// Whether the run cache answered it without simulating.
        cached: bool,
    },
    /// One per-window [`SlowdownTrace`](sim_core::SlowdownTrace) sample of
    /// the scenario currently on display.
    TraceSample {
        /// Window index within the run.
        index: u32,
        /// Slowdown in that window.
        slowdown: f64,
    },
    /// The search frontier advanced: best slowdown after `evaluation`
    /// candidate evaluations.
    Frontier {
        /// Candidate evaluations spent so far.
        evaluation: u32,
        /// Best slowdown found so far.
        best_slowdown: f64,
    },
    /// Run-cache counters for the stage so far.
    CacheStats {
        /// Cells answered from cache.
        hits: u64,
        /// Cells that simulated.
        misses: u64,
    },
    /// A free-form log line.
    Note(String),
}
