//! The attack stage: hill-climbing search warm-started from the heatmap.
//!
//! [`attacklab::search_seeded`] takes the profile's hottest genomes as
//! priors: they join the initial population and replace the cold random
//! restarts, so the search spends its budget where the tracker already
//! proved weak. The outcome records how many candidate evaluations the
//! warm search needed to reach the cold random-restart baseline's best
//! slowdown — the workflow's headline speedup.

use attacklab::search::{reference_run, search_seeded_observed, SearchConfig, SearchReport};
use sim::experiment::TrackerSel;

use crate::heatmap::SensitivityHeatmap;
use crate::CampaignEvent;

/// Attack-stage configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Tracker to attack (normally rebuilt from the heatmap's
    /// `tracker_key`).
    pub tracker: TrackerSel,
    /// Full-fidelity search window, microseconds.
    pub window_us: f64,
    /// Total candidate evaluations.
    pub budget: u32,
    /// Mutants per generation.
    pub batch: u32,
    /// Search seed (defaults to the heatmap's probe seed).
    pub seed: u64,
    /// Heatmap genomes fed in as warm-start priors.
    pub priors: usize,
}

impl AttackConfig {
    /// Defaults for a heatmap: its own tracker key and seed, the attacklab
    /// campaign window, a 48-evaluation budget in batches of 6, the 4
    /// hottest genomes as priors.
    pub fn for_heatmap(map: &SensitivityHeatmap) -> Result<Self, String> {
        let tracker = TrackerSel::by_key(&map.tracker_key).map_err(|e| e.to_string())?;
        Ok(Self { tracker, window_us: 250.0, budget: 48, batch: 6, seed: map.seed, priors: 4 })
    }

    fn search_config(&self, map: &SensitivityHeatmap) -> SearchConfig {
        let mut cfg = SearchConfig::new(self.tracker.clone(), &map.workload);
        cfg.window_us = self.window_us;
        cfg.nrh = map.nrh;
        cfg.seed = self.seed;
        cfg.budget = self.budget;
        cfg.batch = self.batch;
        cfg
    }
}

/// Outcome of the attack stage.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The heatmap-warmed search.
    pub warm: SearchReport,
    /// The cold random-restart baseline, when requested.
    pub cold: Option<SearchReport>,
    /// Evaluations the warm search needed to reach the cold baseline's
    /// best slowdown (`None` when it never did, or without a baseline).
    pub warm_evals_to_target: Option<u32>,
    /// Evaluations the cold search needed to reach its own best.
    pub cold_evals_to_target: Option<u32>,
    /// `warm_evals_to_target / cold_evals_to_target` — below 1.0 the
    /// warm start paid off; the CI gate requires ≤ 0.6 on the pinned
    /// benchmark.
    pub ratio: Option<f64>,
}

/// Canonical JSON document for one search report (shared by the CLI and
/// the spec runner's attack artifacts).
pub fn search_report_json(r: &SearchReport) -> sim_core::json::Json {
    use sim_core::json::Json;
    Json::obj([
        ("tracker", Json::str(&r.tracker)),
        ("seed", Json::hex(r.seed)),
        ("evaluations", Json::count(r.evaluations as u64)),
        ("dedup_hits", Json::count(r.dedup_hits as u64)),
        ("best_name", Json::str(&r.best.name)),
        ("best_slowdown", Json::num(r.best.slowdown)),
        ("best_spec", r.best.spec.to_json()),
        (
            "history",
            Json::Arr(
                r.history
                    .iter()
                    .map(|(e, b)| Json::Arr(vec![Json::count(*e as u64), Json::num(*b)]))
                    .collect(),
            ),
        ),
    ])
}

/// First history point at which the climb reached `target` slowdown.
fn evals_to_reach(history: &[(u32, f64)], target: f64) -> Option<u32> {
    history.iter().find(|(_, best)| *best >= target - 1e-9).map(|(evals, _)| *evals)
}

/// Runs the attack stage. With `baseline` set, also runs the cold
/// random-restart search under the identical budget/seed (sharing the
/// reference run) and scores warm-vs-cold evaluations-to-target.
///
/// # Panics
///
/// Panics if the budget is zero or the tailored-attack simulation fails.
pub fn run_attack(map: &SensitivityHeatmap, cfg: &AttackConfig, baseline: bool) -> AttackOutcome {
    run_attack_observed(map, cfg, baseline, &mut |_| {})
}

/// [`run_attack`] streaming [`CampaignEvent::Frontier`] points live.
pub fn run_attack_observed(
    map: &SensitivityHeatmap,
    cfg: &AttackConfig,
    baseline: bool,
    observer: &mut dyn FnMut(&CampaignEvent),
) -> AttackOutcome {
    observer(&CampaignEvent::Stage("attack"));
    let scfg = cfg.search_config(map);
    let priors = map.seed_genomes(cfg.priors);
    observer(&CampaignEvent::Note(format!(
        "attack: {} priors from the heatmap, budget {}",
        priors.len(),
        scfg.budget
    )));
    // One reference run shared by the warm search and the cold baseline.
    let reference = reference_run(&scfg);
    let warm = search_seeded_observed(&scfg, &reference, &priors, &mut |evaluation, best| {
        observer(&CampaignEvent::Frontier { evaluation, best_slowdown: best });
    });
    let cold = if baseline {
        Some(search_seeded_observed(&scfg, &reference, &[], &mut |_, _| {}))
    } else {
        None
    };
    let (warm_evals_to_target, cold_evals_to_target, ratio) = match &cold {
        Some(cold) => {
            let target = cold.best.slowdown;
            let warm_to = evals_to_reach(&warm.history, target);
            let cold_to = evals_to_reach(&cold.history, target);
            let ratio = match (warm_to, cold_to) {
                (Some(w), Some(c)) if c > 0 => Some(w as f64 / c as f64),
                _ => None,
            };
            (warm_to, cold_to, ratio)
        }
        None => (None, None, None),
    };
    AttackOutcome { warm, cold, warm_evals_to_target, cold_evals_to_target, ratio }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::Family;
    use crate::profile::{run_profile, ProfileConfig};

    #[test]
    fn attack_stage_feeds_heatmap_priors_into_the_search() {
        let mut pcfg = ProfileConfig::new("hydra", "povray_like");
        pcfg.probe_window_us = 25.0;
        pcfg.bank_groups = 2;
        pcfg.row_groups = 2;
        pcfg.families = vec![Family::Hammer, Family::Sweep];
        let (map, _) = run_profile(&pcfg, None);
        let mut acfg = AttackConfig::for_heatmap(&map).expect("tracker key resolves");
        acfg.window_us = 60.0;
        acfg.budget = 8;
        acfg.batch = 4;
        acfg.priors = 2;
        let mut frontier = Vec::new();
        let outcome = run_attack_observed(&map, &acfg, true, &mut |e| {
            if let CampaignEvent::Frontier { evaluation, best_slowdown } = e {
                frontier.push((*evaluation, *best_slowdown));
            }
        });
        assert_eq!(outcome.warm.evaluations, 8);
        assert_eq!(frontier, outcome.warm.history, "frontier stream mirrors the history");
        let cold = outcome.cold.expect("baseline requested");
        assert_eq!(cold.evaluations, 8);
        assert!(outcome.warm.rediscovered_tailored());
        // The warm search saw the priors: its first batch includes them,
        // so its history differs from cold's unless the priors were
        // strictly dominated from the start.
        assert!(outcome.warm.best.slowdown >= cold.tailored.slowdown - 1e-9);
    }

    #[test]
    fn evals_to_reach_scans_the_history() {
        let history = vec![(4, 1.0), (8, 2.0), (12, 2.0), (16, 3.5)];
        assert_eq!(evals_to_reach(&history, 1.0), Some(4));
        assert_eq!(evals_to_reach(&history, 2.0), Some(8));
        assert_eq!(evals_to_reach(&history, 3.4), Some(16));
        assert_eq!(evals_to_reach(&history, 9.9), None);
    }
}
