//! The profile stage: sweep cheap probe scenarios over the sensitivity
//! grid and score each cell by the slowdown it provokes.
//!
//! Probes are short-horizon (tens of microseconds) experiments recording a
//! per-window [`SlowdownTrace`](sim_core::SlowdownTrace) and a
//! [`MitigationLog`](sim_core::MitigationLog), so a cell's score reflects
//! the attack *transient*, not just the mean. Every probe is keyed in the
//! PR 6 content-addressed run cache — a warm profile performs **zero**
//! simulations and reproduces the heatmap byte-identically.

use attacklab::scenario::ScenarioSpec;
use sim::cache::{cell_key_with_attack_id, CellKey, RunCache};
use sim::experiment::{CustomAttack, Experiment, TrackerSel};
use sim::runner::parallel_map;
use sim::{Engine, ExperimentResult, Threads};
use sim_core::addr::Geometry;

use crate::heatmap::{probe_spec, Family, HeatmapCell, SensitivityHeatmap};
use crate::CampaignEvent;

/// Slowdown-trace windows per probe: coarse enough to stay cheap, fine
/// enough to catch the transient.
const PROBE_WINDOWS: f64 = 8.0;

/// Profile-stage configuration.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Tracker under profile (registry selection, parameter overrides
    /// included).
    pub tracker: TrackerSel,
    /// Benign workload sharing the machine.
    pub workload: String,
    /// Probe simulation window, microseconds (short: probes are cheap).
    pub probe_window_us: f64,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Seed for every probe simulation.
    pub seed: u64,
    /// Bank-spread buckets.
    pub bank_groups: u32,
    /// Intensity buckets.
    pub row_groups: u32,
    /// Families to probe (canonical order enforced at run time).
    pub families: Vec<Family>,
    /// Simulation engine (part of the probe cache key).
    pub engine: Engine,
    /// Memory-phase execution lanes (bit-identical results; **not** part
    /// of the cache key).
    pub threads: Threads,
}

impl ProfileConfig {
    /// Defaults: 60 µs probes, N_RH 500, paper seed, a 4×4 grid over every
    /// family, default engine, sequential stepping.
    pub fn new(tracker: impl Into<TrackerSel>, workload: &str) -> Self {
        Self {
            tracker: tracker.into(),
            workload: workload.to_string(),
            probe_window_us: 60.0,
            nrh: 500,
            seed: 0xDA99E5,
            bank_groups: 4,
            row_groups: 4,
            families: Family::ALL.to_vec(),
            engine: Engine::default(),
            threads: Threads::Seq,
        }
    }
}

/// Cache accounting for one profiler stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Grid cells processed.
    pub cells: usize,
    /// Cells answered from the run cache.
    pub hits: usize,
    /// Cells that had to simulate.
    pub misses: usize,
    /// Actual simulations performed (misses plus the shared reference run
    /// when at least one miss forced it).
    pub simulations: usize,
}

impl std::fmt::Display for ProfileStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses ({} simulations)", self.hits, self.misses, self.simulations)
    }
}

/// Builds the probe experiment for one genome under a profile config.
/// Mirrors `attacklab::search::experiment_for`, plus the mitigation log
/// and the profile's engine/threads selection.
pub fn probe_experiment(cfg: &ProfileConfig, spec: &ScenarioSpec) -> Experiment {
    let spec_for_factory = spec.clone();
    let custom = CustomAttack::new(&spec.name(), spec.bypasses_llc(), move |geom, seed| {
        Box::new(attacklab::PatternTrace(spec_for_factory.build(geom, seed)))
    });
    let mut e = Experiment::new(&cfg.workload)
        .tracker(cfg.tracker.clone())
        .custom(custom)
        .window_us(cfg.probe_window_us)
        .nrh(cfg.nrh)
        .seed(cfg.seed)
        .engine(cfg.engine)
        .threads(cfg.threads)
        .record_slowdown(cfg.probe_window_us / PROBE_WINDOWS);
    e.telemetry.mitigation_log = true;
    e
}

/// The shared insecure attack-free reference all probes normalize against.
/// Computed **lazily**: a fully warm profile never calls this, which is
/// what makes warm re-profiles zero-simulation.
fn reference_run(cfg: &ProfileConfig) -> sim::RunStats {
    let mut e = probe_experiment(cfg, &ScenarioSpec::baseline(workloads::Attack::CacheThrash));
    // Probes normalize against the flat end-of-run reference; recording
    // reference telemetry would be pure waste.
    e.telemetry = sim::TelemetrySpec::default();
    e.build_system(true).run()
}

fn cell_from_result(
    family: Family,
    bank_group: u32,
    row_group: u32,
    probe: ScenarioSpec,
    r: &ExperimentResult,
) -> HeatmapCell {
    let np = r.normalized_performance.max(1e-6);
    let peak = r
        .telemetry
        .as_ref()
        .and_then(|t| t.slowdown.as_ref())
        .and_then(|tr| tr.max_slowdown_point())
        .map_or(0.0, |p| p.slowdown());
    HeatmapCell {
        family,
        bank_group,
        row_group,
        probe,
        slowdown: 1.0 / np,
        peak_slowdown: peak,
        time_to_max_us: r.telemetry.as_ref().and_then(|t| t.time_to_max_slowdown_us()),
        recovery_us: r.telemetry.as_ref().and_then(|t| t.recovery_us(sim::RECOVERY_THRESHOLD)),
        mitigations: r.run.mem.vrr_commands + r.run.mem.rfm_commands,
        counter_ops: r.run.mem.counter_reads + r.run.mem.counter_writes,
    }
}

/// Runs the profile stage, reading probes through `cache` when provided.
///
/// # Panics
///
/// Panics if the workload is unknown, the grid is degenerate, or a probe
/// simulation fails (probe genomes are clamped, so they always build).
pub fn run_profile(
    cfg: &ProfileConfig,
    cache: Option<&RunCache>,
) -> (SensitivityHeatmap, ProfileStats) {
    run_profile_observed(cfg, cache, &mut |_| {})
}

/// [`run_profile`] streaming [`CampaignEvent`]s (cache hits per cell,
/// batch completions, final stats) to `observer` — what the warroom TUI
/// renders live.
pub fn run_profile_observed(
    cfg: &ProfileConfig,
    cache: Option<&RunCache>,
    observer: &mut dyn FnMut(&CampaignEvent),
) -> (SensitivityHeatmap, ProfileStats) {
    assert!(cfg.bank_groups >= 1 && cfg.row_groups >= 1, "profile grid must be >= 1x1");
    assert!(cfg.probe_window_us > 0.0, "probe window must be positive");
    // Canonical family order regardless of how the caller listed them.
    let mut families: Vec<Family> =
        Family::ALL.into_iter().filter(|f| cfg.families.contains(f)).collect();
    if families.is_empty() {
        families = Family::ALL.to_vec();
    }
    observer(&CampaignEvent::Stage("profile"));
    let geom = Geometry::paper_baseline();

    // Expand the grid in canonical order and key every probe.
    struct Slot {
        family: Family,
        bank_group: u32,
        row_group: u32,
        probe: ScenarioSpec,
        key: Option<CellKey>,
        result: Option<ExperimentResult>,
    }
    let mut slots: Vec<Slot> = Vec::new();
    for family in &families {
        for bg in 0..cfg.bank_groups {
            for rg in 0..cfg.row_groups {
                let probe = probe_spec(geom, *family, bg, cfg.bank_groups, rg, cfg.row_groups);
                let key = cache.and_then(|_| {
                    let e = probe_experiment(cfg, &probe);
                    cell_key_with_attack_id(&e, Some(&probe.to_json().render()))
                });
                slots.push(Slot {
                    family: *family,
                    bank_group: bg,
                    row_group: rg,
                    probe,
                    key,
                    result: None,
                });
            }
        }
    }

    let mut stats = ProfileStats { cells: slots.len(), ..ProfileStats::default() };
    let mut miss_idx: Vec<usize> = Vec::new();
    for (i, slot) in slots.iter_mut().enumerate() {
        if let (Some(cache), Some(key)) = (cache, slot.key.as_ref()) {
            if let Some(result) = cache.lookup(key) {
                stats.hits += 1;
                observer(&CampaignEvent::ProbeDone {
                    family: slot.family,
                    bank_group: slot.bank_group,
                    row_group: slot.row_group,
                    slowdown: 1.0 / result.normalized_performance.max(1e-6),
                    cached: true,
                });
                slot.result = Some(result);
                continue;
            }
        }
        miss_idx.push(i);
    }
    stats.misses = miss_idx.len();

    if !miss_idx.is_empty() {
        // Only a cold (or partially cold) profile pays for the shared
        // reference run.
        let reference = reference_run(cfg);
        stats.simulations += 1;
        let miss_specs: Vec<ScenarioSpec> =
            miss_idx.iter().map(|&i| slots[i].probe.clone()).collect();
        let outcomes =
            parallel_map(miss_specs, |spec| probe_experiment(cfg, &spec).run_against(&reference));
        for (j, outcome) in outcomes.into_iter().enumerate() {
            let i = miss_idx[j];
            let result = outcome.unwrap_or_else(|e| {
                panic!(
                    "profiler: probe {} failed to simulate against {}: {e}",
                    slots[i].probe.name(),
                    cfg.tracker.label()
                )
            });
            stats.simulations += 1;
            if let (Some(cache), Some(key)) = (cache, slots[i].key.as_ref()) {
                cache.save(key, &result);
            }
            observer(&CampaignEvent::ProbeDone {
                family: slots[i].family,
                bank_group: slots[i].bank_group,
                row_group: slots[i].row_group,
                slowdown: 1.0 / result.normalized_performance.max(1e-6),
                cached: false,
            });
            slots[i].result = Some(result);
        }
    }

    let cells: Vec<HeatmapCell> = slots
        .into_iter()
        .map(|slot| {
            let result = slot.result.expect("every probe slot resolved");
            cell_from_result(slot.family, slot.bank_group, slot.row_group, slot.probe, &result)
        })
        .collect();
    observer(&CampaignEvent::CacheStats { hits: stats.hits as u64, misses: stats.misses as u64 });

    let heatmap = SensitivityHeatmap {
        tracker: cfg.tracker.label(),
        tracker_key: cfg.tracker.key().to_string(),
        workload: cfg.workload.clone(),
        probe_window_us: cfg.probe_window_us,
        nrh: cfg.nrh,
        seed: cfg.seed,
        bank_groups: cfg.bank_groups,
        row_groups: cfg.row_groups,
        families,
        cells,
    };
    (heatmap, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileConfig {
        let mut cfg = ProfileConfig::new("hydra", "povray_like");
        cfg.probe_window_us = 25.0;
        cfg.bank_groups = 2;
        cfg.row_groups = 2;
        cfg.families = vec![Family::Hammer, Family::Sweep];
        cfg
    }

    #[test]
    fn profile_is_deterministic_and_scored() {
        let (a, sa) = run_profile(&tiny(), None);
        let (b, sb) = run_profile(&tiny(), None);
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert_eq!(a.cells.len(), 8);
        assert_eq!(sa, sb);
        assert_eq!(sa.cells, 8);
        assert_eq!(sa.misses, 8, "no cache: every cell simulates");
        assert_eq!(sa.simulations, 9, "8 probes + 1 shared reference");
        for cell in &a.cells {
            assert!(cell.slowdown > 0.0);
            assert!(cell.score() > 0.0);
        }
    }

    #[test]
    fn warm_profile_performs_zero_simulations() {
        let dir = std::env::temp_dir().join(format!("profiler-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = RunCache::open(&dir).expect("open cache");
        let cfg = tiny();
        let (cold, cold_stats) = run_profile(&cfg, Some(&cache));
        assert_eq!(cold_stats.misses, 8);
        assert_eq!(cold_stats.simulations, 9);
        let mut events = Vec::new();
        let (warm, warm_stats) =
            run_profile_observed(&cfg, Some(&cache), &mut |e| events.push(format!("{e:?}")));
        assert_eq!(warm_stats.hits, 8);
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm_stats.simulations, 0, "warm profile must not simulate");
        assert_eq!(
            warm.to_json().render(),
            cold.to_json().render(),
            "warm heatmap is byte-identical"
        );
        assert!(events.iter().any(|e| e.contains("cached: true")), "{events:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
