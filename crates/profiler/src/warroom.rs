//! The warroom: a live terminal dashboard for profiler campaigns.
//!
//! A deliberately dependency-free, offline-friendly renderer: plain ASCII
//! panels plus two raw ANSI escapes (clear screen, cursor home) when ANSI
//! is enabled. The [`Dashboard`] consumes [`CampaignEvent`]s — the same
//! stream every stage emits and the same
//! [`ProgressEvent`] wire shape campaignd's
//! streaming submits produce — and renders the campaign's state: probe
//! sweep progress, the sensitivity heatmap as it fills in, per-window
//! slowdown trace samples, the search frontier, and run-cache hit rates.

use std::collections::VecDeque;

use campaignd::ProgressEvent;

use crate::CampaignEvent;

/// Intensity ramp shared by the heatmap and the trace sparkline.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Log lines retained.
const LOG_LINES: usize = 6;

/// Trace samples retained (a scrolling window).
const TRACE_SAMPLES: usize = 64;

/// Accumulated campaign state, renderable at any moment.
#[derive(Debug, Default)]
pub struct Dashboard {
    stage: String,
    progress: Option<ProgressEvent>,
    probes_done: usize,
    probes_cached: usize,
    last_probe: Option<String>,
    heatmap_art: Option<String>,
    trace: VecDeque<f64>,
    frontier: Vec<(u32, f64)>,
    cache: Option<(u64, u64)>,
    log: VecDeque<String>,
}

impl Dashboard {
    /// An empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one campaign event into the state.
    pub fn handle(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::Stage(name) => {
                self.stage = name.to_string();
                self.push_log(format!("stage: {name}"));
            }
            CampaignEvent::Progress(p) => self.progress = Some(*p),
            CampaignEvent::ProbeDone { family, bank_group, row_group, slowdown, cached } => {
                self.probes_done += 1;
                if *cached {
                    self.probes_cached += 1;
                }
                self.last_probe = Some(format!(
                    "{family} b{bank_group} r{row_group} {slowdown:.2}x{}",
                    if *cached { " (cached)" } else { "" }
                ));
            }
            CampaignEvent::TraceSample { slowdown, .. } => {
                if self.trace.len() == TRACE_SAMPLES {
                    self.trace.pop_front();
                }
                self.trace.push_back(*slowdown);
            }
            CampaignEvent::Frontier { evaluation, best_slowdown } => {
                self.frontier.push((*evaluation, *best_slowdown));
            }
            CampaignEvent::CacheStats { hits, misses } => self.cache = Some((*hits, *misses)),
            CampaignEvent::Note(line) => self.push_log(line.clone()),
        }
    }

    /// Installs the finished heatmap's ASCII rendering as a panel.
    pub fn set_heatmap_art(&mut self, art: &str) {
        self.heatmap_art = Some(art.trim_end().to_string());
    }

    fn push_log(&mut self, line: String) {
        if self.log.len() == LOG_LINES {
            self.log.pop_front();
        }
        self.log.push_back(line);
    }

    fn sparkline(values: &[f64]) -> String {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        values
            .iter()
            .map(|v| {
                if hi > lo {
                    let t = (v - lo) / (hi - lo);
                    RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
                } else {
                    RAMP[RAMP.len() / 2]
                }
            })
            .collect()
    }

    fn bar(done: u64, total: u64, width: usize) -> String {
        let filled = if total == 0 { width } else { (done as usize * width) / total as usize };
        format!("[{}{}]", "#".repeat(filled.min(width)), ".".repeat(width - filled.min(width)))
    }

    /// Renders the full frame. With `ansi` the frame is prefixed by
    /// clear-screen + cursor-home so repeated renders animate in place;
    /// without it the frame is plain text (for logs, CI, and pipes).
    pub fn render(&self, ansi: bool) -> String {
        let mut out = String::new();
        if ansi {
            out.push_str("\x1b[2J\x1b[H");
        }
        out.push_str("== warroom — profile → evaluate → attack ==\n");
        out.push_str(&format!(
            "stage: {}\n",
            if self.stage.is_empty() { "(idle)" } else { &self.stage }
        ));
        if let Some(p) = &self.progress {
            out.push_str(&format!(
                "sweep: {} {}/{} cells (job {})\n",
                Self::bar(p.done, p.cells, 24),
                p.done,
                p.cells,
                p.job
            ));
        }
        if self.probes_done > 0 {
            out.push_str(&format!(
                "probes: {} done ({} cached){}\n",
                self.probes_done,
                self.probes_cached,
                self.last_probe.as_deref().map(|l| format!("  last: {l}")).unwrap_or_default()
            ));
        }
        if let Some(art) = &self.heatmap_art {
            for line in art.lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        if !self.trace.is_empty() {
            let samples: Vec<f64> = self.trace.iter().copied().collect();
            let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "slowdown trace |{}| peak {:.2}x\n",
                Self::sparkline(&samples),
                hi
            ));
        }
        if let Some((evaluation, best)) = self.frontier.last() {
            let climb: Vec<f64> = self.frontier.iter().map(|(_, b)| *b).collect();
            out.push_str(&format!(
                "search frontier |{}| eval {} best {:.2}x\n",
                Self::sparkline(&climb),
                evaluation,
                best
            ));
        }
        if let Some((hits, misses)) = self.cache {
            out.push_str(&format!("cache: {hits} hits / {misses} misses\n"));
        }
        for line in &self.log {
            out.push_str(&format!("  | {line}\n"));
        }
        out
    }

    /// A deterministic synthetic frame: what `warroom --render-once`
    /// prints so headless environments (CI) can snapshot the renderer
    /// without running a campaign.
    pub fn render_once_sample(ansi: bool) -> String {
        use crate::heatmap::{probe_spec, Family, HeatmapCell, SensitivityHeatmap};
        use sim_core::addr::Geometry;

        let mut d = Dashboard::new();
        d.handle(&CampaignEvent::Stage("profile"));
        d.handle(&CampaignEvent::Progress(ProgressEvent { job: 1, done: 12, cells: 16 }));
        let geom = Geometry::paper_baseline();
        let families = vec![Family::Hammer, Family::Sweep];
        let mut cells = Vec::new();
        for (fi, family) in families.iter().enumerate() {
            for bg in 0..2u32 {
                for rg in 0..2u32 {
                    let slowdown = 1.1 + fi as f64 * 0.8 + bg as f64 * 0.3 + rg as f64 * 0.6;
                    d.handle(&CampaignEvent::ProbeDone {
                        family: *family,
                        bank_group: bg,
                        row_group: rg,
                        slowdown,
                        cached: (bg + rg) % 2 == 0,
                    });
                    cells.push(HeatmapCell {
                        family: *family,
                        bank_group: bg,
                        row_group: rg,
                        probe: probe_spec(geom, *family, bg, 2, rg, 2),
                        slowdown,
                        peak_slowdown: slowdown + 0.4,
                        time_to_max_us: Some(18.0),
                        recovery_us: None,
                        mitigations: 64,
                        counter_ops: 4096,
                    });
                }
            }
        }
        let map = SensitivityHeatmap {
            tracker: "Hydra".into(),
            tracker_key: "hydra".into(),
            workload: "povray_like".into(),
            probe_window_us: 60.0,
            nrh: 500,
            seed: 0xDA99E5,
            bank_groups: 2,
            row_groups: 2,
            families,
            cells,
        };
        d.set_heatmap_art(&map.render_ascii());
        for (i, s) in [1.0, 1.2, 1.9, 2.8, 3.1, 2.9, 3.4, 3.3].into_iter().enumerate() {
            d.handle(&CampaignEvent::TraceSample { index: i as u32, slowdown: s });
        }
        for (e, b) in [(6u32, 2.1f64), (12, 2.1), (18, 2.9), (24, 3.4)] {
            d.handle(&CampaignEvent::Frontier { evaluation: e, best_slowdown: b });
        }
        d.handle(&CampaignEvent::CacheStats { hits: 6, misses: 10 });
        d.handle(&CampaignEvent::Note("attack: 4 priors from the heatmap, budget 48".into()));
        d.render(ansi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_frame_is_deterministic_and_names_every_panel() {
        let a = Dashboard::render_once_sample(false);
        let b = Dashboard::render_once_sample(false);
        assert_eq!(a, b, "sample frame must be snapshot-stable");
        for needle in [
            "warroom — profile → evaluate → attack",
            "sweep:",
            "probes:",
            "sensitivity heatmap",
            "slowdown trace",
            "search frontier",
            "cache: 6 hits / 10 misses",
        ] {
            assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
        }
        assert!(!a.contains('\x1b'), "plain frame must be ANSI-free");
        let ansi = Dashboard::render_once_sample(true);
        assert!(ansi.starts_with("\x1b[2J\x1b[H"), "ANSI frame clears and homes");
        assert_eq!(&ansi["\x1b[2J\x1b[H".len()..], a, "same body either way");
    }

    #[test]
    fn dashboard_folds_events_and_caps_buffers() {
        let mut d = Dashboard::new();
        for i in 0..100u32 {
            d.handle(&CampaignEvent::TraceSample { index: i, slowdown: i as f64 });
            d.handle(&CampaignEvent::Note(format!("line {i}")));
        }
        assert_eq!(d.trace.len(), TRACE_SAMPLES);
        assert_eq!(d.log.len(), LOG_LINES);
        let frame = d.render(false);
        assert!(frame.contains("line 99"), "{frame}");
        assert!(!frame.contains("line 1\n"), "old log lines scroll away");
    }
}
