//! Sensitivity heatmaps: where, structurally, a tracker is weak.
//!
//! The profile stage sweeps a deterministic grid of cheap probe scenarios —
//! pattern family × bank-spread bucket × intensity bucket — and scores each
//! probe by the benign slowdown it causes under the tracker being profiled.
//! The result is a [`SensitivityHeatmap`]: a serializable, byte-stable
//! document the evaluate stage ranks and the attack stage feeds into
//! [`attacklab::search_seeded`] as warm-start priors.

use attacklab::scenario::{ScenarioSpec, Shape};
use sim_core::addr::Geometry;
use sim_core::json::Json;

/// The parametric probe families, one per non-baseline [`Shape`] kind.
///
/// The spec layer validates `[profile] families = [...]` against
/// [`sim::spec::KNOWN_PROFILE_FAMILIES`]; a unit test pins the two lists
/// to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Fixed aggressor sets hammered round-robin ([`Shape::Hammer`]).
    Hammer,
    /// Strided row sweeps ([`Shape::Sweep`]).
    Sweep,
    /// Distinct row ID per activation ([`Shape::Diagonal`]).
    Diagonal,
    /// LLC pressure without row hammering ([`Shape::Thrash`]).
    Thrash,
}

impl Family {
    /// Every family, in canonical (serialization) order.
    pub const ALL: [Family; 4] = [Family::Hammer, Family::Sweep, Family::Diagonal, Family::Thrash];

    /// Stable lower-case key (what specs and JSON documents spell).
    pub fn key(self) -> &'static str {
        match self {
            Family::Hammer => "hammer",
            Family::Sweep => "sweep",
            Family::Diagonal => "diagonal",
            Family::Thrash => "thrash",
        }
    }

    /// Parses a [`Self::key`] spelling.
    pub fn by_key(key: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.key() == key)
    }

    /// Canonical index into [`Self::ALL`].
    pub fn index(self) -> usize {
        Family::ALL.iter().position(|f| *f == self).expect("family in ALL")
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Builds the deterministic probe genome for one heatmap cell.
///
/// The grid axes are structural, not positional: `bank_group` buckets the
/// *bank spread* (how many banks the probe touches, growing to the full
/// rank), and `row_group` buckets the *intensity* — aggressor rows per
/// bank for hammers, swept span for sweeps/diagonals, footprint for
/// thrashing. The cell coordinates are folded into `seed_salt`, so every
/// cell draws a distinct aggressor row set even when clamping collapses
/// its other parameters.
pub fn probe_spec(
    geom: Geometry,
    family: Family,
    bank_group: u32,
    bank_groups: u32,
    row_group: u32,
    row_groups: u32,
) -> ScenarioSpec {
    assert!(bank_groups >= 1 && row_groups >= 1, "grid axes must be >= 1");
    assert!(bank_group < bank_groups && row_group < row_groups, "cell out of grid");
    let max_banks = geom.banks_per_rank();
    let max_span = geom.rows_per_bank - attacklab::pattern::RESERVED_TOP_ROWS;
    let banks = (max_banks * (bank_group + 1) / bank_groups).max(1);
    let shape = match family {
        // 2 rows/bank at the low end up to 512 at the top: spans the RCC /
        // RAT / group-counter pressure regimes the trackers differ on.
        Family::Hammer => Shape::Hammer { banks, per_bank: 2u32 << (row_group * 8 / row_groups) },
        Family::Sweep => Shape::Sweep {
            banks,
            stride: 64,
            span: (max_span as u64 * (row_group as u64 + 1) / row_groups as u64).max(1) as u32,
        },
        Family::Diagonal => Shape::Diagonal {
            banks,
            span: (max_span as u64 * (row_group as u64 + 1) / row_groups as u64).max(1) as u32,
        },
        // The thrash family has no bank axis; bank groups vary pacing
        // instead (bubbles), intensity varies the footprint.
        Family::Thrash => Shape::Thrash {
            mib: 4u32 << (row_group * 6 / row_groups),
            bubbles: bank_group * 8 / bank_groups,
        },
    };
    let mut spec = ScenarioSpec::baseline(workloads::Attack::CacheThrash);
    spec.shape = shape;
    spec.seed_salt = 0x9E0F_11E5
        ^ ((family.index() as u64) << 48)
        ^ ((bank_group as u64) << 32)
        ^ ((row_group as u64) << 16);
    spec
}

/// One profiled grid cell: the probe genome and its measured effect.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapCell {
    /// Probe pattern family.
    pub family: Family,
    /// Bank-spread bucket (0-based).
    pub bank_group: u32,
    /// Intensity bucket (0-based).
    pub row_group: u32,
    /// The exact genome probed (rebuildable via [`ScenarioSpec::build`]).
    pub probe: ScenarioSpec,
    /// Mean benign slowdown vs. the insecure attack-free baseline.
    pub slowdown: f64,
    /// Worst single-window slowdown from the probe's
    /// [`SlowdownTrace`](sim_core::SlowdownTrace) (0 when no trace window
    /// completed).
    pub peak_slowdown: f64,
    /// Microseconds until the worst window.
    pub time_to_max_us: Option<f64>,
    /// Microseconds from the worst window to recovery.
    pub recovery_us: Option<f64>,
    /// Mitigation commands the probe provoked (VRR + RFM).
    pub mitigations: u64,
    /// Tracker counter reads + writes injected into DRAM.
    pub counter_ops: u64,
}

impl HeatmapCell {
    /// Ranking score: the worst-window slowdown when the trace caught one
    /// (transients matter more than the mean under short probe windows),
    /// the mean slowdown otherwise.
    pub fn score(&self) -> f64 {
        if self.peak_slowdown > 0.0 {
            self.peak_slowdown
        } else {
            self.slowdown
        }
    }
}

/// A per-(tracker, workload) sensitivity heatmap: the profile stage's
/// output, the evaluate and attack stages' input.
///
/// Serialization is canonical — cells in family-major, then bank-group,
/// then row-group order — so two profiles of the same configuration render
/// byte-identical JSON regardless of thread count or cache warmth.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityHeatmap {
    /// Tracker display label (params included), for reports.
    pub tracker: String,
    /// Tracker registry key, so later stages can rebuild the selection.
    pub tracker_key: String,
    /// Benign workload sharing the machine.
    pub workload: String,
    /// Probe simulation window, microseconds.
    pub probe_window_us: f64,
    /// RowHammer threshold probed at.
    pub nrh: u32,
    /// Seed the probes ran under.
    pub seed: u64,
    /// Bank-spread buckets.
    pub bank_groups: u32,
    /// Intensity buckets.
    pub row_groups: u32,
    /// Families profiled, in [`Family::ALL`] order.
    pub families: Vec<Family>,
    /// Cells in canonical order (family-major, bank group, row group).
    pub cells: Vec<HeatmapCell>,
}

impl SensitivityHeatmap {
    /// The cell at a grid coordinate, if that family was profiled.
    pub fn cell(&self, family: Family, bank_group: u32, row_group: u32) -> Option<&HeatmapCell> {
        self.cells
            .iter()
            .find(|c| c.family == family && c.bank_group == bank_group && c.row_group == row_group)
    }

    /// Cells ranked by [`HeatmapCell::score`] descending; ties break on
    /// canonical cell order so the ranking is deterministic.
    pub fn ranked(&self) -> Vec<&HeatmapCell> {
        let mut order: Vec<usize> = (0..self.cells.len()).collect();
        order.sort_by(|&a, &b| {
            self.cells[b].score().total_cmp(&self.cells[a].score()).then(a.cmp(&b))
        });
        order.into_iter().map(|i| &self.cells[i]).collect()
    }

    /// The `k` strongest cells.
    pub fn top(&self, k: usize) -> Vec<&HeatmapCell> {
        self.ranked().into_iter().take(k).collect()
    }

    /// The `n` strongest probe genomes — what the attack stage feeds into
    /// [`attacklab::search_seeded`] as warm-start priors.
    pub fn seed_genomes(&self, n: usize) -> Vec<ScenarioSpec> {
        self.top(n).into_iter().map(|c| c.probe.clone()).collect()
    }

    /// Canonical JSON document (byte-stable for equal profiles).
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("family", Json::str(c.family.key())),
                    ("bank_group", Json::count(c.bank_group as u64)),
                    ("row_group", Json::count(c.row_group as u64)),
                    ("probe", c.probe.to_json()),
                    ("slowdown", Json::num(c.slowdown)),
                    ("peak_slowdown", Json::num(c.peak_slowdown)),
                    ("time_to_max_us", c.time_to_max_us.map_or(Json::Null, Json::num)),
                    ("recovery_us", c.recovery_us.map_or(Json::Null, Json::num)),
                    ("mitigations", Json::count(c.mitigations)),
                    ("counter_ops", Json::count(c.counter_ops)),
                ])
            })
            .collect();
        Json::obj([
            ("tracker", Json::str(&self.tracker)),
            ("tracker_key", Json::str(&self.tracker_key)),
            ("workload", Json::str(&self.workload)),
            ("probe_window_us", Json::num(self.probe_window_us)),
            ("nrh", Json::count(self.nrh as u64)),
            ("seed", Json::hex(self.seed)),
            ("bank_groups", Json::count(self.bank_groups as u64)),
            ("row_groups", Json::count(self.row_groups as u64)),
            ("families", Json::Arr(self.families.iter().map(|f| Json::str(f.key())).collect())),
            ("cells", Json::Arr(cells)),
        ])
    }

    /// Parses a [`Self::to_json`] document.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        fn str_field(j: &Json, key: &str) -> Result<String, String> {
            match j.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("heatmap: `{key}` must be a string")),
            }
        }
        fn num_field(j: &Json, key: &str) -> Result<f64, String> {
            match j.get(key) {
                Some(Json::Num(n)) => Ok(*n),
                _ => Err(format!("heatmap: `{key}` must be a number")),
            }
        }
        fn count_field(j: &Json, key: &str) -> Result<u64, String> {
            match j.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
                _ => Err(format!("heatmap: `{key}` must be a non-negative integer")),
            }
        }
        fn opt_num(j: &Json, key: &str) -> Result<Option<f64>, String> {
            match j.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Num(n)) => Ok(Some(*n)),
                _ => Err(format!("heatmap: `{key}` must be null or a number")),
            }
        }
        let seed = match j.get("seed") {
            Some(Json::Str(s)) => {
                let digits = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(digits, 16)
                    .map_err(|_| format!("heatmap: bad `seed` hex `{s}`"))?
            }
            _ => return Err("heatmap: `seed` must be a hex string".to_string()),
        };
        let families = match j.get("families") {
            Some(Json::Arr(arr)) => {
                arr.iter()
                    .map(|f| match f {
                        Json::Str(s) => Family::by_key(s)
                            .ok_or_else(|| format!("heatmap: unknown family `{s}`")),
                        _ => Err("heatmap: `families` entries must be strings".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            _ => return Err("heatmap: `families` must be an array".to_string()),
        };
        let cells = match j.get("cells") {
            Some(Json::Arr(arr)) => arr
                .iter()
                .map(|c| {
                    let family_key = str_field(c, "family")?;
                    let family = Family::by_key(&family_key)
                        .ok_or_else(|| format!("heatmap: unknown family `{family_key}`"))?;
                    let probe = c
                        .get("probe")
                        .ok_or_else(|| "heatmap: cell missing `probe`".to_string())
                        .and_then(ScenarioSpec::from_json)?;
                    Ok(HeatmapCell {
                        family,
                        bank_group: count_field(c, "bank_group")? as u32,
                        row_group: count_field(c, "row_group")? as u32,
                        probe,
                        slowdown: num_field(c, "slowdown")?,
                        peak_slowdown: num_field(c, "peak_slowdown")?,
                        time_to_max_us: opt_num(c, "time_to_max_us")?,
                        recovery_us: opt_num(c, "recovery_us")?,
                        mitigations: count_field(c, "mitigations")?,
                        counter_ops: count_field(c, "counter_ops")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("heatmap: `cells` must be an array".to_string()),
        };
        Ok(Self {
            tracker: str_field(j, "tracker")?,
            tracker_key: str_field(j, "tracker_key")?,
            workload: str_field(j, "workload")?,
            probe_window_us: num_field(j, "probe_window_us")?,
            nrh: count_field(j, "nrh")? as u32,
            seed,
            bank_groups: count_field(j, "bank_groups")? as u32,
            row_groups: count_field(j, "row_groups")? as u32,
            families,
            cells,
        })
    }

    /// Renders per-family intensity grids with an ASCII ramp — rows are
    /// bank-spread buckets, columns intensity buckets, normalized over the
    /// whole map so families are comparable at a glance.
    pub fn render_ascii(&self) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let lo = self.cells.iter().map(|c| c.score()).fold(f64::INFINITY, f64::min);
        let hi = self.cells.iter().map(|c| c.score()).fold(f64::NEG_INFINITY, f64::max);
        let mut out = String::new();
        out.push_str(&format!(
            "sensitivity heatmap — {} / {} (probe {} µs, N_RH {})\n",
            self.tracker, self.workload, self.probe_window_us, self.nrh
        ));
        if self.cells.is_empty() {
            out.push_str("  (no cells)\n");
            return out;
        }
        out.push_str(&format!(
            "  score range {:.2}x … {:.2}x   intensity →   ramp \"{}\"\n",
            lo,
            hi,
            RAMP.iter().collect::<String>()
        ));
        for family in &self.families {
            out.push_str(&format!("  {:<9}", family.key()));
            for bg in 0..self.bank_groups {
                if bg > 0 {
                    out.push_str(&" ".repeat(11));
                }
                out.push_str(&format!("b{bg} |"));
                for rg in 0..self.row_groups {
                    let ch = match self.cell(*family, bg, rg) {
                        Some(c) if hi > lo => {
                            let t = (c.score() - lo) / (hi - lo);
                            RAMP[((t * (RAMP.len() - 1) as f64).round() as usize)
                                .min(RAMP.len() - 1)]
                        }
                        Some(_) => RAMP[RAMP.len() / 2],
                        None => '?',
                    };
                    out.push(ch);
                }
                out.push_str("|\n");
            }
        }
        let ranked = self.ranked();
        if let Some(best) = ranked.first() {
            out.push_str(&format!(
                "  hottest: {} ({:.2}x peak, bank group {}, intensity {})\n",
                best.probe.name(),
                best.score(),
                best.bank_group,
                best.row_group
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_map() -> SensitivityHeatmap {
        let geom = Geometry::paper_baseline();
        let families = vec![Family::Hammer, Family::Sweep];
        let mut cells = Vec::new();
        for (fi, family) in families.iter().enumerate() {
            for bg in 0..2 {
                for rg in 0..2 {
                    let probe = probe_spec(geom, *family, bg, 2, rg, 2);
                    cells.push(HeatmapCell {
                        family: *family,
                        bank_group: bg,
                        row_group: rg,
                        probe,
                        slowdown: 1.0 + fi as f64 + bg as f64 * 0.25 + rg as f64 * 0.5,
                        peak_slowdown: 1.5 + fi as f64 + bg as f64 * 0.25 + rg as f64 * 0.5,
                        time_to_max_us: Some(12.5),
                        recovery_us: if rg == 0 { None } else { Some(30.0) },
                        mitigations: 10 * (bg as u64 + 1),
                        counter_ops: 100,
                    });
                }
            }
        }
        SensitivityHeatmap {
            tracker: "Hydra".into(),
            tracker_key: "hydra".into(),
            workload: "povray_like".into(),
            probe_window_us: 60.0,
            nrh: 500,
            seed: 0xDA99E5,
            bank_groups: 2,
            row_groups: 2,
            families,
            cells,
        }
    }

    #[test]
    fn family_keys_agree_with_the_spec_layer() {
        // Every Family key must be a known spec spelling, and every known
        // spelling except the "all" expander must be a Family.
        for f in Family::ALL {
            assert!(sim::KNOWN_PROFILE_FAMILIES.contains(&f.key()), "{f}");
            assert_eq!(Family::by_key(f.key()), Some(f));
        }
        for key in sim::KNOWN_PROFILE_FAMILIES {
            if key != "all" {
                assert!(Family::by_key(key).is_some(), "{key}");
            }
        }
        assert!(Family::by_key("all").is_none(), "'all' is an expander, not a family");
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let map = tiny_map();
        let doc = map.to_json().render();
        let back = SensitivityHeatmap::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.to_json().render(), doc, "canonical form is a fixed point");
    }

    #[test]
    fn ranking_is_deterministic_and_score_ordered() {
        let map = tiny_map();
        let ranked = map.ranked();
        assert_eq!(ranked.len(), map.cells.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].score() >= pair[1].score());
        }
        // The synthetic scores make sweep/b1/r1 the hottest cell.
        assert_eq!(ranked[0].family, Family::Sweep);
        assert_eq!((ranked[0].bank_group, ranked[0].row_group), (1, 1));
        let genomes = map.seed_genomes(3);
        assert_eq!(genomes.len(), 3);
        assert_eq!(genomes[0], ranked[0].probe);
    }

    #[test]
    fn probe_grid_is_deterministic_and_distinct() {
        let geom = Geometry::paper_baseline();
        let mut seen = std::collections::BTreeSet::new();
        for family in Family::ALL {
            for bg in 0..4 {
                for rg in 0..4 {
                    let a = probe_spec(geom, family, bg, 4, rg, 4);
                    let b = probe_spec(geom, family, bg, 4, rg, 4);
                    assert_eq!(a, b, "probe generation is pure");
                    assert!(
                        seen.insert(a.to_json().render()),
                        "cells must have distinct genomes: {family} b{bg} r{rg}"
                    );
                    // Every probe must build under the geometry it was
                    // generated for.
                    let _ = a.build(geom, 1);
                }
            }
        }
    }

    #[test]
    fn ascii_render_names_the_workflow_parts() {
        let map = tiny_map();
        let art = map.render_ascii();
        assert!(art.contains("sensitivity heatmap"), "{art}");
        assert!(art.contains("hammer"), "{art}");
        assert!(art.contains("sweep"), "{art}");
        assert!(art.contains("hottest:"), "{art}");
        // The hottest cell renders the densest ramp glyph.
        assert!(art.contains('@'), "{art}");
    }
}
