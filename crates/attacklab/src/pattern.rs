//! The composable attack-pattern engine.
//!
//! A [`PatternGen`] produces the attacker core's access stream one
//! [`TraceEntry`] at a time. Primitives generate base shapes
//! ([`RowSweep`], [`HammerRows`], [`LineStream`], [`RandomRows`]) and
//! combinators wrap any pattern into a richer one ([`Interleave`],
//! [`Burst`], [`Decoy`], [`Feint`], [`RateLimit`]) — the SWAGE idea of a
//! trait-per-stage attack pipeline, adapted from real-machine hammering to
//! the simulator's trace interface. Every generator is deterministic given
//! its construction parameters, so a scenario re-run from the same seed
//! replays bit-identically.
//!
//! The fixed [`workloads::Attack`] patterns are all expressible here; see
//! [`crate::compat`] for the exact reconstructions.

use cpu::{TraceEntry, TraceSource};
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::rng::Xoshiro256;

/// Rows at the top of every bank reserved for tracker metadata; attack
/// generators stay clear of them (mirrors the legacy `Attack` behaviour).
pub const RESERVED_TOP_ROWS: u32 = 64;

/// An endless, deterministic attack access stream.
pub trait PatternGen: Send {
    /// Produces the next access of the attack.
    fn next_access(&mut self) -> TraceEntry;

    /// Compact structural description, e.g.
    /// `rate(4, decoy(10%, sweep(32b x64)))`.
    fn describe(&self) -> String;
}

/// A boxed pattern, the unit the combinators compose over.
pub type BoxPattern = Box<dyn PatternGen>;

impl PatternGen for BoxPattern {
    fn next_access(&mut self) -> TraceEntry {
        (**self).next_access()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Adapts a pattern to the [`cpu::TraceSource`] the attacker core runs.
pub struct PatternTrace(pub BoxPattern);

impl std::fmt::Debug for PatternTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PatternTrace({})", self.0.describe())
    }
}

impl TraceSource for PatternTrace {
    fn next_entry(&mut self) -> TraceEntry {
        self.0.next_access()
    }
}

fn read(geom: &Geometry, addr: DramAddr) -> TraceEntry {
    TraceEntry { bubbles: 0, addr: geom.encode(&addr), is_write: false }
}

// ---------------------------------------------------------------- primitives

/// How [`RowSweep`] orders its walk over the row space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOrder {
    /// Banks innermost; rows advance with the given stride so consecutive
    /// activations touch distinct counter *lines* (the order that defeats
    /// line-granularity counter caching — START's attack).
    LineStride(u32),
    /// Bank and row advance together (`bank = k % banks`,
    /// `row = k % span`), giving a distinct row ID on every activation —
    /// ABACuS's spillover order.
    Diagonal,
}

/// Walks rows of one rank across a set of banks — the streaming family.
#[derive(Debug, Clone)]
pub struct RowSweep {
    geom: Geometry,
    rank: u8,
    banks: u64,
    span: u64,
    order: SweepOrder,
    step: u64,
}

impl RowSweep {
    /// Sweeps `banks` banks (from bank 0) over `span` rows per bank.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `span` is zero or exceeds the geometry.
    pub fn new(geom: Geometry, rank: u8, banks: u32, span: u32, order: SweepOrder) -> Self {
        assert!(banks >= 1 && banks <= geom.banks_per_rank(), "banks {banks} out of range");
        assert!(span >= 1 && span <= geom.rows_per_bank - RESERVED_TOP_ROWS, "span {span}");
        if let SweepOrder::LineStride(s) = order {
            assert!(s >= 1, "stride must be nonzero");
        }
        Self { geom, rank, banks: banks as u64, span: span as u64, order, step: 0 }
    }

    /// The full-rank sweep of the paper's streaming / START attacks.
    pub fn paper_streaming(geom: Geometry) -> Self {
        Self::new(
            geom,
            0,
            geom.banks_per_rank(),
            geom.rows_per_bank - RESERVED_TOP_ROWS,
            SweepOrder::LineStride(64),
        )
    }
}

impl PatternGen for RowSweep {
    fn next_access(&mut self) -> TraceEntry {
        let step = self.step;
        self.step = self.step.wrapping_add(1);
        let (bank, row) = match self.order {
            SweepOrder::LineStride(stride) => {
                let stride = stride as u64;
                let bank = step % self.banks;
                let k = step / self.banks;
                let strides = (self.span / stride).max(1);
                let row = (k % strides) * stride + (k / strides) % stride;
                (bank, row % self.span)
            }
            SweepOrder::Diagonal => (step % self.banks, step % self.span),
        };
        let idx = bank * self.geom.rows_per_bank as u64 + row;
        read(&self.geom, self.geom.addr_from_rank_row_index(0, self.rank, idx))
    }

    fn describe(&self) -> String {
        let order = match self.order {
            SweepOrder::LineStride(s) => format!("stride{s}"),
            SweepOrder::Diagonal => "diag".into(),
        };
        format!("sweep({}b x{} {})", self.banks, self.span, order)
    }
}

/// Cycles a fixed aggressor set — the hammer family (Hydra RCC thrash,
/// CoMeT RAT overflow, the refresh attack).
#[derive(Debug, Clone)]
pub struct HammerRows {
    geom: Geometry,
    rows: Vec<DramAddr>,
    step: u64,
}

impl HammerRows {
    /// Hammers the given rows round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn new(geom: Geometry, rows: Vec<DramAddr>) -> Self {
        assert!(!rows.is_empty(), "hammer set must be non-empty");
        Self { geom, rows, step: 0 }
    }

    /// A seed-deterministic aggressor set: `per_bank` rows in each of
    /// `banks` banks of rank 0, rows drawn uniformly below the reserved
    /// region.
    pub fn random_set(geom: Geometry, banks: u32, per_bank: u32, seed: u64) -> Self {
        let banks = banks.clamp(1, geom.banks_per_rank());
        let per_bank = per_bank.max(1);
        let mut rng = Xoshiro256::seed_from(seed ^ 0x4A3A_11AB);
        let mut rows = Vec::with_capacity((banks * per_bank) as usize);
        for b in 0..banks as u64 {
            for _ in 0..per_bank {
                let row = rng.gen_range((geom.rows_per_bank - RESERVED_TOP_ROWS) as u64);
                rows.push(geom.addr_from_rank_row_index(0, 0, b * geom.rows_per_bank as u64 + row));
            }
        }
        rng.shuffle(&mut rows);
        Self::new(geom, rows)
    }

    /// The aggressor set.
    pub fn rows(&self) -> &[DramAddr] {
        &self.rows
    }
}

impl PatternGen for HammerRows {
    fn next_access(&mut self) -> TraceEntry {
        let a = self.rows[(self.step % self.rows.len() as u64) as usize];
        self.step = self.step.wrapping_add(1);
        read(&self.geom, a)
    }

    fn describe(&self) -> String {
        format!("hammer({}rows)", self.rows.len())
    }
}

/// Streams cache lines through the LLC — the cache-thrashing shape.
#[derive(Debug, Clone)]
pub struct LineStream {
    lines: u64,
    bubbles: u32,
    step: u64,
}

impl LineStream {
    /// Streams `lines` consecutive 64-byte lines round and round, with
    /// `bubbles` compute instructions between accesses.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(lines: u64, bubbles: u32) -> Self {
        assert!(lines > 0, "line stream needs at least one line");
        Self { lines, bubbles, step: 0 }
    }

    /// The paper's 64 MB cache-thrashing stream.
    pub fn paper_thrash() -> Self {
        Self::new((64 << 20) / 64, 6)
    }
}

impl PatternGen for LineStream {
    fn next_access(&mut self) -> TraceEntry {
        let line = self.step % self.lines;
        self.step = self.step.wrapping_add(1);
        TraceEntry { bubbles: self.bubbles, addr: PhysAddr(line * 64), is_write: false }
    }

    fn describe(&self) -> String {
        format!("lines({}k b{})", self.lines / 1024, self.bubbles)
    }
}

/// Uniformly random rows of one rank — pure mapping-agnostic noise.
#[derive(Debug, Clone)]
pub struct RandomRows {
    geom: Geometry,
    rank: u8,
    rng: Xoshiro256,
}

impl RandomRows {
    /// Draws rows uniformly below the reserved region.
    pub fn new(geom: Geometry, rank: u8, seed: u64) -> Self {
        Self { geom, rank, rng: Xoshiro256::seed_from(seed ^ 0xDEC0_7101) }
    }
}

impl PatternGen for RandomRows {
    fn next_access(&mut self) -> TraceEntry {
        let banks = self.geom.banks_per_rank() as u64;
        let bank = self.rng.gen_range(banks);
        let row = self.rng.gen_range((self.geom.rows_per_bank - RESERVED_TOP_ROWS) as u64);
        let idx = bank * self.geom.rows_per_bank as u64 + row;
        read(&self.geom, self.geom.addr_from_rank_row_index(0, self.rank, idx))
    }

    fn describe(&self) -> String {
        "random".into()
    }
}

// --------------------------------------------------------------- combinators

/// Rotates between child patterns, one access each.
pub struct Interleave {
    children: Vec<BoxPattern>,
    idx: usize,
}

impl Interleave {
    /// Interleaves the children round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn new(children: Vec<BoxPattern>) -> Self {
        assert!(!children.is_empty(), "interleave needs at least one child");
        Self { children, idx: 0 }
    }
}

impl PatternGen for Interleave {
    fn next_access(&mut self) -> TraceEntry {
        let e = self.children[self.idx].next_access();
        self.idx = (self.idx + 1) % self.children.len();
        e
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.children.iter().map(|c| c.describe()).collect();
        format!("interleave({})", inner.join(", "))
    }
}

/// Rotates between child patterns in runs of `len` accesses.
pub struct Burst {
    children: Vec<BoxPattern>,
    len: u32,
    idx: usize,
    pos: u32,
}

impl Burst {
    /// Emits `len` consecutive accesses from each child before rotating.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or `len` is zero.
    pub fn new(children: Vec<BoxPattern>, len: u32) -> Self {
        assert!(!children.is_empty(), "burst needs at least one child");
        assert!(len > 0, "burst length must be nonzero");
        Self { children, len, idx: 0, pos: 0 }
    }
}

impl PatternGen for Burst {
    fn next_access(&mut self) -> TraceEntry {
        let e = self.children[self.idx].next_access();
        self.pos += 1;
        if self.pos == self.len {
            self.pos = 0;
            self.idx = (self.idx + 1) % self.children.len();
        }
        e
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.children.iter().map(|c| c.describe()).collect();
        format!("burst({}x {})", self.len, inner.join(", "))
    }
}

/// Replaces a fraction of the inner accesses with random-row decoys,
/// diluting what a tracker's sampled or cached state can learn.
pub struct Decoy {
    inner: BoxPattern,
    noise: RandomRows,
    pct: u8,
    rng: Xoshiro256,
}

impl Decoy {
    /// With probability `pct`% an access is a decoy instead of the inner
    /// pattern's next access (the inner pattern is *not* advanced on decoy
    /// accesses, so its shape survives dilution).
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn new(inner: BoxPattern, pct: u8, geom: Geometry, seed: u64) -> Self {
        assert!(pct <= 100, "decoy percentage {pct} > 100");
        Self {
            inner,
            noise: RandomRows::new(geom, 0, seed ^ 0xDEC0_0002),
            pct,
            rng: Xoshiro256::seed_from(seed ^ 0xDEC0_0001),
        }
    }
}

impl PatternGen for Decoy {
    fn next_access(&mut self) -> TraceEntry {
        if self.rng.gen_range(100) < self.pct as u64 {
            self.noise.next_access()
        } else {
            self.inner.next_access()
        }
    }

    fn describe(&self) -> String {
        format!("decoy({}%, {})", self.pct, self.inner.describe())
    }
}

/// Alternates between the attack pattern and an innocuous cover pattern —
/// hammering in pulses to ride under decay/reset windows.
pub struct Feint {
    inner: BoxPattern,
    cover: BoxPattern,
    on: u32,
    off: u32,
    pos: u32,
}

impl Feint {
    /// `on` attack accesses, then `off` cover accesses, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `on` or `off` is zero.
    pub fn new(inner: BoxPattern, cover: BoxPattern, on: u32, off: u32) -> Self {
        assert!(on > 0 && off > 0, "feint phases must be nonzero");
        Self { inner, cover, on, off, pos: 0 }
    }
}

impl PatternGen for Feint {
    fn next_access(&mut self) -> TraceEntry {
        let period = self.on + self.off;
        let in_attack = self.pos < self.on;
        self.pos = (self.pos + 1) % period;
        if in_attack {
            self.inner.next_access()
        } else {
            self.cover.next_access()
        }
    }

    fn describe(&self) -> String {
        format!("feint({}on/{}off, {})", self.on, self.off, self.inner.describe())
    }
}

/// Inserts compute bubbles between accesses, pacing the attack below
/// throttling thresholds (BlockHammer) or a target ACT rate.
pub struct RateLimit {
    inner: BoxPattern,
    bubbles: u32,
}

impl RateLimit {
    /// Adds `bubbles` non-memory instructions before every inner access.
    pub fn new(inner: BoxPattern, bubbles: u32) -> Self {
        Self { inner, bubbles }
    }
}

impl PatternGen for RateLimit {
    fn next_access(&mut self) -> TraceEntry {
        let mut e = self.inner.next_access();
        e.bubbles += self.bubbles;
        e
    }

    fn describe(&self) -> String {
        format!("rate({}, {})", self.bubbles, self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::paper_baseline()
    }

    fn rows_of(p: &mut dyn PatternGen, n: usize) -> Vec<u64> {
        (0..n).map(|_| p.next_access().addr.0).collect()
    }

    #[test]
    fn patterns_replay_deterministically() {
        let g = geom();
        let mk = || -> BoxPattern {
            Box::new(Decoy::new(
                Box::new(Burst::new(
                    vec![
                        Box::new(HammerRows::random_set(g, 8, 4, 1)) as BoxPattern,
                        Box::new(RowSweep::new(g, 0, 16, 4096, SweepOrder::Diagonal)),
                    ],
                    5,
                )),
                20,
                g,
                9,
            ))
        };
        assert_eq!(rows_of(&mut mk(), 5000), rows_of(&mut mk(), 5000));
    }

    #[test]
    fn burst_rotates_in_runs() {
        let g = geom();
        let a = geom().addr_from_rank_row_index(0, 0, 10);
        let b = geom().addr_from_rank_row_index(0, 0, 999);
        let mut p = Burst::new(
            vec![
                Box::new(HammerRows::new(g, vec![a])) as BoxPattern,
                Box::new(HammerRows::new(g, vec![b])),
            ],
            3,
        );
        let seq = rows_of(&mut p, 12);
        let (pa, pb) = (g.encode(&a).0, g.encode(&b).0);
        assert_eq!(seq, vec![pa, pa, pa, pb, pb, pb, pa, pa, pa, pb, pb, pb]);
    }

    #[test]
    fn interleave_alternates_every_access() {
        let g = geom();
        let a = g.addr_from_rank_row_index(0, 0, 1);
        let b = g.addr_from_rank_row_index(0, 0, 2);
        let mut p = Interleave::new(vec![
            Box::new(HammerRows::new(g, vec![a])) as BoxPattern,
            Box::new(HammerRows::new(g, vec![b])),
        ]);
        let seq = rows_of(&mut p, 6);
        let (pa, pb) = (g.encode(&a).0, g.encode(&b).0);
        assert_eq!(seq, vec![pa, pb, pa, pb, pa, pb]);
    }

    #[test]
    fn rate_limit_adds_bubbles() {
        let g = geom();
        let mut p = RateLimit::new(Box::new(RowSweep::paper_streaming(g)), 7);
        for _ in 0..100 {
            assert_eq!(p.next_access().bubbles, 7);
        }
    }

    #[test]
    fn decoy_fraction_tracks_percentage() {
        let g = geom();
        let base = RowSweep::new(g, 0, 1, 1, SweepOrder::Diagonal);
        let base_addr = {
            let mut b = base.clone();
            b.next_access().addr.0
        };
        let mut p = Decoy::new(Box::new(base), 30, g, 77);
        let n = 20_000;
        let decoys = (0..n).filter(|_| p.next_access().addr.0 != base_addr).count();
        let frac = decoys as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.02, "decoy fraction {frac}");
    }

    #[test]
    fn feint_pulses_between_attack_and_cover() {
        let g = geom();
        let a = g.addr_from_rank_row_index(0, 0, 5);
        let mut p = Feint::new(
            Box::new(HammerRows::new(g, vec![a])),
            Box::new(LineStream::new(16, 0)),
            4,
            2,
        );
        let pa = g.encode(&a).0;
        let seq = rows_of(&mut p, 12);
        let attack_hits = seq.iter().filter(|&&x| x == pa).count();
        assert_eq!(attack_hits, 8, "4 of every 6 accesses are attack accesses");
        assert_eq!(&seq[0..4], &[pa; 4]);
        assert_ne!(seq[4], pa);
    }

    #[test]
    fn sweeps_and_hammers_avoid_reserved_rows() {
        let g = geom();
        let mut pats: Vec<BoxPattern> = vec![
            Box::new(RowSweep::paper_streaming(g)),
            Box::new(RowSweep::new(g, 0, 32, 1000, SweepOrder::Diagonal)),
            Box::new(HammerRows::random_set(g, 32, 8, 3)),
            Box::new(RandomRows::new(g, 0, 4)),
        ];
        for p in &mut pats {
            for _ in 0..2000 {
                let d = g.decode(p.next_access().addr);
                assert!(d.row < g.rows_per_bank - RESERVED_TOP_ROWS, "{}", p.describe());
            }
        }
    }

    #[test]
    fn describe_nests() {
        let g = geom();
        let p = RateLimit::new(
            Box::new(Decoy::new(Box::new(RowSweep::paper_streaming(g)), 10, g, 1)),
            2,
        );
        assert_eq!(p.describe(), "rate(2, decoy(10%, sweep(32b x65472 stride64)))");
    }
}
