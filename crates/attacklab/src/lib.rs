//! # attacklab — composable adversarial scenarios and red-team campaigns
//!
//! The paper's claim is resilience against *performance attacks*; this
//! crate stops taking the attacker's side for granted. It replaces the
//! fixed menu of hand-written patterns (`workloads::Attack`) with:
//!
//! * [`pattern`] — a SWAGE-style composable pattern engine: primitives
//!   ([`pattern::RowSweep`], [`pattern::HammerRows`],
//!   [`pattern::LineStream`], [`pattern::RandomRows`]) wrapped by
//!   combinators ([`pattern::Interleave`], [`pattern::Burst`],
//!   [`pattern::Decoy`], [`pattern::Feint`], [`pattern::RateLimit`]), all
//!   deterministic in their seed;
//! * [`compat`] — bit-exact reconstructions of every paper attack as a
//!   composition, keeping the `Attack` enum a thin facade;
//! * [`scenario`] — the [`scenario::ScenarioSpec`] genome that expands into
//!   pattern compositions and supports one-gene mutation;
//! * [`search`](mod@search) — hill-climbing worst-case search on normalized slowdown,
//!   seeded with the paper's tailored attacks so it can only match or beat
//!   them, reporting the seed that reproduces its best find;
//! * [`campaign`] — scenario × tracker matrices over the parallel sweep
//!   runner, with a resilience leaderboard and JSON/CSV export;
//! * [`cli`] — the `redteam` binary driving all of the above.
//!
//! # Quickstart
//!
//! ```no_run
//! use attacklab::search::{search, SearchConfig};
//! let mut cfg = SearchConfig::new("hydra", "libquantum_like");
//! cfg.budget = 20;
//! let report = search(&cfg);
//! println!(
//!     "worst case for {}: {:.2}x slowdown via {} (seed {:#x})",
//!     report.tracker, report.best.slowdown, report.best.name, report.seed
//! );
//! assert!(report.rediscovered_tailored());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod compat;
pub mod json;
pub mod pattern;
pub mod scenario;
pub mod search;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CampaignRow};
pub use compat::attack_pattern;
pub use pattern::{BoxPattern, PatternGen, PatternTrace};
pub use scenario::{ScenarioSpec, Shape};
pub use search::{
    evaluate_specs_cached, evaluate_specs_memo, search, search_seeded, search_seeded_observed,
    EvalMemo, SearchConfig, SearchReport,
};
