//! JSON/CSV helpers for campaign exports.
//!
//! The implementation moved to [`sim_core::json`] so the experiment-spec
//! layer and the red-team reports share one builder/parser; this module
//! re-exports it for existing `attacklab::json` users.

pub use sim_core::json::{csv_field, Json, JsonError};
