//! A minimal JSON document builder.
//!
//! The workspace's `serde` is an offline marker-trait shim (see
//! `crates/shims/serde`), so campaign results are serialized by hand. This
//! covers exactly what the red-team reports need: objects, arrays, strings,
//! numbers, and booleans, rendered with stable key order.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds a number from a `u64` counter (exact for counts < 2^53;
    /// larger values — e.g. seeds — should use [`Json::hex`]).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders a `u64` as a hex string, for values (seeds, addresses) that
    /// must survive the round-trip exactly.
    pub fn hex(n: u64) -> Json {
        Json::Str(format!("{n:#x}"))
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes one CSV field (quotes it when it contains separators).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("redteam")),
            ("seed", Json::hex(0xDA99E5)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1.5), Json::count(3), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"redteam","seed":"0xda99e5","ok":true,"rows":[1.5,3,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn csv_fields_quote_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
