//! Mutation-based worst-case scenario search.
//!
//! BlockHammer-style evaluation methodology says fixed attack patterns
//! understate worst-case damage; this module *searches* for it. Starting
//! from the paper's hand-written attacks (via [`crate::compat`], bit-exact)
//! plus a few random genomes, it hill-climbs [`ScenarioSpec`] mutations on
//! **normalized slowdown** of the benign cores, evaluating each batch of
//! mutants in parallel against one shared reference run. Everything is
//! deterministic in the configured seed — the report carries the seed that
//! reproduces its best scenario.

use std::collections::HashMap;

use crate::scenario::ScenarioSpec;
use sim::cache::{cell_key_with_attack_id, RunCache};
use sim::experiment::{CustomAttack, Experiment, TrackerSel};
use sim::metrics::RunStats;
use sim::runner::parallel_map;
use sim_core::rng::Xoshiro256;

use crate::pattern::PatternTrace;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Tracker under attack (a registry selection, parameter overrides
    /// included).
    pub tracker: TrackerSel,
    /// Benign workload sharing the machine.
    pub workload: String,
    /// Simulation window per evaluation, microseconds.
    pub window_us: f64,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Seed controlling the whole search (simulation + mutations).
    pub seed: u64,
    /// Total scenario evaluations.
    pub budget: u32,
    /// Mutants evaluated per generation (fixed, so the search trajectory
    /// does not depend on host parallelism).
    pub batch: u32,
}

impl SearchConfig {
    /// Defaults: 250 µs window, N_RH 500, paper seed, 50 evaluations in
    /// batches of 8.
    pub fn new(tracker: impl Into<TrackerSel>, workload: &str) -> Self {
        Self {
            tracker: tracker.into(),
            workload: workload.to_string(),
            window_us: 250.0,
            nrh: 500,
            seed: 0xDA99E5,
            budget: 50,
            batch: 8,
        }
    }
}

/// One evaluated scenario.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The genome.
    pub spec: ScenarioSpec,
    /// Scenario display name.
    pub name: String,
    /// Mean benign slowdown vs. the insecure attack-free baseline
    /// (1 / normalized performance; higher = stronger attack).
    pub slowdown: f64,
    /// Normalized performance (the paper's metric).
    pub normalized_performance: f64,
    /// Mitigation commands issued (VRR + RFM).
    pub mitigations: u64,
    /// Tracker counter reads + writes injected into DRAM.
    pub counter_ops: u64,
    /// Structure-reset sweeps triggered.
    pub reset_sweeps: u64,
    /// Total DRAM energy, millijoules.
    pub energy_mj: f64,
    /// Microseconds until the attack's full effect (worst slowdown
    /// window), scored from the per-window [`sim_core::SlowdownTrace`].
    pub time_to_max_slowdown_us: Option<f64>,
    /// Microseconds from the worst window until benign IPC recovers above
    /// [`sim::RECOVERY_THRESHOLD`] of the reference; `None` when the
    /// tracker never recovers within the window.
    pub recovery_us: Option<f64>,
    /// Recon map accuracy, for rows produced by the attackpipe pipeline
    /// (`None` for scenario evaluations, which assume full knowledge).
    pub recon_accuracy: Option<f64>,
    /// Victim bit flips adjudicated by the attackpipe pipeline (`None`
    /// for scenario evaluations, which score slowdown only).
    pub flips: Option<u64>,
}

/// Outcome of one search run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Tracker label (display name plus any parameter overrides).
    pub tracker: String,
    /// Seed reproducing this exact search.
    pub seed: u64,
    /// Evaluations actually spent.
    pub evaluations: u32,
    /// Strongest scenario found.
    pub best: EvalRecord,
    /// The paper's tailored attack for this tracker, evaluated under the
    /// same conditions (the bar the search must at least match).
    pub tailored: EvalRecord,
    /// (evaluation index, best slowdown so far) — the climb.
    pub history: Vec<(u32, f64)>,
    /// Candidate genomes answered from the in-run memo instead of a fresh
    /// simulation (mutation collisions; see [`EvalMemo`]).
    pub dedup_hits: u32,
}

impl SearchReport {
    /// True when the search at least matched the hand-written tailored
    /// attack (it always should: the tailored attack seeds the initial
    /// population bit-exactly).
    pub fn rediscovered_tailored(&self) -> bool {
        self.slack() >= 0.0
    }

    /// Slowdown margin of the search's best over the tailored attack.
    pub fn slack(&self) -> f64 {
        self.best.slowdown - self.tailored.slowdown
    }
}

/// Slowdown-trace windows per evaluation: enough resolution to score
/// time-to-max-slowdown and recovery without noticeable cost.
const TRACE_WINDOWS: f64 = 10.0;

/// Builds the experiment evaluating `spec` against `cfg`'s tracker. Every
/// evaluation records a per-window slowdown trace (probes do not perturb
/// the run), so campaign rows can score attack transients.
pub fn experiment_for(cfg: &SearchConfig, spec: &ScenarioSpec) -> Experiment {
    let spec_for_factory = spec.clone();
    let custom = CustomAttack::new(&spec.name(), spec.bypasses_llc(), move |geom, seed| {
        Box::new(PatternTrace(spec_for_factory.build(geom, seed)))
    });
    Experiment::new(&cfg.workload)
        .tracker(cfg.tracker.clone())
        .custom(custom)
        .window_us(cfg.window_us)
        .nrh(cfg.nrh)
        .seed(cfg.seed)
        .record_slowdown(cfg.window_us / TRACE_WINDOWS)
}

/// The shared reference run (insecure, attack-free) all evaluations in this
/// search normalize against. Computing it once removes half the simulation
/// cost of every evaluation.
pub fn reference_run(cfg: &SearchConfig) -> RunStats {
    let mut e = experiment_for(cfg, &ScenarioSpec::baseline(workloads::Attack::CacheThrash));
    // Evaluations normalize against the flat end-of-run reference (the
    // `run_against` path), so recording reference windows would be pure
    // waste; probes never change `RunStats`, only cost.
    e.telemetry = sim::TelemetrySpec::default();
    e.build_system(true).run()
}

fn record(spec: ScenarioSpec, r: &sim::ExperimentResult) -> EvalRecord {
    let np = r.normalized_performance.max(1e-6);
    EvalRecord {
        name: spec.name(),
        spec,
        slowdown: 1.0 / np,
        normalized_performance: r.normalized_performance,
        mitigations: r.run.mem.vrr_commands + r.run.mem.rfm_commands,
        counter_ops: r.run.mem.counter_reads + r.run.mem.counter_writes,
        reset_sweeps: r.run.mem.reset_sweeps,
        energy_mj: r.run.energy_mj,
        time_to_max_slowdown_us: r.telemetry.as_ref().and_then(|t| t.time_to_max_slowdown_us()),
        recovery_us: r.telemetry.as_ref().and_then(|t| t.recovery_us(sim::RECOVERY_THRESHOLD)),
        recon_accuracy: None,
        flips: None,
    }
}

/// Evaluates a batch of scenarios in parallel against a shared reference.
/// Results keep input order; a scenario whose simulation panics is dropped
/// with a warning rather than aborting the search.
pub fn evaluate_specs(
    cfg: &SearchConfig,
    reference: &RunStats,
    specs: Vec<ScenarioSpec>,
) -> Vec<EvalRecord> {
    let outcomes = parallel_map(specs, |spec| {
        let result = experiment_for(cfg, &spec).run_against(reference);
        record(spec, &result)
    });
    outcomes
        .into_iter()
        .filter_map(|o| match o {
            Ok(rec) => Some(rec),
            Err(e) => {
                eprintln!("attacklab: scenario evaluation failed, skipping: {e}");
                None
            }
        })
        .collect()
}

/// [`evaluate_specs`] read through the content-addressed run cache.
///
/// The scenario genome's canonical JSON identifies the custom attack, so
/// each (tracker, workload, scenario, window, seed, …) cell is keyed
/// stably across processes. The shared reference run is *not* part of the
/// key: it is a deterministic function of fields the key already covers
/// (workload, window, N_RH, seed), so equal keys imply equal references.
/// Hits skip simulation entirely; misses simulate and store.
pub fn evaluate_specs_cached(
    cfg: &SearchConfig,
    reference: &RunStats,
    specs: Vec<ScenarioSpec>,
    cache: &RunCache,
) -> Vec<EvalRecord> {
    let keyed: Vec<(ScenarioSpec, Option<sim::cache::CellKey>)> = specs
        .into_iter()
        .map(|spec| {
            let e = experiment_for(cfg, &spec);
            let key = cell_key_with_attack_id(&e, Some(&spec.to_json().render()));
            (spec, key)
        })
        .collect();
    let mut records: Vec<Option<EvalRecord>> = Vec::with_capacity(keyed.len());
    let mut miss_slots = Vec::new();
    let mut miss_specs = Vec::new();
    for (i, (spec, key)) in keyed.iter().enumerate() {
        match key.as_ref().and_then(|k| cache.lookup(k)) {
            Some(result) => records.push(Some(record(spec.clone(), &result))),
            None => {
                records.push(None);
                miss_slots.push(i);
                miss_specs.push(spec.clone());
            }
        }
    }
    let outcomes = parallel_map(miss_specs, |spec| {
        let result = experiment_for(cfg, &spec).run_against(reference);
        (spec, result)
    });
    for (j, outcome) in outcomes.into_iter().enumerate() {
        let i = miss_slots[j];
        match outcome {
            Ok((spec, result)) => {
                if let Some(key) = &keyed[i].1 {
                    cache.save(key, &result);
                }
                records[i] = Some(record(spec, &result));
            }
            Err(e) => eprintln!("attacklab: scenario evaluation failed, skipping: {e}"),
        }
    }
    records.into_iter().flatten().collect()
}

/// An in-run memo of already-evaluated genomes, keyed by the genome's
/// canonical JSON. Hill-climbing mutation collides often (a `seed_salt`
/// nudge undone, the same shape scaling drawn twice), and each collision
/// used to pay a full simulation; the memo answers it from memory instead.
///
/// Deliberately *not* the PR 6 disk cache: the search trajectory is
/// adaptive, so its cells would pollute a shared cache with one-off keys.
/// The memo lives and dies with a single search run.
#[derive(Debug, Default)]
pub struct EvalMemo {
    map: HashMap<String, EvalRecord>,
    hits: u32,
}

impl EvalMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluations answered from the memo instead of a simulation.
    pub fn hits(&self) -> u32 {
        self.hits
    }

    /// Distinct genomes simulated so far.
    pub fn simulated(&self) -> usize {
        self.map.len()
    }
}

/// [`evaluate_specs`] deduplicated through an [`EvalMemo`]: identical
/// genomes — within this batch or remembered from earlier batches of the
/// same run — are simulated once and answered from the memo afterwards.
/// Results keep input order; duplicates receive byte-identical records
/// (the simulation is deterministic, so this changes cost, never results).
pub fn evaluate_specs_memo(
    cfg: &SearchConfig,
    reference: &RunStats,
    specs: Vec<ScenarioSpec>,
    memo: &mut EvalMemo,
) -> Vec<EvalRecord> {
    let mut slots: Vec<Option<EvalRecord>> = Vec::with_capacity(specs.len());
    let mut miss_index: HashMap<String, usize> = HashMap::new();
    let mut miss_slots: Vec<Vec<usize>> = Vec::new();
    let mut miss_keys: Vec<String> = Vec::new();
    let mut miss_specs: Vec<ScenarioSpec> = Vec::new();
    for (i, spec) in specs.into_iter().enumerate() {
        let key = spec.to_json().render();
        if let Some(rec) = memo.map.get(&key) {
            memo.hits += 1;
            slots.push(Some(rec.clone()));
        } else if let Some(&u) = miss_index.get(&key) {
            // Within-batch collision: simulate once, fill both slots.
            memo.hits += 1;
            slots.push(None);
            miss_slots[u].push(i);
        } else {
            slots.push(None);
            miss_index.insert(key.clone(), miss_specs.len());
            miss_slots.push(vec![i]);
            miss_keys.push(key);
            miss_specs.push(spec);
        }
    }
    let outcomes = parallel_map(miss_specs, |spec| {
        let result = experiment_for(cfg, &spec).run_against(reference);
        record(spec, &result)
    });
    for (u, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(rec) => {
                for &i in &miss_slots[u] {
                    slots[i] = Some(rec.clone());
                }
                memo.map.insert(miss_keys[u].clone(), rec);
            }
            Err(e) => eprintln!("attacklab: scenario evaluation failed, skipping: {e}"),
        }
    }
    slots.into_iter().flatten().collect()
}

/// Runs the hill-climbing search and reports the worst case found.
///
/// # Panics
///
/// Panics if the workload is unknown or the budget is zero.
pub fn search(cfg: &SearchConfig) -> SearchReport {
    let reference = reference_run(cfg);
    search_against(cfg, &reference)
}

/// [`search`] with a caller-supplied reference run. The reference is
/// tracker-independent, so campaigns sweeping many trackers compute it once
/// and share it across every search and matrix evaluation.
///
/// # Panics
///
/// Panics if the budget is zero, or if the tailored-attack simulation
/// itself fails (without it there is no baseline to compare against).
pub fn search_against(cfg: &SearchConfig, reference: &RunStats) -> SearchReport {
    search_seeded(cfg, reference, &[])
}

/// [`search_against`] warm-started from prior genomes (typically the top
/// cells of a profiler sensitivity heatmap). The priors join the initial
/// population ahead of the random fill, and the exploration move mutates a
/// random prior instead of drawing a cold random genome — the search spends
/// its budget where the profile already showed the tracker to be weak.
///
/// With an empty prior set this is exactly [`search_against`]: same rng
/// draw sequence, same trajectory, bit-identical report.
///
/// # Panics
///
/// Panics if the budget is zero, or if the tailored-attack simulation
/// itself fails (without it there is no baseline to compare against).
pub fn search_seeded(
    cfg: &SearchConfig,
    reference: &RunStats,
    priors: &[ScenarioSpec],
) -> SearchReport {
    search_seeded_observed(cfg, reference, priors, &mut |_, _| {})
}

/// [`search_seeded`] streaming the climb: `frontier(evaluations, best)` is
/// called after every batch, exactly mirroring the report's `history` —
/// dashboards render the frontier live without changing the trajectory.
///
/// # Panics
///
/// Panics if the budget is zero, or if the tailored-attack simulation
/// itself fails (without it there is no baseline to compare against).
pub fn search_seeded_observed(
    cfg: &SearchConfig,
    reference: &RunStats,
    priors: &[ScenarioSpec],
    frontier: &mut dyn FnMut(u32, f64),
) -> SearchReport {
    assert!(cfg.budget > 0, "search budget must be nonzero");
    let mut rng = Xoshiro256::seed_from(cfg.seed ^ 0x5EA2C4);

    // Initial population: the attack the paper tailored to this tracker
    // (bit-exact via compat — guarantees the search never reports worse
    // than the hand-written pattern), the two mapping-agnostic attacks,
    // any warm-start priors, and random genomes to fill the first batch.
    let tailored_attack = workloads::Attack::tailored_for(cfg.tracker.name());
    let mut init: Vec<ScenarioSpec> = Vec::new();
    for attack in [tailored_attack, workloads::Attack::Streaming, workloads::Attack::RefreshAttack]
    {
        let spec = ScenarioSpec::baseline(attack);
        if !init.contains(&spec) {
            init.push(spec);
        }
    }
    for prior in priors {
        if !init.contains(prior) {
            init.push(prior.clone());
        }
    }
    while (init.len() as u32) < cfg.batch.max(4).min(cfg.budget) {
        init.push(ScenarioSpec::random(&mut rng));
    }
    init.truncate(cfg.budget as usize);

    let mut memo = EvalMemo::new();
    let mut evaluations = 0u32;
    let mut history = Vec::new();
    // Count attempts (not successes) everywhere, so a panicking scenario
    // still consumes budget and the loop below terminates on schedule.
    // Memo hits count too: the search *trajectory* must not depend on how
    // many collisions happened to be answered cheaply.
    evaluations += init.len() as u32;
    let evaluated = evaluate_specs_memo(cfg, reference, init, &mut memo);
    let tailored = evaluated
        .iter()
        .find(|r| r.spec == ScenarioSpec::baseline(tailored_attack))
        .unwrap_or_else(|| {
            panic!(
                "the tailored attack ({}) failed to simulate against {}; \
                 no baseline to search against",
                tailored_attack,
                cfg.tracker.name()
            )
        })
        .clone();
    let mut best = evaluated
        .iter()
        .max_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
        .expect("non-empty initial population")
        .clone();
    history.push((evaluations, best.slowdown));
    frontier(evaluations, best.slowdown);

    while evaluations < cfg.budget {
        let remaining = cfg.budget - evaluations;
        let n = cfg.batch.max(1).min(remaining);
        // Mostly local moves around the incumbent, plus an occasional
        // exploration candidate to escape plateaus: a fresh random genome
        // when searching cold, a mutated heatmap prior when warm-started.
        let mutants: Vec<ScenarioSpec> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    if priors.is_empty() {
                        ScenarioSpec::random(&mut rng)
                    } else {
                        let pick = rng.gen_range(priors.len() as u64) as usize;
                        priors[pick].mutate(&mut rng)
                    }
                } else {
                    best.spec.mutate(&mut rng)
                }
            })
            .collect();
        let evaluated = evaluate_specs_memo(cfg, reference, mutants, &mut memo);
        evaluations += n;
        for rec in evaluated {
            if rec.slowdown > best.slowdown {
                best = rec;
            }
        }
        history.push((evaluations, best.slowdown));
        frontier(evaluations, best.slowdown);
    }

    SearchReport {
        tracker: cfg.tracker.label(),
        seed: cfg.seed,
        evaluations,
        best,
        tailored,
        history,
        dedup_hits: memo.hits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(tracker: &str) -> SearchConfig {
        let mut cfg = SearchConfig::new(tracker, "povray_like");
        cfg.window_us = 60.0;
        cfg.budget = 6;
        cfg.batch = 3;
        cfg.seed = 0xBEEF;
        cfg
    }

    #[test]
    fn search_never_reports_worse_than_the_tailored_attack() {
        let report = search(&tiny("hydra"));
        assert!(report.rediscovered_tailored(), "slack {}", report.slack());
        assert_eq!(report.evaluations, 6);
        assert_eq!(report.tracker, "Hydra");
        assert!(report.best.slowdown >= 1.0 - 1e-9, "slowdown {}", report.best.slowdown);
    }

    #[test]
    fn search_is_deterministic_in_its_seed() {
        let a = search(&tiny("comet"));
        let b = search(&tiny("comet"));
        assert_eq!(a.best.spec, b.best.spec);
        assert!((a.best.slowdown - b.best.slowdown).abs() < 1e-12);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn evaluations_score_attack_transients() {
        let cfg = tiny("hydra");
        let reference = reference_run(&cfg);
        let records = evaluate_specs(
            &cfg,
            &reference,
            vec![ScenarioSpec::baseline(workloads::Attack::CacheThrash)],
        );
        assert_eq!(records.len(), 1);
        let r = &records[0];
        let t = r.time_to_max_slowdown_us.expect("slowdown trace must be recorded");
        assert!(t > 0.0 && t <= cfg.window_us + 1e-9, "{t}");
        if let Some(rec) = r.recovery_us {
            assert!(rec > 0.0 && rec < cfg.window_us);
        }
    }

    #[test]
    fn cached_evaluation_reproduces_the_uncached_records() {
        let dir = std::env::temp_dir().join(format!("attacklab-eval-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = RunCache::open(&dir).expect("open cache");
        let cfg = tiny("hydra");
        let reference = reference_run(&cfg);
        let specs = vec![
            ScenarioSpec::baseline(workloads::Attack::CacheThrash),
            ScenarioSpec::baseline(workloads::Attack::Streaming),
        ];
        let plain = evaluate_specs(&cfg, &reference, specs.clone());
        let cold = evaluate_specs_cached(&cfg, &reference, specs.clone(), &cache);
        assert_eq!(cache.stats().misses, 2);
        let warm = evaluate_specs_cached(&cfg, &reference, specs, &cache);
        assert_eq!(cache.stats().hits, 2, "warm pass must answer from cache");
        for (a, b) in plain.iter().zip(&cold).chain(cold.iter().zip(&warm)) {
            assert_eq!(a.name, b.name);
            assert!((a.slowdown - b.slowdown).abs() < 1e-12);
            assert_eq!(a.mitigations, b.mitigations);
            assert_eq!(a.counter_ops, b.counter_ops);
            assert_eq!(a.time_to_max_slowdown_us, b.time_to_max_slowdown_us);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_deduplicates_identical_genomes() {
        let cfg = tiny("hydra");
        let reference = reference_run(&cfg);
        let mut memo = EvalMemo::new();
        let dup = ScenarioSpec::baseline(workloads::Attack::Streaming);
        let other = ScenarioSpec::baseline(workloads::Attack::CacheThrash);
        let first =
            evaluate_specs_memo(&cfg, &reference, vec![dup.clone(), dup.clone()], &mut memo);
        assert_eq!(first.len(), 2);
        assert_eq!(memo.simulated(), 1, "within-batch duplicate must simulate once");
        assert_eq!(memo.hits(), 1);
        let again = evaluate_specs_memo(&cfg, &reference, vec![other, dup], &mut memo);
        assert_eq!(again.len(), 2);
        assert_eq!(memo.simulated(), 2, "only the new genome simulates");
        assert_eq!(memo.hits(), 2);
        assert!((first[0].slowdown - first[1].slowdown).abs() == 0.0);
        assert!((again[1].slowdown - first[0].slowdown).abs() == 0.0);
    }

    #[test]
    fn empty_priors_reproduce_the_cold_search_exactly() {
        let cfg = tiny("comet");
        let reference = reference_run(&cfg);
        let cold = search_against(&cfg, &reference);
        let seeded = search_seeded(&cfg, &reference, &[]);
        assert_eq!(cold.best.spec, seeded.best.spec);
        assert_eq!(cold.history, seeded.history);
        assert_eq!(cold.evaluations, seeded.evaluations);
    }

    #[test]
    fn warm_started_search_is_deterministic_and_never_below_tailored() {
        let cfg = tiny("hydra");
        let reference = reference_run(&cfg);
        let priors = vec![ScenarioSpec {
            shape: crate::scenario::Shape::Hammer { banks: 32, per_bank: 8 },
            ..ScenarioSpec::baseline(workloads::Attack::CacheThrash)
        }];
        let a = search_seeded(&cfg, &reference, &priors);
        let b = search_seeded(&cfg, &reference, &priors);
        assert_eq!(a.best.spec, b.best.spec);
        assert_eq!(a.history, b.history);
        assert_eq!(a.dedup_hits, b.dedup_hits);
        assert!(a.rediscovered_tailored(), "slack {}", a.slack());
        assert_eq!(a.evaluations, cfg.budget);
    }

    #[test]
    fn shared_reference_matches_per_run_normalization() {
        let cfg = tiny("para");
        let spec = ScenarioSpec::baseline(workloads::Attack::Streaming);
        let reference = reference_run(&cfg);
        let via_shared = experiment_for(&cfg, &spec).run_against(&reference);
        let via_fresh = experiment_for(&cfg, &spec).run();
        assert!(
            (via_shared.normalized_performance - via_fresh.normalized_performance).abs() < 1e-12
        );
    }
}
