//! Compatibility layer over the fixed [`workloads::Attack`] menu.
//!
//! Every hand-written attack of the paper (Figs. 1-5, Section V-E) is a
//! composition of attacklab primitives; [`attack_pattern`] rebuilds each one
//! **bit-exactly** — the reconstruction emits the same access stream, entry
//! for entry, as the legacy [`workloads::AttackTrace`] (asserted by the
//! tests below). This is what lets the scenario search seed itself with the
//! paper's tailored attacks and then mutate beyond them, and it keeps the
//! `Attack` enum as a thin facade over the composable engine.

use crate::pattern::{BoxPattern, HammerRows, LineStream, RowSweep, SweepOrder};
use sim_core::addr::Geometry;
use workloads::Attack;

/// Rebuilds `attack` as a composition of attacklab primitives producing the
/// exact access stream of `attack.trace(geom, seed)`.
pub fn attack_pattern(attack: Attack, geom: Geometry, seed: u64) -> BoxPattern {
    match attack {
        Attack::CacheThrash => Box::new(LineStream::paper_thrash()),
        Attack::StartStream | Attack::Streaming => Box::new(RowSweep::paper_streaming(geom)),
        Attack::AbacusSpillover => Box::new(RowSweep::new(
            geom,
            0,
            geom.banks_per_rank(),
            geom.rows_per_bank - crate::pattern::RESERVED_TOP_ROWS,
            SweepOrder::Diagonal,
        )),
        Attack::HydraRccThrash | Attack::CometRatOverflow | Attack::RefreshAttack => {
            // The aggressor sets are seed-derived inside the legacy trace;
            // reuse them verbatim so the composition replays identically.
            let trace = attack.trace(geom, seed);
            Box::new(HammerRows::new(geom, trace.aggressor_rows().to_vec()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternGen;
    use cpu::TraceSource;

    #[test]
    fn every_attack_is_reproduced_entry_for_entry() {
        let geom = Geometry::paper_baseline();
        for attack in Attack::all() {
            for seed in [0xDA99E5u64, 1, 42] {
                let mut legacy = attack.trace(geom, seed);
                let mut rebuilt = attack_pattern(attack, geom, seed);
                for i in 0..20_000 {
                    let a = legacy.next_entry();
                    let b = rebuilt.next_access();
                    assert_eq!(a, b, "{attack} diverges at entry {i} (seed {seed:#x})");
                }
            }
        }
    }
}
