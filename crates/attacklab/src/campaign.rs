//! Red-team campaigns: scenario × tracker matrices plus per-tracker
//! worst-case search, fanned out over the sim runner's parallel sweep.
//!
//! A campaign evaluates every fixed scenario against every tracker (all
//! jobs share one reference run), optionally runs the mutation search per
//! tracker, and aggregates everything into a resilience leaderboard with
//! JSON/CSV exports.

use crate::json::{csv_field, Json};
use crate::scenario::ScenarioSpec;
use crate::search::{
    evaluate_specs, evaluate_specs_cached, reference_run, search_against, EvalRecord, SearchConfig,
    SearchReport,
};
use sim::cache::RunCache;
use sim::experiment::TrackerSel;
use workloads::Attack;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Trackers under test (registry selections, parameter overrides
    /// included).
    pub trackers: Vec<TrackerSel>,
    /// Benign workload sharing the machine.
    pub workload: String,
    /// Fixed scenarios evaluated for every tracker.
    pub scenarios: Vec<ScenarioSpec>,
    /// Simulation window per run, microseconds.
    pub window_us: f64,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Seed for simulation and search.
    pub seed: u64,
    /// Worst-case-search evaluations per tracker (0 disables the search).
    pub search_budget: u32,
    /// Content-addressed run-cache directory: when set, the fixed
    /// scenario × tracker matrix reads through it (hits skip simulation).
    /// Search evaluations are never cached — the mutation trajectory is
    /// adaptive, so its cells rarely repeat across campaigns.
    pub cache_dir: Option<String>,
}

impl CampaignConfig {
    /// A campaign over the given trackers with the paper's seven attack
    /// patterns as the fixed matrix and a 50-evaluation search per tracker.
    pub fn new(trackers: Vec<TrackerSel>, workload: &str) -> Self {
        Self {
            trackers,
            workload: workload.to_string(),
            scenarios: Attack::all().map(ScenarioSpec::baseline).to_vec(),
            window_us: 250.0,
            nrh: 500,
            seed: 0xDA99E5,
            search_budget: 50,
            cache_dir: None,
        }
    }

    fn search_config(&self, tracker: &TrackerSel) -> SearchConfig {
        let mut cfg = SearchConfig::new(tracker.clone(), &self.workload);
        cfg.window_us = self.window_us;
        cfg.nrh = self.nrh;
        cfg.seed = self.seed;
        cfg.budget = self.search_budget.max(1);
        cfg
    }
}

/// One evaluated (tracker, scenario) cell.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Tracker label ([`TrackerSel::label`]: display name plus any
    /// parameter overrides, so two parameterizations of one scheme stay
    /// distinguishable in rows, leaderboards, and exports).
    pub tracker: String,
    /// "fixed" for matrix scenarios, "search" for search discoveries.
    pub origin: &'static str,
    /// The evaluation.
    pub record: EvalRecord,
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Every evaluated cell (fixed matrix first, then search bests).
    pub rows: Vec<CampaignRow>,
    /// Per-tracker search reports (empty when the search was disabled).
    pub searches: Vec<SearchReport>,
}

/// Runs the campaign: the fixed matrix for every tracker, then (budget
/// permitting) the worst-case search per tracker.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut rows = Vec::new();
    let mut searches = Vec::new();
    // The reference run (insecure, attack-free) depends only on the
    // workload and system config, so every tracker's matrix and search
    // share one.
    let reference = cfg
        .trackers
        .first()
        .map(|t| reference_run(&cfg.search_config(t)))
        .expect("campaign needs at least one tracker");
    let cache = cfg.cache_dir.as_ref().and_then(|dir| match RunCache::open(dir) {
        Ok(cache) => Some(cache),
        Err(e) => {
            eprintln!("attacklab: cannot open run cache {dir}: {e}; running uncached");
            None
        }
    });
    for tracker in &cfg.trackers {
        let scfg = cfg.search_config(tracker);
        let matrix = match &cache {
            Some(cache) => evaluate_specs_cached(&scfg, &reference, cfg.scenarios.clone(), cache),
            None => evaluate_specs(&scfg, &reference, cfg.scenarios.clone()),
        };
        for record in matrix {
            rows.push(CampaignRow { tracker: tracker.label(), origin: "fixed", record });
        }
        if cfg.search_budget > 0 {
            let report = search_against(&scfg, &reference);
            rows.push(CampaignRow {
                tracker: tracker.label(),
                origin: "search",
                record: report.best.clone(),
            });
            searches.push(report);
        }
    }
    CampaignReport { config: cfg.clone(), rows, searches }
}

impl CampaignReport {
    /// The worst (highest-slowdown) row per tracker, most-resilient tracker
    /// first.
    pub fn leaderboard(&self) -> Vec<&CampaignRow> {
        let mut worst: Vec<&CampaignRow> = Vec::new();
        for tracker in &self.config.trackers {
            let name = tracker.label();
            if let Some(row) = self
                .rows
                .iter()
                .filter(|r| r.tracker == name)
                .max_by(|a, b| a.record.slowdown.total_cmp(&b.record.slowdown))
            {
                worst.push(row);
            }
        }
        worst.sort_by(|a, b| a.record.slowdown.total_cmp(&b.record.slowdown));
        worst
    }

    /// Renders the leaderboard as an aligned text table.
    pub fn leaderboard_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<13} {:>9} {:>9} {:>12} {:>12} {:>8} {:>10} {:>9} {:>9}  {}\n",
            "tracker",
            "worst",
            "norm.perf",
            "mitigations",
            "counter-ops",
            "resets",
            "energy",
            "t-max",
            "recovery",
            "scenario"
        ));
        let us = |v: Option<f64>| match v {
            Some(v) => format!("{v:.0}us"),
            None => "-".to_string(),
        };
        for row in self.leaderboard() {
            let r = &row.record;
            out.push_str(&format!(
                "{:<13} {:>8.3}x {:>9.3} {:>12} {:>12} {:>8} {:>8.2}mJ {:>9} {:>9}  {} [{}]\n",
                row.tracker,
                r.slowdown,
                r.normalized_performance,
                r.mitigations,
                r.counter_ops,
                r.reset_sweeps,
                r.energy_mj,
                us(r.time_to_max_slowdown_us),
                us(r.recovery_us),
                r.name,
                row.origin,
            ));
        }
        out
    }

    /// Serializes the full report (config, rows, searches) as JSON.
    pub fn to_json(&self) -> Json {
        let row_json = |row: &CampaignRow| {
            let r = &row.record;
            Json::obj([
                ("tracker", Json::str(&row.tracker)),
                ("origin", Json::str(row.origin)),
                ("scenario", Json::str(&r.name)),
                ("spec", r.spec.to_json()),
                ("slowdown", Json::num(r.slowdown)),
                ("normalized_performance", Json::num(r.normalized_performance)),
                ("mitigations", Json::count(r.mitigations)),
                ("counter_ops", Json::count(r.counter_ops)),
                ("reset_sweeps", Json::count(r.reset_sweeps)),
                ("energy_mj", Json::num(r.energy_mj)),
                (
                    "time_to_max_slowdown_us",
                    r.time_to_max_slowdown_us.map_or(Json::Null, Json::num),
                ),
                ("recovery_us", r.recovery_us.map_or(Json::Null, Json::num)),
                ("recon_accuracy", r.recon_accuracy.map_or(Json::Null, Json::num)),
                ("flips", r.flips.map_or(Json::Null, Json::count)),
            ])
        };
        let searches = self
            .searches
            .iter()
            .map(|s| {
                Json::obj([
                    ("tracker", Json::str(&s.tracker)),
                    ("seed", Json::hex(s.seed)),
                    ("evaluations", Json::count(s.evaluations as u64)),
                    ("best_slowdown", Json::num(s.best.slowdown)),
                    ("tailored_slowdown", Json::num(s.tailored.slowdown)),
                    ("tailored_scenario", Json::str(&s.tailored.name)),
                    ("slack", Json::num(s.slack())),
                    ("rediscovered_tailored", Json::Bool(s.rediscovered_tailored())),
                    ("best_spec", s.best.spec.to_json()),
                    (
                        "history",
                        Json::Arr(
                            s.history
                                .iter()
                                .map(|(i, v)| {
                                    Json::Arr(vec![Json::count(*i as u64), Json::num(*v)])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            (
                "config",
                Json::obj([
                    (
                        "trackers",
                        Json::Arr(
                            self.config.trackers.iter().map(|t| Json::str(t.name())).collect(),
                        ),
                    ),
                    ("workload", Json::str(&self.config.workload)),
                    ("window_us", Json::num(self.config.window_us)),
                    ("nrh", Json::count(self.config.nrh as u64)),
                    ("seed", Json::hex(self.config.seed)),
                    ("search_budget", Json::count(self.config.search_budget as u64)),
                ]),
            ),
            ("rows", Json::Arr(self.rows.iter().map(row_json).collect())),
            ("searches", Json::Arr(searches)),
        ])
    }

    /// Serializes every row as CSV (header + one line per evaluation).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "tracker,origin,scenario,slowdown,normalized_performance,mitigations,counter_ops,reset_sweeps,energy_mj,time_to_max_slowdown_us,recovery_us,recon_accuracy,flips\n",
        );
        let us = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.3}"));
        for row in &self.rows {
            let r = &row.record;
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{},{},{},{:.4},{},{},{},{}\n",
                csv_field(&row.tracker),
                row.origin,
                csv_field(&r.name),
                r.slowdown,
                r.normalized_performance,
                r.mitigations,
                r.counter_ops,
                r.reset_sweeps,
                r.energy_mj,
                us(r.time_to_max_slowdown_us),
                us(r.recovery_us),
                r.recon_accuracy.map_or(String::new(), |v| format!("{v:.4}")),
                r.flips.map_or(String::new(), |v| v.to_string()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trackers(keys: &[&str]) -> Vec<TrackerSel> {
        keys.iter().map(|k| TrackerSel::by_key(k).unwrap()).collect()
    }

    fn tiny() -> CampaignConfig {
        let mut cfg = CampaignConfig::new(trackers(&["hydra", "dapper-h"]), "povray_like");
        cfg.window_us = 60.0;
        cfg.scenarios = vec![
            ScenarioSpec::baseline(Attack::Streaming),
            ScenarioSpec::baseline(Attack::CacheThrash),
        ];
        cfg.search_budget = 0;
        cfg
    }

    #[test]
    fn campaign_covers_the_full_matrix() {
        let report = run_campaign(&tiny());
        assert_eq!(report.rows.len(), 4, "2 trackers x 2 scenarios");
        assert!(report.searches.is_empty());
        let board = report.leaderboard();
        assert_eq!(board.len(), 2);
        assert!(
            board[0].record.slowdown <= board[1].record.slowdown,
            "leaderboard sorts most-resilient first"
        );
    }

    #[test]
    fn parameterized_variants_of_one_tracker_stay_distinguishable() {
        // Two Hydra configurations differing only in RCC size — the
        // sensitivity-sweep shape this registry unlocks — must keep
        // separate rows, leaderboard entries, and export labels.
        let baseline = TrackerSel::by_key("hydra").unwrap();
        let small = baseline.clone().with_param("rcc_entries", 512).unwrap();
        let mut cfg = CampaignConfig::new(vec![baseline, small], "povray_like");
        cfg.window_us = 60.0;
        cfg.scenarios = vec![ScenarioSpec::baseline(Attack::Streaming)];
        cfg.search_budget = 0;
        let report = run_campaign(&cfg);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].tracker, "Hydra");
        assert_eq!(report.rows[1].tracker, "Hydra{rcc_entries=512}");
        let board = report.leaderboard();
        assert_eq!(board.len(), 2, "one leaderboard entry per parameterization");
        assert!(report.to_csv().contains("Hydra{rcc_entries=512}"));
    }

    #[test]
    fn exports_are_well_formed() {
        let report = run_campaign(&tiny());
        let json = report.to_json().render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rows\""));
        assert!(json.contains("\"Hydra\""));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 5, "header + 4 rows");
        assert!(csv.starts_with("tracker,origin,scenario"));
        assert!(csv.lines().next().unwrap().ends_with("recovery_us,recon_accuracy,flips"));
        let table = report.leaderboard_table();
        assert!(table.contains("Hydra") && table.contains("DAPPER-H"));
        assert!(table.contains("t-max"), "leaderboard gains the transient column");
        // Every evaluation records a slowdown trace, so the transient
        // score is always present.
        assert!(report.rows.iter().all(|r| r.record.time_to_max_slowdown_us.is_some()));
        assert!(json.contains("time_to_max_slowdown_us"));
    }
}
