//! Red-team campaign runner. See `attacklab::cli` for the interface.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(attacklab::cli::main_with_args(&args));
}
