//! The `redteam` command-line campaign driver.
//!
//! ```text
//! cargo run --release --bin redteam -- --trackers dapper-h,hydra,comet --budget 50
//! ```
//!
//! Runs the fixed attack matrix plus the worst-case search for every named
//! tracker, prints the resilience leaderboard and the search-vs-tailored
//! comparison (with the seed reproducing each best scenario), and writes
//! the full structured results as JSON (and optionally CSV).

use crate::campaign::{run_campaign, CampaignConfig, CampaignReport};
use sim::experiment::TrackerSel;
use sim::AttackerKnowledge;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct RedteamOpts {
    /// Campaign configuration.
    pub campaign: CampaignConfig,
    /// JSON output path.
    pub out: String,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// `--attacker` knowledge levels, deduplicated in flag order. Empty
    /// means the flag was absent; non-empty requires the attackpipe
    /// `redteam` binary (this crate only parses the axis — the pipeline
    /// lives upstack, so the dependency arrow stays acyclic).
    pub attacker: Vec<AttackerKnowledge>,
}

/// Default tracker set: DAPPER plus the four attackable shared-structure
/// baselines.
pub const DEFAULT_TRACKERS: &str = "dapper-h,dapper-s,hydra,start,comet,abacus";

const USAGE: &str = "redteam — adversarial scenario campaign runner

USAGE: redteam [--trackers a,b,c] [--workload NAME] [--budget N]
               [--window-us F] [--nrh N] [--seed N] [--out FILE] [--csv FILE]
               [--cache-dir DIR] [--attacker LEVELS]

  --trackers   comma-separated tracker list (default dapper-h,dapper-s,hydra,start,comet,abacus)
  --workload   benign co-running workload (default libquantum_like)
  --budget     search evaluations per tracker, 0 = fixed matrix only (default 50)
  --window-us  simulated window per evaluation in microseconds (default 250)
  --nrh        RowHammer threshold (default 500)
  --seed       seed for simulation and search (default 0xDA99E5 as decimal)
  --out        JSON results path (default out/redteam_results.json)
  --csv        also write rows as CSV to this path
  --cache-dir  read the fixed matrix through the content-addressed run
               cache in DIR (search evaluations always simulate)
  --attacker   also run the attackpipe knowledge axis: comma-separated
               levels (omniscient, timing-recon, blind) or 'all'; adds
               one flips-vs-slowdown row per tracker and level

Tracker names resolve through the open registry: any key, display name,
or alias works, case- and separator-insensitively (dapper-h, DAPPER_H,
DapperH). Parent directories of --out/--csv are created as needed.

The attackpipe redteam binary also accepts the profiler's campaign
subcommands: redteam profile | evaluate | attack (see each --help).
";

/// Parses CLI arguments. Returns `Err` with a usage/diagnostic string on
/// bad input (the caller prints it and sets the exit code).
pub fn parse_args(args: &[String]) -> Result<RedteamOpts, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    // Strict parse: every argument must be a known flag followed by its
    // value, so a typo'd flag or a forgotten value fails fast instead of
    // silently running a multi-minute campaign with defaults.
    const FLAGS: [&str; 10] = [
        "--trackers",
        "--workload",
        "--budget",
        "--window-us",
        "--nrh",
        "--seed",
        "--out",
        "--csv",
        "--cache-dir",
        "--attacker",
    ];
    let mut pairs: Vec<(&str, &String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(&known) = FLAGS.iter().find(|&&f| f == flag) else {
            return Err(format!("unknown argument '{flag}' (try --help)"));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("{flag} requires a value"));
        };
        pairs.push((known, value));
        i += 2;
    }
    let get = |flag: &str| -> Option<&String> {
        pairs.iter().rev().find(|(f, _)| *f == flag).map(|(_, v)| *v)
    };
    let parse_num = |flag: &str, default: f64| -> Result<f64, String> {
        match get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{flag}: cannot parse '{v}'")),
        }
    };
    let tracker_list = get("--trackers").map(String::as_str).unwrap_or(DEFAULT_TRACKERS);
    let mut trackers: Vec<TrackerSel> = Vec::new();
    for name in tracker_list.split(',').filter(|s| !s.is_empty()) {
        // One lookup path for every spelling and alias: the registry.
        let t = TrackerSel::by_key(name).map_err(|e| e.to_string())?;
        if !trackers.contains(&t) {
            trackers.push(t);
        }
    }
    if trackers.is_empty() {
        return Err("no trackers selected".to_string());
    }
    let workload = get("--workload").map(String::as_str).unwrap_or("libquantum_like");
    if workloads::spec_by_name(workload).is_none() {
        return Err(format!("unknown workload '{workload}'"));
    }
    let mut campaign = CampaignConfig::new(trackers, workload);
    campaign.search_budget = parse_num("--budget", 50.0)? as u32;
    campaign.window_us = parse_num("--window-us", 250.0)?;
    campaign.nrh = parse_num("--nrh", 500.0)? as u32;
    campaign.seed = match get("--seed") {
        None => 0xDA99E5,
        Some(v) => v.parse().map_err(|_| format!("--seed: cannot parse '{v}'"))?,
    };
    campaign.cache_dir = get("--cache-dir").cloned();
    let mut attacker: Vec<AttackerKnowledge> = Vec::new();
    if let Some(levels) = get("--attacker") {
        for name in levels.split(',').filter(|s| !s.is_empty()) {
            if name.trim().eq_ignore_ascii_case("all") {
                for level in AttackerKnowledge::ALL {
                    if !attacker.contains(&level) {
                        attacker.push(level);
                    }
                }
                continue;
            }
            let level = AttackerKnowledge::by_key(name).map_err(|m| format!("--attacker: {m}"))?;
            if !attacker.contains(&level) {
                attacker.push(level);
            }
        }
        if attacker.is_empty() {
            return Err("--attacker: no knowledge levels named (try 'all')".to_string());
        }
    }
    Ok(RedteamOpts {
        campaign,
        out: get("--out").cloned().unwrap_or_else(|| "out/redteam_results.json".to_string()),
        csv: get("--csv").cloned(),
        attacker,
    })
}

/// Writes `content` to `path`, creating parent directories first.
fn write_artifact(path: &str, content: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, content)
}

/// Prints the campaign header, leaderboard, and search-vs-tailored
/// comparison to stdout (shared with the attackpipe `redteam` driver,
/// which appends its attacker-axis section after this).
pub fn print_report(report: &CampaignReport) {
    let cfg = &report.config;
    println!("==== redteam: adversarial scenario campaign ====");
    println!(
        "workload: {} | window: {} us | N_RH: {} | seed: {:#x} | search budget: {}/tracker",
        cfg.workload, cfg.window_us, cfg.nrh, cfg.seed, cfg.search_budget
    );
    println!();
    println!("resilience leaderboard (worst case found per tracker, best defense first):");
    print!("{}", report.leaderboard_table());
    if !report.searches.is_empty() {
        println!();
        println!("search vs. the paper's tailored attacks:");
        for s in &report.searches {
            let verdict = if s.slack() > 1e-9 { "beats tailored" } else { "matches tailored" };
            println!(
                "  {:<13} best {:>7.3}x ({}) vs tailored {:>7.3}x ({}) -> {} | reproduce: --seed {} ({} evals)",
                s.tracker,
                s.best.slowdown,
                s.best.name,
                s.tailored.slowdown,
                s.tailored.name,
                verdict,
                s.seed,
                s.evaluations,
            );
        }
    }
}

/// Full CLI entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if !opts.attacker.is_empty() {
        // The pipeline lives in the attackpipe crate (which depends on
        // this one); its redteam binary handles the flag.
        eprintln!(
            "--attacker needs the attackpipe pipeline: \
             run `cargo run --release -p attackpipe --bin redteam` instead"
        );
        return 2;
    }
    let report = run_campaign(&opts.campaign);
    print_report(&report);
    let json = report.to_json().render();
    // Campaign artifacts live under a dedicated output directory (the
    // default is out/), never the repo root.
    if let Err(e) = write_artifact(&opts.out, &json) {
        eprintln!("cannot write {}: {e}", opts.out);
        return 1;
    }
    println!("\nresults written to {}", opts.out);
    if let Some(csv_path) = &opts.csv {
        if let Err(e) = write_artifact(csv_path, &report.to_csv()) {
            eprintln!("cannot write {csv_path}: {e}");
            return 1;
        }
        println!("rows written to {csv_path}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_the_acceptance_command_line() {
        let opts =
            parse_args(&argv("--trackers dapper-h,hydra,comet --budget 50")).expect("parses");
        let keys: Vec<&str> = opts.campaign.trackers.iter().map(|t| t.key()).collect();
        assert_eq!(keys, vec!["dapper-h", "hydra", "comet"]);
        assert_eq!(opts.campaign.search_budget, 50);
        assert_eq!(opts.out, "out/redteam_results.json");
        assert_eq!(opts.campaign.workload, "libquantum_like");
    }

    #[test]
    fn rejects_unknown_trackers_and_workloads() {
        let err = parse_args(&argv("--trackers nonsense")).expect_err("unknown tracker");
        assert!(err.contains("unknown tracker 'nonsense'"), "{err}");
        assert!(err.contains("dapper-h"), "error must list known keys: {err}");
        assert!(parse_args(&argv("--workload nonsense")).is_err());
        assert!(parse_args(&argv("--help")).is_err());
    }

    #[test]
    fn rejects_typoed_flags_and_missing_values() {
        let err = parse_args(&argv("--buget 200")).expect_err("typo must not run with defaults");
        assert!(err.contains("--buget"), "{err}");
        let err = parse_args(&argv("--trackers")).expect_err("flag without value");
        assert!(err.contains("requires a value"), "{err}");
        let err = parse_args(&argv("--budget 5 extra")).expect_err("stray positional");
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn last_occurrence_of_a_repeated_flag_wins() {
        let opts = parse_args(&argv("--budget 5 --budget 9")).expect("parses");
        assert_eq!(opts.campaign.search_budget, 9);
    }

    #[test]
    fn attacker_axis_parses_levels_and_the_all_token() {
        let opts = parse_args(&argv("--attacker all")).expect("parses");
        assert_eq!(opts.attacker, AttackerKnowledge::ALL.to_vec());
        // Spelling-insensitive per-level names, deduplicated in order.
        let opts = parse_args(&argv("--attacker timing_recon,BLIND,timing-recon")).expect("parses");
        assert_eq!(opts.attacker, vec![AttackerKnowledge::TimingRecon, AttackerKnowledge::Blind]);
        assert!(parse_args(&argv("--attacker nonsense")).is_err());
        assert!(parse_args(&argv("--attacker ,")).is_err(), "empty level list");
        // Absent flag: empty axis, the plain campaign path.
        assert!(parse_args(&[]).expect("defaults").attacker.is_empty());
    }

    #[test]
    fn defaults_cover_the_shared_structure_baselines() {
        let opts = parse_args(&[]).expect("defaults parse");
        assert_eq!(opts.campaign.trackers.len(), 6);
        // Aliases and variant spellings dedupe through the registry.
        let opts2 = parse_args(&argv("--trackers dapper,DAPPER_H,dapper-h")).expect("parses");
        assert_eq!(opts2.campaign.trackers.len(), 1);
        assert_eq!(opts2.campaign.trackers[0].key(), "dapper-h");
        assert_eq!(opts.campaign.window_us, 250.0);
        assert!(opts.csv.is_none());
    }
}
