//! Scenario specifications: the mutable genome of an attack.
//!
//! A [`ScenarioSpec`] is a small, plain-data parameter record that
//! deterministically expands into a [`PatternGen`](crate::pattern::PatternGen) composition. The
//! mutation operator perturbs one gene at a time (row-set size, bank
//! spread, burst length, decoy fraction, feint phases, pacing bubbles),
//! which is what [`crate::search`](mod@crate::search) hill-climbs over. Parameters are clamped
//! to the geometry at build time, so any mutant is buildable.

use crate::compat::attack_pattern;
use crate::json::Json;
use crate::pattern::{
    BoxPattern, Decoy, Feint, HammerRows, LineStream, RateLimit, RowSweep, SweepOrder,
    RESERVED_TOP_ROWS,
};
use sim_core::addr::Geometry;
use sim_core::rng::Xoshiro256;
use workloads::Attack;

/// The base shape of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// One of the paper's hand-written attacks, bit-exact (see
    /// [`crate::compat`]).
    Baseline(Attack),
    /// A fixed aggressor set: `per_bank` seed-drawn rows in each of `banks`
    /// banks, hammered round-robin (optionally split into interleaved
    /// lanes).
    Hammer {
        /// Banks carrying aggressors.
        banks: u32,
        /// Aggressor rows per bank.
        per_bank: u32,
    },
    /// A strided row sweep (the streaming family).
    Sweep {
        /// Banks swept.
        banks: u32,
        /// Row stride between consecutive passes.
        stride: u32,
        /// Rows per bank covered.
        span: u32,
    },
    /// A diagonal sweep: distinct row ID on every activation (the ABACuS
    /// spillover family).
    Diagonal {
        /// Banks swept.
        banks: u32,
        /// Rows per bank covered.
        span: u32,
    },
    /// Cache-line streaming through the LLC (cache pressure, not RowHammer).
    Thrash {
        /// Footprint in MiB.
        mib: u32,
        /// Compute bubbles between accesses.
        bubbles: u32,
    },
}

/// A complete, buildable attack scenario (the search genome).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Base shape.
    pub shape: Shape,
    /// For [`Shape::Hammer`]: number of interleaved aggressor lanes.
    pub lanes: u32,
    /// Accesses per lane before rotating (1 = pure interleave).
    pub burst: u32,
    /// Percentage of accesses replaced by random-row decoys.
    pub decoy_pct: u8,
    /// Optional feint phases: (attack accesses, cover accesses).
    pub feint: Option<(u32, u32)>,
    /// Compute bubbles inserted before every access (rate limiting).
    pub bubbles: u32,
    /// Extra salt folded into the experiment seed, so otherwise-identical
    /// specs can draw different aggressor sets.
    pub seed_salt: u64,
}

impl ScenarioSpec {
    /// Wraps one of the paper's fixed attacks, unmodified.
    pub fn baseline(attack: Attack) -> Self {
        Self {
            shape: Shape::Baseline(attack),
            lanes: 1,
            burst: 1,
            decoy_pct: 0,
            feint: None,
            bubbles: 0,
            seed_salt: 0,
        }
    }

    /// A random scenario drawn from the full genome space.
    pub fn random(rng: &mut Xoshiro256) -> Self {
        let shape = match rng.gen_range(4) {
            0 => Shape::Hammer {
                banks: 1 << rng.gen_range(6),    // 1..=32
                per_bank: 1 << rng.gen_range(8), // 1..=128
            },
            1 => Shape::Sweep {
                banks: 1 << rng.gen_range(6),
                stride: 1 << rng.gen_range(10),     // 1..=512
                span: 1 << (6 + rng.gen_range(11)), // 64..=64K (clamped)
            },
            2 => {
                Shape::Diagonal { banks: 1 << rng.gen_range(6), span: 1 << (6 + rng.gen_range(11)) }
            }
            _ => {
                Shape::Thrash { mib: 1 << (2 + rng.gen_range(6)), bubbles: rng.gen_range(8) as u32 }
            }
        };
        let mut spec = Self::baseline(Attack::CacheThrash);
        spec.shape = shape;
        spec.lanes = 1 << rng.gen_range(3); // 1, 2, or 4
        spec.burst = 1 << rng.gen_range(7); // 1..=64
        spec.decoy_pct = (rng.gen_range(4) * 10) as u8; // 0, 10, 20, 30
        spec.feint = if rng.gen_bool(0.25) {
            Some((1 << (4 + rng.gen_range(6)), 1 << (3 + rng.gen_range(5))))
        } else {
            None
        };
        spec.bubbles = [0, 0, 1, 2, 4, 8][rng.gen_range(6) as usize];
        spec.seed_salt = rng.next_u64();
        spec
    }

    /// Whether the attacker's accesses skip the LLC (mirrors
    /// [`Attack::bypasses_llc`]: everything except cache thrashing does).
    pub fn bypasses_llc(&self) -> bool {
        match self.shape {
            Shape::Baseline(a) => a.bypasses_llc(),
            Shape::Thrash { .. } => false,
            _ => true,
        }
    }

    /// Expands the spec into a pattern for one system instance. All
    /// parameters are clamped to `geom`, so every spec builds.
    pub fn build(&self, geom: Geometry, seed: u64) -> BoxPattern {
        let seed = seed ^ self.seed_salt;
        let max_span = geom.rows_per_bank - RESERVED_TOP_ROWS;
        let max_banks = geom.banks_per_rank();
        let mut p: BoxPattern = match self.shape {
            Shape::Baseline(a) => attack_pattern(a, geom, seed),
            Shape::Hammer { banks, per_bank } => {
                let banks = banks.clamp(1, max_banks);
                let per_bank = per_bank.clamp(1, 1024);
                let lanes = self.lanes.clamp(1, 8).min(per_bank);
                if lanes > 1 {
                    let children: Vec<BoxPattern> = (0..lanes)
                        .map(|lane| {
                            Box::new(HammerRows::random_set(
                                geom,
                                banks,
                                (per_bank / lanes).max(1),
                                seed ^ (lane as u64) << 32,
                            )) as BoxPattern
                        })
                        .collect();
                    Box::new(crate::pattern::Burst::new(children, self.burst.clamp(1, 4096)))
                } else {
                    Box::new(HammerRows::random_set(geom, banks, per_bank, seed))
                }
            }
            Shape::Sweep { banks, stride, span } => {
                let span = span.clamp(1, max_span);
                Box::new(RowSweep::new(
                    geom,
                    0,
                    banks.clamp(1, max_banks),
                    span,
                    SweepOrder::LineStride(stride.clamp(1, span)),
                ))
            }
            Shape::Diagonal { banks, span } => Box::new(RowSweep::new(
                geom,
                0,
                banks.clamp(1, max_banks),
                span.clamp(1, max_span),
                SweepOrder::Diagonal,
            )),
            Shape::Thrash { mib, bubbles } => {
                Box::new(LineStream::new((mib.clamp(1, 4096) as u64) << 14, bubbles))
            }
        };
        if self.decoy_pct > 0 {
            p = Box::new(Decoy::new(p, self.decoy_pct.min(100), geom, seed));
        }
        if let Some((on, off)) = self.feint {
            let cover: BoxPattern = Box::new(LineStream::new(1 << 14, 0));
            p = Box::new(Feint::new(p, cover, on.max(1), off.max(1)));
        }
        if self.bubbles > 0 {
            p = Box::new(RateLimit::new(p, self.bubbles));
        }
        p
    }

    /// Compact, stable identifier (used as the attack display name).
    pub fn name(&self) -> String {
        let mut s = match self.shape {
            Shape::Baseline(a) => a.name().to_string(),
            Shape::Hammer { banks, per_bank } => format!("hammer{banks}x{per_bank}"),
            Shape::Sweep { banks, stride, span } => format!("sweep{banks}b-s{stride}-n{span}"),
            Shape::Diagonal { banks, span } => format!("diag{banks}b-n{span}"),
            Shape::Thrash { mib, bubbles } => format!("thrash{mib}m-b{bubbles}"),
        };
        if self.lanes > 1 && matches!(self.shape, Shape::Hammer { .. }) {
            s.push_str(&format!("+l{}x{}", self.lanes, self.burst));
        }
        if self.decoy_pct > 0 {
            s.push_str(&format!("+d{}", self.decoy_pct));
        }
        if let Some((on, off)) = self.feint {
            s.push_str(&format!("+f{on}/{off}"));
        }
        if self.bubbles > 0 {
            s.push_str(&format!("+r{}", self.bubbles));
        }
        if self.seed_salt != 0 {
            s.push_str(&format!("+s{:x}", self.seed_salt & 0xFFFF));
        }
        s
    }

    /// Produces a neighbour in genome space: one gene nudged.
    pub fn mutate(&self, rng: &mut Xoshiro256) -> ScenarioSpec {
        let mut next = self.clone();
        // A Baseline shape first "opens up" into its parametric equivalent
        // family so its parameters become mutable.
        if let Shape::Baseline(a) = next.shape {
            next.shape = match a {
                Attack::CacheThrash => Shape::Thrash { mib: 64, bubbles: 6 },
                Attack::HydraRccThrash => Shape::Hammer { banks: 32, per_bank: 512 },
                Attack::CometRatOverflow => Shape::Hammer { banks: 32, per_bank: 6 },
                Attack::RefreshAttack => Shape::Hammer { banks: 32, per_bank: 2 },
                Attack::StartStream | Attack::Streaming => {
                    Shape::Sweep { banks: 32, stride: 64, span: 65472 }
                }
                Attack::AbacusSpillover => Shape::Diagonal { banks: 32, span: 65472 },
            };
            return next;
        }
        let scale = |v: u32, rng: &mut Xoshiro256| -> u32 {
            if rng.gen_bool(0.5) {
                v.saturating_mul(2)
            } else {
                (v / 2).max(1)
            }
        };
        match rng.gen_range(7) {
            0 => {
                // Perturb a shape parameter.
                next.shape = match next.shape {
                    Shape::Hammer { banks, per_bank } => {
                        if rng.gen_bool(0.5) {
                            Shape::Hammer { banks: scale(banks, rng), per_bank }
                        } else {
                            Shape::Hammer { banks, per_bank: scale(per_bank, rng) }
                        }
                    }
                    Shape::Sweep { banks, stride, span } => match rng.gen_range(3) {
                        0 => Shape::Sweep { banks: scale(banks, rng), stride, span },
                        1 => Shape::Sweep { banks, stride: scale(stride, rng), span },
                        _ => Shape::Sweep { banks, stride, span: scale(span, rng) },
                    },
                    Shape::Diagonal { banks, span } => {
                        if rng.gen_bool(0.5) {
                            Shape::Diagonal { banks: scale(banks, rng), span }
                        } else {
                            Shape::Diagonal { banks, span: scale(span, rng) }
                        }
                    }
                    Shape::Thrash { mib, bubbles } => {
                        if rng.gen_bool(0.5) {
                            Shape::Thrash { mib: scale(mib, rng), bubbles }
                        } else {
                            Shape::Thrash { mib, bubbles: rng.gen_range(9) as u32 }
                        }
                    }
                    s @ Shape::Baseline(_) => s,
                };
            }
            1 => next.lanes = [1, 2, 4, 8][rng.gen_range(4) as usize],
            2 => next.burst = scale(next.burst, rng).min(4096),
            3 => {
                next.decoy_pct = (next.decoy_pct as i32 + [-10, 10][rng.gen_range(2) as usize])
                    .clamp(0, 50) as u8
            }
            4 => {
                next.feint = match next.feint {
                    None => Some((1 << (4 + rng.gen_range(6)), 1 << (3 + rng.gen_range(5)))),
                    Some(_) if rng.gen_bool(0.3) => None,
                    Some((on, off)) => {
                        if rng.gen_bool(0.5) {
                            Some((scale(on, rng).min(1 << 20), off))
                        } else {
                            Some((on, scale(off, rng).min(1 << 20)))
                        }
                    }
                };
            }
            5 => next.bubbles = [0, 0, 1, 2, 4, 8, 16][rng.gen_range(7) as usize],
            _ => next.seed_salt = rng.next_u64(),
        }
        next
    }

    /// Serializes the genome as JSON (for reports; readable and diffable).
    pub fn to_json(&self) -> Json {
        let shape = match self.shape {
            Shape::Baseline(a) => {
                Json::obj([("kind", Json::str("baseline")), ("attack", Json::str(a.name()))])
            }
            Shape::Hammer { banks, per_bank } => Json::obj([
                ("kind", Json::str("hammer")),
                ("banks", Json::count(banks as u64)),
                ("per_bank", Json::count(per_bank as u64)),
            ]),
            Shape::Sweep { banks, stride, span } => Json::obj([
                ("kind", Json::str("sweep")),
                ("banks", Json::count(banks as u64)),
                ("stride", Json::count(stride as u64)),
                ("span", Json::count(span as u64)),
            ]),
            Shape::Diagonal { banks, span } => Json::obj([
                ("kind", Json::str("diagonal")),
                ("banks", Json::count(banks as u64)),
                ("span", Json::count(span as u64)),
            ]),
            Shape::Thrash { mib, bubbles } => Json::obj([
                ("kind", Json::str("thrash")),
                ("mib", Json::count(mib as u64)),
                ("bubbles", Json::count(bubbles as u64)),
            ]),
        };
        Json::obj([
            ("name", Json::str(self.name())),
            ("shape", shape),
            ("lanes", Json::count(self.lanes as u64)),
            ("burst", Json::count(self.burst as u64)),
            ("decoy_pct", Json::count(self.decoy_pct as u64)),
            (
                "feint",
                match self.feint {
                    None => Json::Null,
                    Some((on, off)) => {
                        Json::Arr(vec![Json::count(on as u64), Json::count(off as u64)])
                    }
                },
            ),
            ("bubbles", Json::count(self.bubbles as u64)),
            ("seed_salt", Json::hex(self.seed_salt)),
        ])
    }

    /// Parses a genome back from its [`Self::to_json`] document, so heatmaps
    /// and reports can round-trip probe genomes across processes.
    ///
    /// Returns a descriptive error naming the offending field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        fn u32_field(j: &Json, key: &str) -> Result<u32, String> {
            match j.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                    Ok(*n as u32)
                }
                _ => Err(format!("scenario: `{key}` must be a non-negative integer")),
            }
        }
        fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
            match j.get(key) {
                Some(Json::Str(s)) => Ok(s),
                _ => Err(format!("scenario: `{key}` must be a string")),
            }
        }
        let shape_j =
            j.get("shape").ok_or_else(|| "scenario: missing `shape` object".to_string())?;
        let shape = match str_field(shape_j, "kind")? {
            "baseline" => {
                let name = str_field(shape_j, "attack")?;
                let attack = Attack::all()
                    .into_iter()
                    .find(|a| a.name() == name)
                    .ok_or_else(|| format!("scenario: unknown baseline attack `{name}`"))?;
                Shape::Baseline(attack)
            }
            "hammer" => Shape::Hammer {
                banks: u32_field(shape_j, "banks")?,
                per_bank: u32_field(shape_j, "per_bank")?,
            },
            "sweep" => Shape::Sweep {
                banks: u32_field(shape_j, "banks")?,
                stride: u32_field(shape_j, "stride")?,
                span: u32_field(shape_j, "span")?,
            },
            "diagonal" => Shape::Diagonal {
                banks: u32_field(shape_j, "banks")?,
                span: u32_field(shape_j, "span")?,
            },
            "thrash" => Shape::Thrash {
                mib: u32_field(shape_j, "mib")?,
                bubbles: u32_field(shape_j, "bubbles")?,
            },
            k => return Err(format!("scenario: unknown shape kind `{k}`")),
        };
        let feint = match j.get("feint") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(pair)) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                (Json::Num(on), Json::Num(off))
                    if *on >= 0.0 && *off >= 0.0 && on.fract() == 0.0 && off.fract() == 0.0 =>
                {
                    Some((*on as u32, *off as u32))
                }
                _ => return Err("scenario: `feint` entries must be integers".to_string()),
            },
            _ => return Err("scenario: `feint` must be null or [on, off]".to_string()),
        };
        let seed_salt = match j.get("seed_salt") {
            Some(Json::Str(s)) => {
                let digits = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(digits, 16)
                    .map_err(|_| format!("scenario: bad `seed_salt` hex `{s}`"))?
            }
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            None => 0,
            _ => return Err("scenario: `seed_salt` must be a hex string".to_string()),
        };
        let decoy = u32_field(j, "decoy_pct")?;
        if decoy > 100 {
            return Err("scenario: `decoy_pct` must be <= 100".to_string());
        }
        Ok(Self {
            shape,
            lanes: u32_field(j, "lanes")?,
            burst: u32_field(j, "burst")?,
            decoy_pct: decoy as u8,
            feint,
            bubbles: u32_field(j, "bubbles")?,
            seed_salt,
        })
    }
}

impl std::fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::paper_baseline()
    }

    #[test]
    fn baseline_specs_build_the_paper_attacks() {
        for a in Attack::all() {
            let spec = ScenarioSpec::baseline(a);
            let mut p = spec.build(geom(), 7);
            let mut t = a.trace(geom(), 7);
            use cpu::TraceSource;
            for _ in 0..2000 {
                assert_eq!(p.next_access(), t.next_entry(), "{a}");
            }
        }
    }

    #[test]
    fn every_mutant_builds_and_replays_deterministically() {
        let mut rng = Xoshiro256::seed_from(0xA11A);
        let mut spec = ScenarioSpec::baseline(Attack::RefreshAttack);
        for gen_idx in 0..200 {
            spec = spec.mutate(&mut rng);
            let mut a = spec.build(geom(), 3);
            let mut b = spec.build(geom(), 3);
            for _ in 0..200 {
                assert_eq!(a.next_access(), b.next_access(), "gen {gen_idx}: {spec}");
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_rng_seed() {
        let walk = |seed: u64| -> Vec<String> {
            let mut rng = Xoshiro256::seed_from(seed);
            let mut spec = ScenarioSpec::baseline(Attack::StartStream);
            (0..50)
                .map(|_| {
                    spec = spec.mutate(&mut rng);
                    spec.name()
                })
                .collect()
        };
        assert_eq!(walk(5), walk(5));
        assert_ne!(walk(5), walk(6), "different seeds must explore differently");
    }

    #[test]
    fn names_distinguish_genomes() {
        let a = ScenarioSpec::baseline(Attack::Streaming);
        let mut b = a.clone();
        b.decoy_pct = 20;
        b.bubbles = 4;
        assert_ne!(a.name(), b.name());
        assert_eq!(b.name(), "streaming+d20+r4");
    }

    #[test]
    fn only_thrash_shapes_keep_the_llc() {
        assert!(!ScenarioSpec::baseline(Attack::CacheThrash).bypasses_llc());
        let mut s = ScenarioSpec::baseline(Attack::Streaming);
        assert!(s.bypasses_llc());
        s.shape = Shape::Thrash { mib: 32, bubbles: 0 };
        assert!(!s.bypasses_llc());
        s.shape = Shape::Hammer { banks: 4, per_bank: 8 };
        assert!(s.bypasses_llc());
    }

    #[test]
    fn json_round_trips_every_genome() {
        let mut rng = Xoshiro256::seed_from(0x10DE);
        let mut spec = ScenarioSpec::baseline(Attack::CacheThrash);
        for _ in 0..100 {
            let back = ScenarioSpec::from_json(&spec.to_json()).expect("round-trip");
            assert_eq!(back, spec, "{spec}");
            spec = if rng.gen_bool(0.3) {
                ScenarioSpec::random(&mut rng)
            } else {
                spec.mutate(&mut rng)
            };
        }
        for a in Attack::all() {
            let spec = ScenarioSpec::baseline(a);
            assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let good = ScenarioSpec::baseline(Attack::Streaming).to_json().render();
        let mut j = Json::parse(&good).unwrap();
        assert!(ScenarioSpec::from_json(&j).is_ok());
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "shape");
        }
        assert!(ScenarioSpec::from_json(&j).unwrap_err().contains("shape"));
        let bad = Json::parse(r#"{"shape":{"kind":"warp"},"lanes":1,"burst":1,"decoy_pct":0,"feint":null,"bubbles":0,"seed_salt":"0x0"}"#).unwrap();
        assert!(ScenarioSpec::from_json(&bad).unwrap_err().contains("warp"));
    }

    #[test]
    fn random_specs_build() {
        let mut rng = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            let spec = ScenarioSpec::random(&mut rng);
            let mut p = spec.build(geom(), 1);
            for _ in 0..50 {
                let _ = p.next_access();
            }
        }
    }
}
