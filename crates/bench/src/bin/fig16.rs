//! Figure 16: PARA and PrIDE vs DAPPER-H under Perf-Attacks as N_RH varies.
//! The adversary runs the refresh attack (the strongest mapping-agnostic
//! pattern for all three defenses).

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use sim_core::config::MitigationKind;
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 16", "probabilistic mitigations under Perf-Attacks", &opts);
    let workload_set = opts.workloads();

    let variants: [(&str, &str, MitigationKind); 6] = [
        ("PARA", "para", MitigationKind::Vrr),
        ("PARA-DRFMsb", "para", MitigationKind::DrfmSb),
        ("PrIDE", "pride", MitigationKind::Vrr),
        ("PrIDE-RFMsb", "pride", MitigationKind::RfmSb),
        ("DAPPER-H", "dapper-h", MitigationKind::Vrr),
        ("DAPPER-H-DRFMsb", "dapper-h", MitigationKind::DrfmSb),
    ];
    print!("{:<8}", "N_RH");
    for (name, _, _) in &variants {
        print!(" {name:>16}");
    }
    println!();
    for nrh in opts.nrh_sweep() {
        print!("{nrh:<8}");
        for (_, t, kind) in variants {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(
                        Experiment::new(w.name)
                            .tracker(t)
                            .mitigation(kind)
                            .attack(AttackChoice::Specific(Attack::RefreshAttack))
                            .isolating(),
                    )
                    .nrh(nrh)
                })
                .collect();
            let r = run_all(jobs);
            print!(" {:>16.4}", mean_norm(&r.iter().collect::<Vec<_>>()));
        }
        println!();
    }
    println!("\npaper @125: DAPPER-H 6%, PARA 14.6%, PrIDE 22.8%");
}
