//! Table III: storage overhead per 32 GB DDR5 channel.

use analysis::storage::storage_table;

fn main() {
    println!("==== Table III: storage overhead per 32 GB DDR5 memory ====\n");
    println!("{:<14} {:>10} {:>10} {:>18}", "tracker", "SRAM (KB)", "CAM (KB)", "die area (mm^2)");
    for row in storage_table(500) {
        let marker = if row.in_paper_table { "" } else { " (not in paper table)" };
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>18.3}{marker}",
            row.name,
            row.overhead.sram_kb(),
            row.overhead.cam_kb(),
            row.overhead.die_area_mm2(),
        );
    }
    println!("\npaper: Hydra 56.5 | CoMeT 112+23 | START 4 | ABACUS 19.3+7.5 | DAPPER-H 96");
}
