//! Quick calibration: prints normalized performance for the key
//! tracker/attack combinations so model constants can be sanity-checked
//! against the paper's headline numbers.

use sim::experiment::{AttackChoice, Experiment};
use std::time::Instant;
use workloads::Attack;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let window_us: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000.0);
    let wl = args.get(2).map(|s| s.as_str()).unwrap_or("milc_like").to_string();
    println!("workload={wl} window={window_us}us  (paper targets in parens)");

    let base = |t: &str| Experiment::new(&wl).tracker(t).window_us(window_us);

    let cases: Vec<(&str, Experiment, &str)> = vec![
        ("Hydra   benign        ", base("hydra"), "(~1.0)"),
        ("Hydra   tailored      ", base("hydra").attack(AttackChoice::Tailored), "(~0.39)"),
        ("Hydra   cache-thrash  ", base("hydra").attack(AttackChoice::CacheThrash), "(~0.6)"),
        ("START   tailored      ", base("start").attack(AttackChoice::Tailored), "(~0.35)"),
        ("CoMeT   tailored      ", base("comet").attack(AttackChoice::Tailored), "(~0.10)"),
        ("ABACUS  tailored      ", base("abacus").attack(AttackChoice::Tailored), "(~0.28)"),
        ("DAPPER-S benign       ", base("dapper-s"), "(~1.0)"),
        (
            "DAPPER-S streaming    ",
            base("dapper-s").attack(AttackChoice::Specific(Attack::Streaming)).isolating(),
            "(~0.87)",
        ),
        (
            "DAPPER-S refresh      ",
            base("dapper-s").attack(AttackChoice::Specific(Attack::RefreshAttack)).isolating(),
            "(~0.80)",
        ),
        ("DAPPER-H benign       ", base("dapper-h"), "(~0.999)"),
        (
            "DAPPER-H streaming    ",
            base("dapper-h").attack(AttackChoice::Specific(Attack::Streaming)).isolating(),
            "(~0.998)",
        ),
        (
            "DAPPER-H refresh      ",
            base("dapper-h").attack(AttackChoice::Specific(Attack::RefreshAttack)).isolating(),
            "(~0.99)",
        ),
        ("BlockHammer benign    ", base("blockhammer"), "(~0.75)"),
        ("PARA    benign        ", base("para"), "(~0.97)"),
        ("PrIDE   benign        ", base("pride"), "(~0.93)"),
        ("PRAC    benign        ", base("prac"), "(~0.93)"),
    ];

    for (name, e, target) in cases {
        let t0 = Instant::now();
        let r = e.run();
        println!(
            "{name} {:6.3} {target:8}  [{:4.1}s, acts={}, vrr={}, sweeps={}, ctr_rw={}]",
            r.normalized_performance,
            t0.elapsed().as_secs_f32(),
            r.run.mem.activations,
            r.run.mem.vrr_commands,
            r.run.mem.reset_sweeps,
            r.run.mem.counter_reads + r.run.mem.counter_writes,
        );
    }
}
