//! Quick calibration: prints normalized performance for the key
//! tracker/attack combinations so model constants can be sanity-checked
//! against the paper's headline numbers.

use sim::experiment::{AttackChoice, Experiment, TrackerChoice};
use std::time::Instant;
use workloads::Attack;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let window_us: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000.0);
    let wl = args.get(2).map(|s| s.as_str()).unwrap_or("milc_like").to_string();
    println!("workload={wl} window={window_us}us  (paper targets in parens)");

    let base = |t: TrackerChoice| Experiment::new(&wl).tracker(t).window_us(window_us);

    let cases: Vec<(&str, Experiment, &str)> = vec![
        ("Hydra   benign        ", base(TrackerChoice::Hydra), "(~1.0)"),
        (
            "Hydra   tailored      ",
            base(TrackerChoice::Hydra).attack(AttackChoice::Tailored),
            "(~0.39)",
        ),
        (
            "Hydra   cache-thrash  ",
            base(TrackerChoice::Hydra).attack(AttackChoice::CacheThrash),
            "(~0.6)",
        ),
        (
            "START   tailored      ",
            base(TrackerChoice::Start).attack(AttackChoice::Tailored),
            "(~0.35)",
        ),
        (
            "CoMeT   tailored      ",
            base(TrackerChoice::Comet).attack(AttackChoice::Tailored),
            "(~0.10)",
        ),
        (
            "ABACUS  tailored      ",
            base(TrackerChoice::Abacus).attack(AttackChoice::Tailored),
            "(~0.28)",
        ),
        ("DAPPER-S benign       ", base(TrackerChoice::DapperS), "(~1.0)"),
        (
            "DAPPER-S streaming    ",
            base(TrackerChoice::DapperS)
                .attack(AttackChoice::Specific(Attack::Streaming))
                .isolating(),
            "(~0.87)",
        ),
        (
            "DAPPER-S refresh      ",
            base(TrackerChoice::DapperS)
                .attack(AttackChoice::Specific(Attack::RefreshAttack))
                .isolating(),
            "(~0.80)",
        ),
        ("DAPPER-H benign       ", base(TrackerChoice::DapperH), "(~0.999)"),
        (
            "DAPPER-H streaming    ",
            base(TrackerChoice::DapperH)
                .attack(AttackChoice::Specific(Attack::Streaming))
                .isolating(),
            "(~0.998)",
        ),
        (
            "DAPPER-H refresh      ",
            base(TrackerChoice::DapperH)
                .attack(AttackChoice::Specific(Attack::RefreshAttack))
                .isolating(),
            "(~0.99)",
        ),
        ("BlockHammer benign    ", base(TrackerChoice::BlockHammer), "(~0.75)"),
        ("PARA    benign        ", base(TrackerChoice::Para), "(~0.97)"),
        ("PrIDE   benign        ", base(TrackerChoice::Pride), "(~0.93)"),
        ("PRAC    benign        ", base(TrackerChoice::Prac), "(~0.93)"),
    ];

    for (name, e, target) in cases {
        let t0 = Instant::now();
        let r = e.run();
        println!(
            "{name} {:6.3} {target:8}  [{:4.1}s, acts={}, vrr={}, sweeps={}, ctr_rw={}]",
            r.normalized_performance,
            t0.elapsed().as_secs_f32(),
            r.run.mem.activations,
            r.run.mem.vrr_commands,
            r.run.mem.reset_sweeps,
            r.run.mem.counter_reads + r.run.mem.counter_writes,
        );
    }
}
