//! Figure 1: normalized performance of the four scalable trackers under
//! cache-thrashing and tailored RH-Tracker Perf-Attacks at N_RH = 500,
//! grouped by benchmark suite.

use bench::{header, print_suite_table, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 1", "scalable trackers under Perf-Attacks (per suite)", &opts);
    let workload_set = opts.workloads();

    let mut series = Vec::new();
    // Cache thrashing is tracker-independent in the paper's plot; measure
    // it on the insecure baseline.
    let thrash: Vec<Experiment> = workload_set
        .iter()
        .map(|w| {
            opts.apply(Experiment::new(w.name).tracker("none").attack(AttackChoice::CacheThrash))
        })
        .collect();
    series.push(("CacheThrash".to_string(), run_all(thrash)));

    for t in sim::registry::SCALABLE_BASELINES {
        let jobs: Vec<Experiment> = workload_set
            .iter()
            .map(|w| opts.apply(Experiment::new(w.name).tracker(t).attack(AttackChoice::Tailored)))
            .collect();
        series.push((
            sim::registry::resolve(t).expect("baseline key").display_name().to_string(),
            run_all(jobs),
        ));
    }

    let labeled: Vec<(&str, _)> = series.iter().map(|(l, r)| (l.as_str(), r.clone())).collect();
    print_suite_table(&labeled, &workload_set);
    println!("\npaper: tailored attacks cost 60-90% vs ~40% for cache thrashing");
}
