//! Table II: vulnerability of DAPPER-S to Mapping-Capturing attacks, from
//! the analytical model (Equations 1-5) at DDR5-6400 timing.

use analysis::equations::{dapper_s_capture, table_two};

fn main() {
    println!("==== Table II: DAPPER-S Mapping-Capturing analysis ====");
    println!("(Eqs. 1-5; tRC=48ns, tRRD_S=2.5ns, N_M=250, 8K row groups)\n");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "t_reset", "t_left", "ACT_MAX", "P_success", "AT_iter", "AT_time"
    );
    for r in table_two() {
        println!(
            "{:>10.0}us {:>10.2}us {:>12.1} {:>14.6} {:>14.1} {}",
            r.t_reset_ns / 1000.0,
            r.t_left_ns / 1000.0,
            r.act_max,
            r.p_success,
            r.at_iter,
            fmt_time(r.at_time_ns),
        );
    }
    println!("\npaper (same formulas, slightly different ACT spacing):");
    println!("  36us -> 1.8 iterations (64us); 24us -> 3 (71us); 12us -> 630.6 (7.6ms)");
    println!("shape check: even a 12us reset is captured within milliseconds:");
    let r = dapper_s_capture(12_000.0, 48.0, 2.5, 250, 8192);
    println!("  ours: {:.1} iterations -> {}", r.at_iter, fmt_time(r.at_time_ns));
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1.0e6 {
        format!("{:>11.2}ms", ns / 1.0e6)
    } else {
        format!("{:>11.2}us", ns / 1.0e3)
    }
}
