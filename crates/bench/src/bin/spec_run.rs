//! `spec_run` — run (or just validate) declarative experiment specs.
//!
//! ```text
//! cargo run --release --bin spec_run -- examples/specs/fig09_quick.toml
//! cargo run --release --bin spec_run -- --validate examples/specs/*.toml
//! ```
//!
//! Each spec file is a TOML [`sim::SweepSpec`] (see `examples/specs/` for
//! commented examples): it names trackers by registry key with per-tracker
//! parameter overrides, expands into the workload × tracker × attack cross
//! product, runs the cells in parallel, and writes the results as JSON
//! under `out/` (or `--out DIR`).
//!
//! `--validate` parses and expands every spec — registry keys, parameter
//! schemas, workload and attack names all checked — without running any
//! simulation; CI uses it to keep the example specs honest.
//!
//! With `--cache-dir DIR` (or a `[cache]` section in the spec), cells are
//! read through the content-addressed run cache: a warm re-run of an
//! unchanged spec performs zero simulations and reproduces the cold
//! run's report byte-identically, and an edited spec re-runs only the
//! changed frontier.
//!
//! Specs with an `[attacker]` section run the attackpipe recon → hammer
//! → victim pipeline instead of the plain sweep, caching per-cell
//! verdicts under the same directory. Specs with a `[profile]` section
//! run the profiler's profile → evaluate → attack workflow per tracker ×
//! workload cell, writing heatmap/report/attack artifacts to the output
//! directory.

use sim::cache::RunCache;
use sim::journal::SweepJournal;
use sim::runner::{RetryPolicy, RunnerConfig};
use sim::spec::{result_to_json, SweepSpec};

const USAGE: &str = "spec_run — declarative experiment sweeps

USAGE: spec_run [--validate] [--out DIR] [--cache-dir DIR | --no-cache] SPEC.toml [...]

  --validate       parse + expand every spec (no simulation)
  --out DIR        output directory for <spec-name>.json results (default out/)
  --cache-dir DIR  read/write the content-addressed run cache in DIR
                   (overrides any [cache] section in the specs)
  --no-cache       ignore [cache] sections; always simulate
  --resume         journal completed cells in the cache dir and, on a
                   re-run after an interruption, re-execute only the
                   unfinished remainder (requires a cache dir)
  --retries N      attempt each cell up to N times with exponential
                   backoff before quarantining it (default 1)
";

fn run() -> Result<i32, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(USAGE.to_string());
    }
    let mut validate = false;
    let mut out_dir = "out".to_string();
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut retries = 1u32;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--validate" => validate = true,
            "--resume" => resume = true,
            "--retries" => {
                retries = args
                    .get(i + 1)
                    .ok_or("--retries requires a value")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
                if retries == 0 {
                    return Err("--retries must be at least 1".to_string());
                }
                i += 1;
            }
            "--out" => {
                out_dir = args.get(i + 1).ok_or("--out requires a value")?.clone();
                i += 1;
            }
            "--cache-dir" => {
                cache_dir = Some(args.get(i + 1).ok_or("--cache-dir requires a value")?.clone());
                i += 1;
            }
            "--no-cache" => no_cache = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument '{flag}' (try --help)"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        return Err("no spec files given (try --help)".to_string());
    }
    if no_cache && cache_dir.is_some() {
        return Err("--no-cache and --cache-dir are mutually exclusive".to_string());
    }
    if resume && no_cache {
        return Err("--resume needs a cache dir (it journals completed cells there)".to_string());
    }

    let mut failed_cells = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let spec = SweepSpec::from_toml_str(&text).map_err(|e| format!("{file}: {e}"))?;
        let experiments = spec.expand().map_err(|e| format!("{file}: {e}"))?;
        println!(
            "{file}: spec '{}' expands to {} experiments ({} workloads x {} trackers x {} attacks)",
            spec.name,
            experiments.len(),
            sim::spec::expand_workloads(&spec.workloads).map(|w| w.len()).unwrap_or(0),
            spec.trackers.len(),
            spec.attacks.len(),
        );
        if validate {
            continue;
        }
        // CLI flag > spec [cache] section > no cache.
        let effective_cache_dir = match (&cache_dir, no_cache) {
            (Some(dir), _) => Some(dir.clone()),
            (None, true) => None,
            (None, false) => {
                spec.cache.as_ref().and_then(|c| c.effective_dir()).map(str::to_string)
            }
        };
        // Specs with a `[profile]` section route through the profiler's
        // campaign workflow: profile → evaluate → attack per tracker ×
        // workload cell, with its own artifact layout.
        if spec.profile.is_some() {
            let artifacts =
                profiler::spec::run_profile_spec(&spec, effective_cache_dir.as_deref(), &out_dir)
                    .map_err(|e| format!("{file}: {e}"))?;
            for path in &artifacts {
                println!("  artifact written to {path}");
            }
            continue;
        }
        // Specs with an `[attacker]` section route through the attackpipe
        // pipeline: their cells need recon, hammer compilation and victim
        // adjudication, which the plain sweep runner cannot provide.
        if spec.attacker.is_some() {
            let mut spec = spec.clone();
            if effective_cache_dir.is_none() {
                spec.cache = None; // honour --no-cache / an absent [cache]
            }
            let report = attackpipe::run_attacker_sweep(&spec, effective_cache_dir.as_deref())
                .map_err(|e| format!("{file}: {e}"))?;
            print!("{}", report.leaderboard_table());
            println!(
                "  attacker cache: {} hits, {} misses ({} cells)",
                report.hits, report.misses, report.cells
            );
            failed_cells += report.cells - report.verdicts.len();
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("cannot create {out_dir}: {e}"))?;
            let out_path = format!("{out_dir}/{}.json", report.name);
            std::fs::write(&out_path, report.to_json().render())
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            println!("  results written to {out_path}");
            continue;
        }
        let runner = RunnerConfig {
            retry: if retries > 1 {
                RetryPolicy::standard().attempts(retries)
            } else {
                RetryPolicy::none()
            },
            ..RunnerConfig::default()
        };
        let report = match &effective_cache_dir {
            Some(dir) => {
                let cache =
                    RunCache::open(dir).map_err(|e| format!("cannot open cache dir {dir}: {e}"))?;
                let journal = if resume {
                    Some(
                        SweepJournal::in_cache_dir(dir)
                            .map_err(|e| format!("cannot open journal in {dir}: {e}"))?,
                    )
                } else {
                    None
                };
                let (report, summary) = spec
                    .run_cached_with(&cache, journal.as_ref(), &runner)
                    .map_err(|e| format!("{file}: {e}"))?;
                println!("  cache: {summary} in {dir}");
                report
            }
            None if resume => {
                return Err(format!("{file}: --resume needs --cache-dir or a [cache] section"));
            }
            None => spec.run().map_err(|e| format!("{file}: {e}"))?,
        };
        for r in &report.results {
            println!(
                "  {:<22} {:<13} {:<14} {:.3}",
                r.workload, r.tracker_name, r.attack_name, r.normalized_performance
            );
        }
        for f in &report.failures {
            eprintln!(
                "  cell {} ({}) FAILED after {} attempt(s): {}",
                f.index, f.cell, f.attempts, f.message
            );
        }
        failed_cells += report.failures.len();
        std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
        let out_path = format!("{out_dir}/{}.json", report.name);
        std::fs::write(&out_path, report.to_json().render())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        println!("  results written to {out_path}");
        // Per-window telemetry (when the spec's `[telemetry]` section
        // attached recorders) lands in its own file beside the results.
        if let Some(telemetry) = report.telemetry_json() {
            let stem = spec
                .telemetry
                .as_ref()
                .and_then(|t| t.out.clone())
                .unwrap_or_else(|| report.name.clone());
            let t_path = format!("{out_dir}/{stem}_telemetry.json");
            std::fs::write(&t_path, telemetry.render())
                .map_err(|e| format!("cannot write {t_path}: {e}"))?;
            println!("  telemetry written to {t_path}");
        }
        // Sanity: the export is parseable JSON row-for-row.
        debug_assert!(report.results.iter().all(|r| !result_to_json(r).render().is_empty()));
    }
    if failed_cells > 0 {
        eprintln!("{failed_cells} cell(s) failed");
        return Ok(1);
    }
    Ok(0)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
