//! Figure 3: per-workload normalized performance of the four scalable
//! trackers under cache-thrashing and tailored Perf-Attacks (N_RH = 500).
//! Two panels: memory-intensive workloads (>= 2 RBMPKI) and all workloads.

use bench::{header, print_workload_table, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 3", "per-workload impact of Perf-Attacks", &opts);
    let workload_set = opts.workloads();

    let mut series: Vec<(String, Vec<_>)> = Vec::new();
    let thrash: Vec<Experiment> = workload_set
        .iter()
        .map(|w| {
            opts.apply(Experiment::new(w.name).tracker("none").attack(AttackChoice::CacheThrash))
        })
        .collect();
    series.push(("thrash".to_string(), run_all(thrash)));
    for t in sim::registry::SCALABLE_BASELINES {
        let jobs: Vec<Experiment> = workload_set
            .iter()
            .map(|w| opts.apply(Experiment::new(w.name).tracker(t).attack(AttackChoice::Tailored)))
            .collect();
        series.push((
            sim::registry::resolve(t).expect("baseline key").display_name().to_string(),
            run_all(jobs),
        ));
    }
    let labeled: Vec<(&str, _)> = series.iter().map(|(l, r)| (l.as_str(), r.clone())).collect();

    println!("--- panel A: workloads with >= 2 row-buffer misses per kilo-instruction ---");
    print_workload_table(&labeled, &workload_set, true);
    println!("\n--- panel B: all workloads ---");
    print_workload_table(&labeled, &workload_set, false);
}
