//! Figure 13: blast radius (BR1 vs BR2) and DRFMsb, benign and under the
//! refresh attack, vs N_RH.

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use sim_core::config::MitigationKind;
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 13", "DAPPER-H: blast radius and DRFMsb", &opts);
    let workload_set = opts.workloads();

    let variants: [(&str, u8, MitigationKind); 3] = [
        ("BR1", 1, MitigationKind::Vrr),
        ("BR2", 2, MitigationKind::Vrr),
        ("DRFMsb", 2, MitigationKind::DrfmSb),
    ];
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "N_RH", "BR1", "BR2", "DRFMsb", "BR1-Refr", "BR2-Refr", "DRFMsb-Refr"
    );
    for nrh in opts.nrh_sweep() {
        let mut cols = Vec::new();
        for attack in [AttackChoice::None, AttackChoice::Specific(Attack::RefreshAttack)] {
            for (_, br, kind) in variants {
                let jobs: Vec<Experiment> = workload_set
                    .iter()
                    .map(|w| {
                        opts.apply(
                            Experiment::new(w.name)
                                .tracker("dapper-h")
                                .attack(attack)
                                .blast_radius(br)
                                .mitigation(kind)
                                .isolating(),
                        )
                        .nrh(nrh)
                    })
                    .collect();
                let r = run_all(jobs);
                cols.push(mean_norm(&r.iter().collect::<Vec<_>>()));
            }
        }
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>12.4}",
            nrh, cols[0], cols[1], cols[2], cols[3], cols[4], cols[5]
        );
    }
    println!("\npaper @N_RH=500 under refresh attack: BR1 ~1%, BR2 ~2%, DRFMsb ~8%");
}
