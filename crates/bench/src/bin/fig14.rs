//! Figure 14: BlockHammer vs DAPPER-H (and DAPPER-H-DRFMsb) on benign
//! applications as N_RH varies.

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::Experiment;
use sim_core::config::MitigationKind;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 14", "BlockHammer comparison (benign)", &opts);
    let workload_set = opts.workloads();

    println!("{:<8} {:>14} {:>10} {:>16}", "N_RH", "BlockHammer", "DAPPER-H", "DAPPER-H-DRFMsb");
    for nrh in opts.nrh_sweep() {
        let mk = |t: &str, kind: MitigationKind| -> f64 {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| opts.apply(Experiment::new(w.name).tracker(t).mitigation(kind)).nrh(nrh))
                .collect();
            let r = run_all(jobs);
            mean_norm(&r.iter().collect::<Vec<_>>())
        };
        println!(
            "{:<8} {:>14.3} {:>10.4} {:>16.4}",
            nrh,
            mk("blockhammer", MitigationKind::Vrr),
            mk("dapper-h", MitigationKind::Vrr),
            mk("dapper-h", MitigationKind::DrfmSb),
        );
    }
    println!("\npaper: BlockHammer 25% @500, 46.4% @250, 66% @125; DAPPER-H <1% @500");
}
