//! Figure 17: PRAC vs DAPPER-H, benign and under Perf-Attacks, vs N_RH.

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use sim_core::config::MitigationKind;
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 17", "PRAC comparison", &opts);
    let workload_set = opts.workloads();

    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>16} {:>14} {:>18}",
        "N_RH",
        "PRAC",
        "PRAC-Perf",
        "DAPPER-H",
        "DAPPER-H-DRFMsb",
        "DAPPER-H-Refr",
        "DAPPER-H-DRFM-Refr"
    );
    for nrh in opts.nrh_sweep() {
        let mk = |t: &str, kind: MitigationKind, attack: AttackChoice| -> f64 {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(
                        Experiment::new(w.name)
                            .tracker(t)
                            .mitigation(kind)
                            .attack(attack)
                            .isolating(),
                    )
                    .nrh(nrh)
                })
                .collect();
            let r = run_all(jobs);
            mean_norm(&r.iter().collect::<Vec<_>>())
        };
        let refresh = AttackChoice::Specific(Attack::RefreshAttack);
        println!(
            "{:<8} {:>8.4} {:>10.4} {:>10.4} {:>16.4} {:>14.4} {:>18.4}",
            nrh,
            mk("prac", MitigationKind::Vrr, AttackChoice::None),
            mk("prac", MitigationKind::Vrr, refresh),
            mk("dapper-h", MitigationKind::Vrr, AttackChoice::None),
            mk("dapper-h", MitigationKind::DrfmSb, AttackChoice::None),
            mk("dapper-h", MitigationKind::Vrr, refresh),
            mk("dapper-h", MitigationKind::DrfmSb, refresh),
        );
    }
    println!("\npaper: PRAC ~7% benign at every N_RH (up to 20%); DAPPER-H <4% benign");
}
