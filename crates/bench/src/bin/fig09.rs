//! Figure 9: performance impact of the two mapping-agnostic attacks
//! (streaming, refresh) on DAPPER-S, per suite (N_RH = 500).

use bench::{header, print_suite_table, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 9", "mapping-agnostic attacks on DAPPER-S", &opts);
    let workload_set = opts.workloads();

    let mut series = Vec::new();
    for (label, atk) in [("Streaming", Attack::Streaming), ("Refresh", Attack::RefreshAttack)] {
        let jobs: Vec<Experiment> = workload_set
            .iter()
            .map(|w| {
                opts.apply(
                    Experiment::new(w.name)
                        .tracker("dapper-s")
                        .attack(AttackChoice::Specific(atk))
                        .isolating(),
                )
            })
            .collect();
        series.push((label, run_all(jobs)));
    }
    print_suite_table(&series, &workload_set);
    println!("\n(figure reports overhead = 1 - normalized performance)");
    println!("paper: streaming ~13% overhead, refresh ~20% overhead");
}
