//! Figure 15: PARA and PrIDE vs DAPPER-H on benign applications as N_RH
//! varies, with per-bank (VRR) and same-bank (DRFMsb / RFMsb) mitigations.

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::Experiment;
use sim_core::config::MitigationKind;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 15", "probabilistic mitigations, benign", &opts);
    let workload_set = opts.workloads();

    let variants: [(&str, &str, MitigationKind); 6] = [
        ("PARA", "para", MitigationKind::Vrr),
        ("PARA-DRFMsb", "para", MitigationKind::DrfmSb),
        ("PrIDE", "pride", MitigationKind::Vrr),
        ("PrIDE-RFMsb", "pride", MitigationKind::RfmSb),
        ("DAPPER-H", "dapper-h", MitigationKind::Vrr),
        ("DAPPER-H-DRFMsb", "dapper-h", MitigationKind::DrfmSb),
    ];
    print!("{:<8}", "N_RH");
    for (name, _, _) in &variants {
        print!(" {name:>16}");
    }
    println!();
    for nrh in opts.nrh_sweep() {
        print!("{nrh:<8}");
        for (_, t, kind) in variants {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| opts.apply(Experiment::new(w.name).tracker(t).mitigation(kind)).nrh(nrh))
                .collect();
            let r = run_all(jobs);
            print!(" {:>16.4}", mean_norm(&r.iter().collect::<Vec<_>>()));
        }
        println!();
    }
    println!(
        "\npaper @500: PARA 3%, PrIDE 7%, PARA-DRFMsb 18.4%, PrIDE-RFMsb 11.5%, DAPPER-H <0.3%"
    );
}
