//! Machine-readable throughput snapshot: dense vs. event-driven engine.
//!
//! Writes `BENCH_system_throughput.json` (cycles simulated, wall time,
//! simulated-cycles-per-second, and the event/dense speedup per scenario)
//! so successive PRs accumulate a performance trajectory. CI runs this in
//! `--smoke` mode; locally, run without arguments for the full windows:
//!
//! ```text
//! cargo run --release --bin bench_snapshot [-- --smoke] [--out PATH]
//! ```
//!
//! The idle-heavy scenario (`povray_like`, ~0.4 LLC accesses per kilo-
//! instruction) is the headline: quiet bus stretches are exactly what the
//! time-skipping engine elides, and the acceptance bar is a >= 3x
//! wall-clock improvement there. Saturated scenarios are included to track
//! that the skip probing does not regress dense-bound workloads.

use sim::experiment::{AttackChoice, Experiment, TelemetrySpec};
use sim::{Engine, RunStats};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    build: fn(f64) -> Experiment,
    /// Window in microseconds (full mode); smoke mode quarters it.
    window_us: f64,
}

fn idle_povray(window_us: f64) -> Experiment {
    Experiment::new("povray_like").tracker("dapper-h").window_us(window_us)
}

fn idle_namd(window_us: f64) -> Experiment {
    Experiment::new("namd_like").tracker("none").window_us(window_us)
}

fn saturated_mcf(window_us: f64) -> Experiment {
    Experiment::new("mcf_like").tracker("dapper-h").window_us(window_us)
}

fn attacked_gcc(window_us: f64) -> Experiment {
    Experiment::new("gcc_like").tracker("hydra").attack(AttackChoice::Tailored).window_us(window_us)
}

const SCENARIOS: &[Scenario] = &[
    Scenario { name: "idle_povray_dapper_h", build: idle_povray, window_us: 2_000.0 },
    Scenario { name: "idle_namd_insecure", build: idle_namd, window_us: 2_000.0 },
    Scenario { name: "saturated_mcf_dapper_h", build: saturated_mcf, window_us: 500.0 },
    Scenario { name: "tailored_attack_gcc_hydra", build: attacked_gcc, window_us: 500.0 },
];

fn time_run(e: &Experiment, engine: Engine) -> (RunStats, f64) {
    let mut sys = e.build_system(false);
    let t = Instant::now();
    let stats = sys.run_engine(engine);
    (stats, t.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_system_throughput.json".to_string());

    let mut entries = Vec::new();
    let mut idle_speedup: f64 = 0.0;
    for sc in SCENARIOS {
        let window = if smoke { sc.window_us / 4.0 } else { sc.window_us };
        let e = (sc.build)(window);
        // Warm once (allocator, page faults), then measure each engine.
        let _ = time_run(&e, Engine::EventDriven);
        let (dense_stats, dense_s) = time_run(&e, Engine::Dense);
        let (event_stats, event_s) = time_run(&e, Engine::EventDriven);
        assert_eq!(dense_stats, event_stats, "{}: engines diverged", sc.name);
        let speedup = dense_s / event_s.max(1e-12);
        if sc.name.starts_with("idle_povray") {
            idle_speedup = speedup;
        }
        let cycles = dense_stats.cycles;
        println!(
            "{:<28} {:>11} cycles  dense {:>8.1} Mc/s  event {:>8.1} Mc/s  speedup {:>5.2}x",
            sc.name,
            cycles,
            cycles as f64 / dense_s / 1e6,
            cycles as f64 / event_s / 1e6,
            speedup
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"window_us\": {},\n",
                "      \"bus_cycles\": {},\n",
                "      \"dense_seconds\": {:.6},\n",
                "      \"event_seconds\": {:.6},\n",
                "      \"dense_mcycles_per_s\": {:.2},\n",
                "      \"event_mcycles_per_s\": {:.2},\n",
                "      \"event_speedup\": {:.3}\n",
                "    }}"
            ),
            sc.name,
            window,
            cycles,
            dense_s,
            event_s,
            cycles as f64 / dense_s / 1e6,
            cycles as f64 / event_s / 1e6,
            speedup
        ));
    }

    // Telemetry overhead: the same run with every built-in recorder
    // attached (20 windows) vs. probe-free, both on the event engine. The
    // probe API must stay observably free: results bit-identical, wall
    // clock within noise (the ratio is recorded so PRs that regress the
    // fast path show up in the trajectory).
    let (probe_off_s, probe_on_s, overhead) = {
        let window = if smoke { 500.0 } else { 2_000.0 };
        let plain = idle_povray(window);
        let probed =
            idle_povray(window).with_telemetry(TelemetrySpec::all_recorders(window / 20.0));
        let _ = time_run(&plain, Engine::EventDriven); // warm
        let (off_stats, off_s) = time_run(&plain, Engine::EventDriven);
        // `build_system` attaches the time-series + mitigation recorders;
        // the slowdown trace (normally attached by `run_against`) is added
        // by hand so every built-in recorder is live.
        let mut sys = probed.build_system(false);
        let cores = probed.cfg.cpu.cores as usize;
        sys.attach_probe(Box::new(sim_core::telemetry::SlowdownTrace::flat(
            vec![1.0; cores],
            (0..cores).collect(),
        )));
        let t0 = Instant::now();
        let on_stats = sys.run_engine(Engine::EventDriven);
        let on_s = t0.elapsed().as_secs_f64();
        assert_eq!(off_stats, on_stats, "recorders perturbed the run");
        let ratio = on_s / off_s.max(1e-12);
        println!(
            "telemetry overhead: probe-off {:.4}s  probe-on (all recorders) {:.4}s  ratio {:.3}x",
            off_s, on_s, ratio
        );
        (off_s, on_s, ratio)
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"system_throughput\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"engines\": [\"dense\", \"event_driven\"],\n",
            "  \"idle_povray_event_speedup\": {:.3},\n",
            "  \"telemetry\": {{\n",
            "    \"scenario\": \"idle_povray_dapper_h\",\n",
            "    \"recorders\": [\"time-series\", \"slowdown\", \"mitigation-log\"],\n",
            "    \"probe_off_seconds\": {:.6},\n",
            "    \"probe_on_seconds\": {:.6},\n",
            "    \"probe_overhead_ratio\": {:.4}\n",
            "  }},\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        idle_speedup,
        probe_off_s,
        probe_on_s,
        overhead,
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");
    if idle_speedup < 3.0 {
        // Smoke mode measures a single ~ms-scale sample on possibly noisy
        // shared runners; flag without failing there. Full mode is the
        // acceptance measurement and enforces the bar.
        let msg = format!("idle-heavy speedup {idle_speedup:.2}x below the 3x acceptance bar");
        assert!(smoke, "{msg}");
        eprintln!("warning: {msg} (smoke mode — not enforced)");
    }
}
