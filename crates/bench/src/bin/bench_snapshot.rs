//! Machine-readable throughput snapshot: dense vs. event-driven engine.
//!
//! Writes `BENCH_system_throughput.json` (cycles simulated, wall time,
//! simulated-cycles-per-second, the event/dense speedup, the deterministic
//! dense-step fraction, and the hot-path speedup against the recorded
//! pre-indexed-scheduler baseline) so successive PRs accumulate a
//! performance trajectory. CI runs this in `--smoke` (alias `--quick`)
//! mode with `--enforce-floors`; locally, run without arguments for the
//! full windows:
//!
//! ```text
//! cargo run --release --bin bench_snapshot [-- --smoke|--quick] [--enforce-floors] [--out PATH]
//! ```
//!
//! Two families of acceptance bars:
//!
//! * **Idle scenarios** (`idle_povray_dapper_h`): quiet bus stretches are
//!   what the time-skipping engine elides; the bar is a >= 3x event/dense
//!   wall-clock ratio.
//! * **Saturated/attack scenarios**: since the dense engine shares the
//!   indexed FR-FCFS scheduler, both engines speed up together and the
//!   within-build ratio hovers near 1. The hot-path win is therefore
//!   measured against `BASELINE_MCPS` — the event-engine throughput this
//!   machine recorded *before* the indexed scheduler and
//!   command-granularity stepping landed — with a >= 2x bar, plus the
//!   noise-free structural guard that the event engine simulates at most
//!   a per-scenario `dense_fraction_max` of bus cycles densely (the
//!   fraction is bit-deterministic, so CI can check it on any machine).
//! * **Sharded execution**: the enlarged eight-channel system, saturated,
//!   sequential vs. channel shards on worker lanes. Bit-identical results
//!   are asserted unconditionally; the >= 1.5x wall-clock floor applies in
//!   full mode on hosts with `available_parallelism() >= 2` (on one core
//!   the per-cycle rendezvous is pure overhead, so the honest number is
//!   recorded without enforcement).
//! * **Warm-started search**: the profiler's heatmap-seeded worst-case
//!   search vs the cold random-restart baseline on a pinned seed; the
//!   warm search must reach the cold baseline's best slowdown in <= 0.6x
//!   the cold search's candidate evaluations. Deterministic, so enforced
//!   in every mode.

use sim::experiment::{AttackChoice, Experiment, TelemetrySpec};
use sim::{Engine, RunStats, Threads};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    build: fn(f64) -> Experiment,
    /// Window in microseconds (full mode); smoke mode quarters it.
    window_us: f64,
    /// Event-engine Mc/s recorded on the reference machine before the
    /// indexed-scheduler PR (the seed of the >= 2x hot-path acceptance);
    /// `None` for scenarios judged by the event/dense ratio instead.
    baseline_mcps: Option<f64>,
    /// Structural floor: maximum fraction of bus cycles the event engine
    /// may simulate densely (deterministic, so enforced even in smoke).
    dense_fraction_max: Option<f64>,
}

fn idle_povray(window_us: f64) -> Experiment {
    Experiment::new("povray_like").tracker("dapper-h").window_us(window_us)
}

fn idle_namd(window_us: f64) -> Experiment {
    Experiment::new("namd_like").tracker("none").window_us(window_us)
}

fn saturated_mcf(window_us: f64) -> Experiment {
    Experiment::new("mcf_like").tracker("dapper-h").window_us(window_us)
}

fn attacked_gcc(window_us: f64) -> Experiment {
    Experiment::new("gcc_like").tracker("hydra").attack(AttackChoice::Tailored).window_us(window_us)
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "idle_povray_dapper_h",
        build: idle_povray,
        window_us: 2_000.0,
        baseline_mcps: None,
        dense_fraction_max: Some(0.10),
    },
    Scenario {
        name: "idle_namd_insecure",
        build: idle_namd,
        window_us: 2_000.0,
        baseline_mcps: None,
        dense_fraction_max: Some(0.15),
    },
    Scenario {
        name: "saturated_mcf_dapper_h",
        build: saturated_mcf,
        window_us: 500.0,
        // PR-4-era snapshot on this machine: event 2.17 Mc/s (dense 2.05).
        baseline_mcps: Some(2.17),
        dense_fraction_max: Some(0.60),
    },
    Scenario {
        name: "tailored_attack_gcc_hydra",
        build: attacked_gcc,
        window_us: 500.0,
        // PR-4-era snapshot on this machine: event 1.21 Mc/s (dense 1.26).
        baseline_mcps: Some(1.21),
        dense_fraction_max: Some(0.60),
    },
];

/// Hot-path acceptance bar against the recorded baselines (full mode).
const HOTPATH_SPEEDUP_FLOOR: f64 = 2.0;
/// Sharded-executor bar: on a multi-core host, the eight-channel saturated
/// run must be >= 1.5x faster with channel shards fanned out across lanes
/// than sequentially. Only meaningful where the OS grants >= 2 cores — on
/// a single-core host the per-cycle rendezvous is pure overhead, so the
/// measurement is recorded but the floor is skipped.
const SHARDED_SPEEDUP_FLOOR: f64 = 1.5;
/// Event/dense ratio floor on saturated scenarios: the event engine must
/// never lose to dense (the seed regressed to 0.956x on the attack run).
const SATURATED_RATIO_FLOOR: f64 = 0.85;
/// Warm-started search ceiling: the heatmap-seeded search must reach the
/// cold random-restart baseline's best slowdown in at most this fraction
/// of the cold search's evaluations. Seed-deterministic, so enforced in
/// every mode.
const WARMSTART_RATIO_CEIL: f64 = 0.6;

/// Best-of-N wall-clock measurement (the machine is shared and noisy; the
/// minimum is the least-perturbed sample).
fn time_run(e: &Experiment, engine: Engine, reps: u32) -> (RunStats, f64, f64) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    let mut dense_fraction = 0.0;
    for _ in 0..reps {
        let mut sys = e.build_system(false);
        let t = Instant::now();
        let s = sys.run_engine(engine);
        let dt = t.elapsed().as_secs_f64();
        let dense = sys.engine_stats().dense_steps;
        dense_fraction = dense as f64 / s.cycles.max(1) as f64;
        if let Some(prev) = &stats {
            assert_eq!(prev, &s, "nondeterministic run");
        }
        stats = Some(s);
        best = best.min(dt);
    }
    (stats.expect("at least one rep"), best, dense_fraction)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let enforce_floors = args.iter().any(|a| a == "--enforce-floors");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_system_throughput.json".to_string());
    let reps = if smoke { 2 } else { 3 };

    let mut entries = Vec::new();
    let mut idle_speedup: f64 = 0.0;
    let mut failures: Vec<String> = Vec::new();
    for sc in SCENARIOS {
        let window = if smoke { sc.window_us / 4.0 } else { sc.window_us };
        let e = (sc.build)(window);
        // Warm once (allocator, page faults), then measure each engine.
        let _ = time_run(&e, Engine::EventDriven, 1);
        let (dense_stats, dense_s, _) = time_run(&e, Engine::Dense, reps);
        let (event_stats, event_s, dense_fraction) = time_run(&e, Engine::EventDriven, reps);
        assert_eq!(dense_stats, event_stats, "{}: engines diverged", sc.name);
        let speedup = dense_s / event_s.max(1e-12);
        if sc.name.starts_with("idle_povray") {
            idle_speedup = speedup;
        }
        let cycles = dense_stats.cycles;
        let event_mcps = cycles as f64 / event_s / 1e6;
        let vs_baseline = sc.baseline_mcps.map(|b| event_mcps / b);
        println!(
            "{:<28} {:>11} cycles  dense {:>8.1} Mc/s  event {:>8.1} Mc/s  ratio {:>5.2}x  dense-steps {:>5.1}%{}",
            sc.name,
            cycles,
            cycles as f64 / dense_s / 1e6,
            event_mcps,
            speedup,
            100.0 * dense_fraction,
            vs_baseline.map_or(String::new(), |v| format!("  vs-baseline {v:.2}x")),
        );
        if let Some(maxf) = sc.dense_fraction_max {
            if dense_fraction > maxf {
                failures.push(format!(
                    "{}: dense-step fraction {:.3} above the {maxf:.2} floor",
                    sc.name, dense_fraction
                ));
            }
        }
        // Wall-clock floors only run on the full windows: smoke samples
        // are ~0.1 s on possibly noisy shared runners, where only the
        // bit-deterministic dense-step fractions are trustworthy.
        if !smoke && sc.baseline_mcps.is_some() && speedup < SATURATED_RATIO_FLOOR {
            failures.push(format!(
                "{}: event/dense ratio {speedup:.3} below the {SATURATED_RATIO_FLOOR} floor",
                sc.name
            ));
        }
        if !smoke {
            if let Some(v) = vs_baseline {
                if v < HOTPATH_SPEEDUP_FLOOR {
                    failures.push(format!(
                        "{}: hot-path speedup {v:.2}x vs recorded baseline below {HOTPATH_SPEEDUP_FLOOR}x",
                        sc.name
                    ));
                }
            }
        }
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"window_us\": {},\n",
                "      \"bus_cycles\": {},\n",
                "      \"dense_seconds\": {:.6},\n",
                "      \"event_seconds\": {:.6},\n",
                "      \"dense_mcycles_per_s\": {:.2},\n",
                "      \"event_mcycles_per_s\": {:.2},\n",
                "      \"event_speedup\": {:.3},\n",
                "      \"event_dense_step_fraction\": {:.4}{}\n",
                "    }}"
            ),
            sc.name,
            window,
            cycles,
            dense_s,
            event_s,
            cycles as f64 / dense_s / 1e6,
            event_mcps,
            speedup,
            dense_fraction,
            match (sc.baseline_mcps, vs_baseline) {
                (Some(b), Some(v)) => format!(
                    ",\n      \"baseline_event_mcycles_per_s\": {b:.2},\n      \"hot_path_speedup_vs_baseline\": {v:.3}"
                ),
                _ => String::new(),
            },
        ));
    }

    // Telemetry overhead: the same run with every built-in recorder
    // attached (20 windows) vs. probe-free, both on the event engine. The
    // probe API must stay observably free: results bit-identical, wall
    // clock within noise (the ratio is recorded so PRs that regress the
    // fast path show up in the trajectory).
    let (probe_off_s, probe_on_s, overhead) = {
        let window = if smoke { 500.0 } else { 2_000.0 };
        let plain = idle_povray(window);
        let probed =
            idle_povray(window).with_telemetry(TelemetrySpec::all_recorders(window / 20.0));
        let _ = time_run(&plain, Engine::EventDriven, 1); // warm
        let (off_stats, off_s, _) = time_run(&plain, Engine::EventDriven, reps);
        // `build_system` attaches the time-series + mitigation recorders;
        // the slowdown trace (normally attached by `run_against`) is added
        // by hand so every built-in recorder is live.
        let mut best = f64::INFINITY;
        let mut on_stats = None;
        for _ in 0..reps {
            let mut sys = probed.build_system(false);
            let cores = probed.cfg.cpu.cores as usize;
            sys.attach_probe(Box::new(sim_core::telemetry::SlowdownTrace::flat(
                vec![1.0; cores],
                (0..cores).collect(),
            )));
            let t0 = Instant::now();
            let s = sys.run_engine(Engine::EventDriven);
            best = best.min(t0.elapsed().as_secs_f64());
            on_stats = Some(s);
        }
        assert_eq!(off_stats, on_stats.expect("probed rep"), "recorders perturbed the run");
        let ratio = best / off_s.max(1e-12);
        println!(
            "telemetry overhead: probe-off {:.4}s  probe-on (all recorders) {:.4}s  ratio {:.3}x",
            off_s, best, ratio
        );
        (off_s, best, ratio)
    };

    // Sharded executor: the enlarged eight-channel system, saturated, on
    // the event engine — sequential vs. channel shards on worker lanes.
    // Results are bit-identical by construction (asserted here); the
    // wall-clock win only exists where the OS grants real parallelism, so
    // the floor is gated on `available_parallelism` and full mode.
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (sharded_lanes, seq_s, sharded_s, sharded_speedup) = {
        let window = if smoke { 50.0 } else { 200.0 };
        let e = Experiment::new("mcf_like").tracker("dapper-h").eight_channel(2).window_us(window);
        // Always exercise the pool (>= 2 lanes) so handoff overhead is in
        // the trajectory even on single-core hosts.
        let lanes = host_parallelism.clamp(2, 8);
        let seq = e.clone().threads(Threads::Seq);
        let sharded = e.threads(Threads::N(lanes));
        let _ = time_run(&seq, Engine::EventDriven, 1); // warm
        let (seq_stats, seq_s, _) = time_run(&seq, Engine::EventDriven, reps);
        let (sharded_stats, sharded_s, _) = time_run(&sharded, Engine::EventDriven, reps);
        assert_eq!(seq_stats, sharded_stats, "sharded execution diverged from sequential");
        let speedup = seq_s / sharded_s.max(1e-12);
        println!(
            "sharded 8ch saturated: seq {seq_s:.4}s  {lanes} lanes {sharded_s:.4}s  \
             speedup {speedup:.3}x  (host parallelism {host_parallelism})"
        );
        if !smoke && host_parallelism >= 2 && speedup < SHARDED_SPEEDUP_FLOOR {
            failures.push(format!(
                "sharded 8ch: speedup {speedup:.3}x below the {SHARDED_SPEEDUP_FLOOR}x floor \
                 on a {host_parallelism}-core host"
            ));
        }
        (lanes, seq_s, sharded_s, speedup)
    };

    // Warm-started search: profile a small sensitivity heatmap, then run
    // the worst-case search twice under the identical budget and seed —
    // warm (heatmap genomes as priors) vs cold (random restarts) — and
    // score how many candidate evaluations each needed to reach the cold
    // baseline's best slowdown. Everything here is seed-deterministic, so
    // the <= 0.6 acceptance ceiling is enforced even in smoke mode.
    let warmstart = {
        let mut pcfg = profiler::ProfileConfig::new("hydra", "libquantum_like");
        pcfg.probe_window_us = 40.0;
        pcfg.bank_groups = 2;
        pcfg.row_groups = 2;
        let t0 = Instant::now();
        let (map, _) = profiler::run_profile(&pcfg, None);
        let profile_s = t0.elapsed().as_secs_f64();
        let mut acfg = profiler::AttackConfig::for_heatmap(&map).expect("hydra resolves");
        acfg.budget = 32;
        acfg.batch = 4;
        acfg.window_us = 120.0;
        let t0 = Instant::now();
        let outcome = profiler::run_attack(&map, &acfg, true);
        let search_s = t0.elapsed().as_secs_f64();
        let cold = outcome.cold.as_ref().expect("baseline requested");
        println!(
            "warm-started search: warm best {:.3}x  cold best {:.3}x  \
             evals-to-target warm {} cold {}  ratio {}  (profile {profile_s:.2}s, searches {search_s:.2}s)",
            outcome.warm.best.slowdown,
            cold.best.slowdown,
            outcome.warm_evals_to_target.map_or("-".into(), |v| v.to_string()),
            outcome.cold_evals_to_target.map_or("-".into(), |v| v.to_string()),
            outcome.ratio.map_or("-".into(), |r| format!("{r:.3}")),
        );
        match outcome.ratio {
            Some(r) if r <= WARMSTART_RATIO_CEIL => {}
            Some(r) => failures.push(format!(
                "warm-started search: evals-to-target ratio {r:.3} above the \
                 {WARMSTART_RATIO_CEIL} ceiling"
            )),
            None => failures.push(
                "warm-started search never reached the cold baseline's best slowdown".to_string(),
            ),
        }
        format!(
            concat!(
                "  \"search_warmstart\": {{\n",
                "    \"tracker\": \"hydra\",\n",
                "    \"workload\": \"libquantum_like\",\n",
                "    \"seed\": {},\n",
                "    \"probe_window_us\": {},\n",
                "    \"heatmap_grid\": \"{}x{}x{}\",\n",
                "    \"budget\": {},\n",
                "    \"batch\": {},\n",
                "    \"window_us\": {},\n",
                "    \"warm_best_slowdown\": {:.3},\n",
                "    \"cold_best_slowdown\": {:.3},\n",
                "    \"warm_evals_to_target\": {},\n",
                "    \"cold_evals_to_target\": {},\n",
                "    \"warm_cold_ratio\": {},\n",
                "    \"ratio_ceiling\": {}\n",
                "  }},\n"
            ),
            map.seed,
            pcfg.probe_window_us,
            pcfg.bank_groups,
            pcfg.row_groups,
            map.families.len(),
            acfg.budget,
            acfg.batch,
            acfg.window_us,
            outcome.warm.best.slowdown,
            cold.best.slowdown,
            outcome.warm_evals_to_target.map_or("null".into(), |v| v.to_string()),
            outcome.cold_evals_to_target.map_or("null".into(), |v| v.to_string()),
            outcome.ratio.map_or("null".into(), |r| format!("{r:.3}")),
            WARMSTART_RATIO_CEIL,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"system_throughput\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"engines\": [\"dense\", \"event_driven\"],\n",
            "  \"idle_povray_event_speedup\": {:.3},\n",
            "  \"note\": \"dense shares the indexed scheduler, so saturated/attack wins are tracked by hot_path_speedup_vs_baseline (recorded pre-indexed-scheduler event Mc/s) and the deterministic event_dense_step_fraction\",\n",
            "  \"telemetry\": {{\n",
            "    \"scenario\": \"idle_povray_dapper_h\",\n",
            "    \"recorders\": [\"time-series\", \"slowdown\", \"mitigation-log\"],\n",
            "    \"probe_off_seconds\": {:.6},\n",
            "    \"probe_on_seconds\": {:.6},\n",
            "    \"probe_overhead_ratio\": {:.4}\n",
            "  }},\n",
            "  \"sharded\": {{\n",
            "    \"scenario\": \"saturated_mcf_dapper_h_8ch\",\n",
            "    \"channels\": 8,\n",
            "    \"lanes\": {},\n",
            "    \"host_parallelism\": {},\n",
            "    \"seq_seconds\": {:.6},\n",
            "    \"sharded_seconds\": {:.6},\n",
            "    \"sharded_speedup\": {:.3},\n",
            "    \"floor_enforced\": {}\n",
            "  }},\n",
            "{}",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        idle_speedup,
        probe_off_s,
        probe_on_s,
        overhead,
        sharded_lanes,
        host_parallelism,
        seq_s,
        sharded_s,
        sharded_speedup,
        !smoke && host_parallelism >= 2,
        warmstart,
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("wrote {out_path}");

    if idle_speedup < 3.0 {
        // Smoke mode measures ~ms-scale samples on possibly noisy shared
        // runners; flag without failing there. Full mode is the acceptance
        // measurement and enforces the bar.
        let msg = format!("idle-heavy speedup {idle_speedup:.2}x below the 3x acceptance bar");
        assert!(smoke, "{msg}");
        eprintln!("warning: {msg} (smoke mode — not enforced)");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("floor violation: {f}");
        }
        // Wall-clock floors are enforced in full mode and whenever CI asks
        // for it; structural (deterministic) floors are among them either
        // way, so a hot-path regression cannot slip through as noise.
        assert!(
            smoke && !enforce_floors,
            "{} floor violation(s), first: {}",
            failures.len(),
            failures[0]
        );
        eprintln!("warning: floors not enforced (smoke mode without --enforce-floors)");
    }
}
