//! `fig_transient` — slowdown-over-time under performance attacks.
//!
//! The paper's performance-attack story is a *transient*: an attacker
//! degrades benign IPC window by window, and a resilient tracker bounds
//! the dip and recovers. This harness plots exactly that axis: per-window
//! benign IPC normalized to the insecure attack-free baseline, for
//! CacheThrash and the tracker-tailored attack across a tracker matrix,
//! via the [`sim_core::telemetry`] slowdown recorder.
//!
//! ```text
//! cargo run --release --bin fig_transient [-- --quick] [--out DIR] [--workload NAME]
//! ```
//!
//! Writes `fig_transient.json` and `fig_transient.csv` under `out/` (one
//! slowdown point per window per cell) and prints a per-cell summary with
//! time-to-max-slowdown and recovery scores.

use sim::experiment::{AttackChoice, Experiment, TelemetrySpec};
use sim::{parallel_map, RECOVERY_THRESHOLD};
use sim_core::json::{csv_field, Json};

/// Trackers on the transient plot (DAPPER against the two baselines whose
/// tailored attacks the paper plots).
const TRACKERS: [&str; 3] = ["hydra", "comet", "dapper-h"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "out".to_string());
    let workload = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "gcc_like".to_string());
    let window_us = if quick { 200.0 } else { 1_000.0 };
    let sample_us = window_us / 20.0;

    let attacks =
        [("cache-thrash", AttackChoice::CacheThrash), ("tailored", AttackChoice::Tailored)];
    let mut jobs = Vec::new();
    for tracker in TRACKERS {
        for (attack_label, attack) in attacks {
            let e = Experiment::new(&workload)
                .tracker(tracker)
                .attack(attack)
                .window_us(window_us)
                .with_telemetry(TelemetrySpec {
                    slowdown: true,
                    time_series: true,
                    window_us: Some(sample_us),
                    ..Default::default()
                });
            jobs.push((tracker, attack_label, e));
        }
    }

    let results = parallel_map(jobs, |(tracker, attack_label, e)| (tracker, attack_label, e.run()));

    let mut cells = Vec::new();
    let mut csv = String::from("tracker,attack,window,end_us,normalized_ipc,slowdown\n");
    println!(
        "{:<10} {:<13} {:>9} {:>11} {:>11} {:>10}",
        "tracker", "attack", "norm.perf", "max-slowdn", "t-max", "recovery"
    );
    for outcome in results {
        let (_tracker, attack_label, r) = outcome.expect("transient cell must simulate");
        let t = r.telemetry.as_ref().expect("slowdown recorder attached");
        let trace = t.slowdown.as_ref().expect("trace recorded");
        for p in trace.points() {
            csv.push_str(&format!(
                "{},{},{},{:.3},{:.6},{:.6}\n",
                csv_field(&r.tracker_name),
                attack_label,
                p.index,
                sim_core::time::cycles_to_us(p.end),
                p.normalized_ipc,
                p.slowdown(),
            ));
        }
        let worst = trace.max_slowdown_point().map(|p| p.slowdown()).unwrap_or(1.0);
        let fmt_us = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.0}us"));
        println!(
            "{:<10} {:<13} {:>9.3} {:>10.3}x {:>11} {:>10}",
            r.tracker_name,
            attack_label,
            r.normalized_performance,
            worst,
            fmt_us(t.time_to_max_slowdown_us()),
            fmt_us(t.recovery_us(RECOVERY_THRESHOLD)),
        );
        cells.push(Json::obj([
            ("tracker", Json::str(&r.tracker_name)),
            ("attack", Json::str(attack_label)),
            ("attack_name", Json::str(&r.attack_name)),
            ("normalized_performance", Json::num(r.normalized_performance)),
            ("max_slowdown", Json::num(worst)),
            ("time_to_max_slowdown_us", t.time_to_max_slowdown_us().map_or(Json::Null, Json::num)),
            ("recovery_us", t.recovery_us(RECOVERY_THRESHOLD).map_or(Json::Null, Json::num)),
            ("slowdown", trace.to_json()),
        ]));
    }

    let doc = Json::obj([
        ("figure", Json::str("transient")),
        ("workload", Json::str(&workload)),
        ("window_us", Json::num(window_us)),
        ("sample_window_us", Json::num(sample_us)),
        ("recovery_threshold", Json::num(RECOVERY_THRESHOLD)),
        ("cells", Json::Arr(cells)),
    ]);
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let json_path = format!("{out_dir}/fig_transient.json");
    let csv_path = format!("{out_dir}/fig_transient.csv");
    std::fs::write(&json_path, doc.render()).expect("write JSON");
    std::fs::write(&csv_path, csv).expect("write CSV");
    println!("wrote {json_path} and {csv_path}");
}
