//! Figure 11: DAPPER-H on benign applications (N_RH = 500), per workload.

use bench::{header, mean_norm, print_workload_table, run_all, BenchOpts};
use sim::experiment::Experiment;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 11", "DAPPER-H benign performance", &opts);
    let workload_set = opts.workloads();

    let jobs: Vec<Experiment> = workload_set
        .iter()
        .map(|w| opts.apply(Experiment::new(w.name).tracker("dapper-h")))
        .collect();
    let results = run_all(jobs);
    let series = [("DAPPER-H", results)];
    println!("--- panel A: memory-intensive workloads ---");
    print_workload_table(&series, &workload_set, true);
    println!("\n--- panel B: all workloads ---");
    print_workload_table(&series, &workload_set, false);
    let refs: Vec<_> = series[0].1.iter().collect();
    let worst = series[0]
        .1
        .iter()
        .min_by(|a, b| a.normalized_performance.total_cmp(&b.normalized_performance))
        .expect("nonempty");
    println!("\nmean normalized = {:.4}", mean_norm(&refs));
    println!("worst: {} at {:.4}", worst.workload, worst.normalized_performance);
    println!("paper: 0.1% average slowdown; worst 4.4% (429.mcf)");
}
