//! Figure 10: DAPPER-H under the streaming and refresh attacks, per
//! workload (N_RH = 500). Two panels like the paper.

use bench::{header, mean_norm, print_workload_table, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 10", "DAPPER-H under mapping-agnostic attacks", &opts);
    let workload_set = opts.workloads();

    let mut series = Vec::new();
    for (label, atk) in [("Streaming", Attack::Streaming), ("Refresh", Attack::RefreshAttack)] {
        let jobs: Vec<Experiment> = workload_set
            .iter()
            .map(|w| {
                opts.apply(
                    Experiment::new(w.name)
                        .tracker("dapper-h")
                        .attack(AttackChoice::Specific(atk))
                        .isolating(),
                )
            })
            .collect();
        series.push((label, run_all(jobs)));
    }
    println!("--- panel A: memory-intensive workloads ---");
    print_workload_table(&series, &workload_set, true);
    println!("\n--- panel B: all workloads ---");
    print_workload_table(&series, &workload_set, false);
    for (label, results) in &series {
        let refs: Vec<_> = results.iter().collect();
        println!("{label}: mean normalized = {:.4}", mean_norm(&refs));
    }
    println!("\npaper: <1% average slowdown; max 4.7% (streaming), 2.3% (refresh)");
}
