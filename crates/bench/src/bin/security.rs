//! Section VI-C security analysis: DAPPER-H Mapping-Capturing success
//! probability (Eqs. 6-7), Monte-Carlo validation, and an oracle-audited
//! simulation of the strongest attack patterns.

use analysis::equations::{dapper_h_success, table_two};
use analysis::montecarlo::{h_capture_trials, s_capture_trials};
use bench::BenchOpts;
use dapper::DapperConfig;
use sim::experiment::{AttackChoice, Experiment};
use sim_core::addr::Geometry;
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    println!("==== Security analysis (Section VI-C, Table II) ====\n");

    println!("-- DAPPER-S analytical capture times (Table II) --");
    for r in table_two() {
        println!(
            "  t_reset {:>5.0}us: {:>8.1} iterations, {:>10.3}ms per captured pair",
            r.t_reset_ns / 1000.0,
            r.at_iter,
            r.at_time_ns / 1.0e6
        );
    }

    println!("\n-- DAPPER-H analytical success probability (Eqs. 6-7) --");
    let h = dapper_h_success(8192, 250, 616_000.0);
    println!("  per-trial p = {:.3e}", h.p_trial);
    println!("  trials per tREFW = {:.0}", h.trials);
    println!("  capture probability per tREFW = {:.3e}", h.p_window);
    println!("  prevention rate = {:.4}% (paper: 99.99%)", 100.0 * (1.0 - h.p_window));

    println!("\n-- Monte-Carlo validation on real LLBC mappings (small geometry) --");
    let mut cfg = DapperConfig::baseline(500, 0, opts.seed);
    cfg.geometry = Geometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows_per_bank: 16 * 1024,
        row_bytes: 8192,
    };
    let n = cfg.groups_per_rank() as f64;
    let (sh, st) = s_capture_trials(cfg, 400_000, opts.seed);
    println!(
        "  DAPPER-S single-probe hit rate: {:.5} (analytic 1/N = {:.5})",
        sh as f64 / st as f64,
        1.0 / n
    );
    let (hh, ht) = h_capture_trials(cfg, 4_000_000, opts.seed);
    let expect = {
        let one = 1.0 - (1.0 - 1.0 / n) * (1.0 - 1.0 / n);
        one * one
    };
    println!(
        "  DAPPER-H dual-probe hit rate:   {:.2e} (analytic {:.2e})",
        hh as f64 / ht as f64,
        expect
    );

    println!("\n-- Oracle-audited attack simulations (N_RH = {}) --", opts.nrh);
    for (label, tracker, attack) in [
        ("DAPPER-H vs refresh attack ", "dapper-h", Attack::RefreshAttack),
        ("DAPPER-H vs streaming      ", "dapper-h", Attack::Streaming),
        ("DAPPER-S vs refresh attack ", "dapper-s", Attack::RefreshAttack),
        ("no tracker vs refresh      ", "none", Attack::RefreshAttack),
    ] {
        let r = opts
            .apply(
                Experiment::new("gcc_like")
                    .tracker(tracker)
                    .attack(AttackChoice::Specific(attack))
                    .with_oracle(),
            )
            .run();
        let (max_damage, violations) = r.run.oracle.expect("oracle attached");
        println!(
            "  {label}: max victim disturbance {max_damage:>6} / N_RH {}, violations: {violations}",
            opts.nrh
        );
    }
    println!("\n(violations must be 0 for every real tracker; the no-tracker row");
    println!(" shows the attack actually hammers when undefended)");
}
