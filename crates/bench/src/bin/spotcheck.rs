//! Spot-check binary for calibration of specific cases (not a paper figure).

use sim::experiment::{AttackChoice, Experiment};
use std::time::Instant;
use workloads::Attack;

fn main() {
    let cases: Vec<(&str, Experiment)> = vec![
        (
            "START  tailored 3ms  (~0.35)",
            Experiment::new("milc_like")
                .tracker("start")
                .attack(AttackChoice::Tailored)
                .window_us(3000.0),
        ),
        (
            "ABACUS tailored 3ms  (~0.28)",
            Experiment::new("milc_like")
                .tracker("abacus")
                .attack(AttackChoice::Tailored)
                .window_us(3000.0),
        ),
        (
            "DAPPER-S stream 8ms  (~0.87)",
            Experiment::new("milc_like")
                .tracker("dapper-s")
                .attack(AttackChoice::Specific(Attack::Streaming))
                .isolating()
                .window_us(8000.0),
        ),
        (
            "DAPPER-H stream 8ms  (~0.998)",
            Experiment::new("milc_like")
                .tracker("dapper-h")
                .attack(AttackChoice::Specific(Attack::Streaming))
                .isolating()
                .window_us(8000.0),
        ),
        (
            "BlockHammer@125 2ms  (~0.34)",
            Experiment::new("milc_like").tracker("blockhammer").nrh(125).window_us(2000.0),
        ),
        (
            "BlockHammer@500 2ms  (~0.75)",
            Experiment::new("milc_like").tracker("blockhammer").nrh(500).window_us(2000.0),
        ),
        (
            "PRAC   benign   2ms  (~0.93)",
            Experiment::new("milc_like").tracker("prac").window_us(2000.0),
        ),
    ];
    for (name, e) in cases {
        let t0 = Instant::now();
        let r = e.run();
        println!(
            "{name} -> {:6.3}  [{:4.1}s vrr={} sweeps={} ctr={}]",
            r.normalized_performance,
            t0.elapsed().as_secs_f32(),
            r.run.mem.vrr_commands,
            r.run.mem.reset_sweeps,
            r.run.mem.counter_reads + r.run.mem.counter_writes
        );
    }
}
