//! Figure 4: attack sensitivity to the RowHammer threshold
//! (N_RH in {500, 1000, 2000, 4000}).

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 4", "Perf-Attack sensitivity to N_RH", &opts);
    let workload_set = opts.workloads();

    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "N_RH", "CacheThrash", "Hydra", "START", "ABACUS", "CoMeT"
    );
    for nrh in [500u32, 1000, 2000, 4000] {
        let mut row = vec![format!("{nrh:<8}")];
        let thrash: Vec<Experiment> = workload_set
            .iter()
            .map(|w| {
                opts.apply(
                    Experiment::new(w.name).tracker("none").attack(AttackChoice::CacheThrash),
                )
                .nrh(nrh)
            })
            .collect();
        let r = run_all(thrash);
        row.push(format!("{:>14.3}", mean_norm(&r.iter().collect::<Vec<_>>())));
        for t in sim::registry::SCALABLE_BASELINES {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(Experiment::new(w.name).tracker(t).attack(AttackChoice::Tailored))
                        .nrh(nrh)
                })
                .collect();
            let r = run_all(jobs);
            row.push(format!("{:>10.3}", mean_norm(&r.iter().collect::<Vec<_>>())));
        }
        println!("{}", row.join(" "));
    }
    println!("\npaper: even at N_RH=4K the tailored attacks cost 46-71%");
}
