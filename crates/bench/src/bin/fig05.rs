//! Figure 5: attack sensitivity to per-core LLC capacity on an
//! eight-channel system (N_RH = 500).

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 5", "Perf-Attacks vs per-core LLC size, 8 channels", &opts);
    let workload_set = opts.workloads();

    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "LLC/core", "CacheThrash", "Hydra", "START", "ABACUS", "CoMeT"
    );
    for mib in [2u64, 3, 4, 5] {
        let mut row = vec![format!("{mib}MB{:<6}", "")];
        let thrash: Vec<Experiment> = workload_set
            .iter()
            .map(|w| {
                opts.apply(
                    Experiment::new(w.name).tracker("none").attack(AttackChoice::CacheThrash),
                )
                .eight_channel(mib)
            })
            .collect();
        let r = run_all(thrash);
        row.push(format!("{:>14.3}", mean_norm(&r.iter().collect::<Vec<_>>())));
        for t in sim::registry::SCALABLE_BASELINES {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(Experiment::new(w.name).tracker(t).attack(AttackChoice::Tailored))
                        .eight_channel(mib)
                })
                .collect();
            let r = run_all(jobs);
            row.push(format!("{:>10.3}", mean_norm(&r.iter().collect::<Vec<_>>())));
        }
        println!("{}", row.join(" "));
    }
    println!("\npaper: 30-79% loss under Perf-Attacks even with 5MB/core LLC");
}
