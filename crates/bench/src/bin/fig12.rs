//! Figure 12: DAPPER-H normalized performance vs N_RH (125..4000), benign
//! and under the two mapping-agnostic attacks.

use bench::{header, mean_norm, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Fig. 12", "DAPPER-H sensitivity to N_RH", &opts);
    let workload_set = opts.workloads();

    println!("{:<8} {:>10} {:>12} {:>12}", "N_RH", "benign", "streaming", "refresh");
    for nrh in opts.nrh_sweep() {
        let mut cols = Vec::new();
        for attack in [
            AttackChoice::None,
            AttackChoice::Specific(Attack::Streaming),
            AttackChoice::Specific(Attack::RefreshAttack),
        ] {
            let jobs: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(
                        Experiment::new(w.name).tracker("dapper-h").attack(attack).isolating(),
                    )
                    .nrh(nrh)
                })
                .collect();
            let r = run_all(jobs);
            cols.push(mean_norm(&r.iter().collect::<Vec<_>>()));
        }
        println!("{:<8} {:>10.4} {:>12.4} {:>12.4}", nrh, cols[0], cols[1], cols[2]);
    }
    println!("\npaper: <1% at N_RH >= 500; up to 6% at N_RH = 125 under attack");
}
