//! Ablation study of DAPPER's design choices (DESIGN.md index):
//! group size, single vs double hashing, and mitigation scope.

use bench::{header, mean_norm, run_all, BenchOpts};
use dapper::{DapperConfig, DapperH, DapperS};
use sim::experiment::{AttackChoice, Experiment};
use sim_core::tracker::RowHammerTracker;
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Ablation", "DAPPER design choices", &opts);
    let workload_set = opts.workloads();

    println!("-- single hash (DAPPER-S) vs double hash (DAPPER-H), refresh attack --");
    for (label, t) in [("DAPPER-S", "dapper-s"), ("DAPPER-H", "dapper-h")] {
        let jobs: Vec<Experiment> = workload_set
            .iter()
            .map(|w| {
                opts.apply(
                    Experiment::new(w.name)
                        .tracker(t)
                        .attack(AttackChoice::Specific(Attack::RefreshAttack)),
                )
            })
            .collect();
        let r = run_all(jobs);
        println!("  {label:<10} {:.4}", mean_norm(&r.iter().collect::<Vec<_>>()));
    }

    println!("\n-- storage vs group size (both trackers, per 32 GB channel) --");
    println!(
        "  {:<8} {:>14} {:>14} {:>12}",
        "group", "DAPPER-S (KB)", "DAPPER-H (KB)", "groups/rank"
    );
    for gs in [64u32, 128, 256, 512] {
        let cfg = DapperConfig::baseline(opts.nrh, 0, opts.seed).with_group_size(gs);
        let s = DapperS::new(cfg).storage_overhead().sram_kb();
        let h = DapperH::new(cfg).storage_overhead().sram_kb();
        println!("  {gs:<8} {s:>14.1} {h:>14.1} {:>12}", cfg.groups_per_rank());
    }

    println!("\n-- mitigation scope: rows refreshed per mitigation --");
    let cfg = DapperConfig::baseline(opts.nrh, 0, opts.seed);
    println!("  DAPPER-S refreshes the whole group: {} rows per mitigation", cfg.group_size);
    println!("  DAPPER-H refreshes the shared rows: ~1 row (99.9% single, Section VI-D)");

    println!("\n-- reset-period sensitivity for DAPPER-S (Table II shape) --");
    for t_reset_us in [36.0, 24.0, 12.0] {
        let r = analysis::equations::dapper_s_capture(t_reset_us * 1000.0, 48.0, 2.5, 250, 8192);
        println!("  t_reset {t_reset_us:>4.0}us -> capture every {:>9.3} ms", r.at_time_ns / 1e6);
    }
}
