//! Table IV: DRAM energy overhead of DAPPER-H vs N_RH, benign and under the
//! streaming / refresh attacks.
//!
//! Overhead is measured against the insecure baseline running the *same*
//! workload mix (attack runs compare against the same mix with the tracker
//! disabled, isolating the tracker's mitigation energy, as DRAMPower does
//! in the paper).

use bench::{header, run_all, BenchOpts};
use sim::experiment::{AttackChoice, Experiment};
use workloads::Attack;

fn main() {
    let opts = BenchOpts::from_args();
    header("Table IV", "energy overhead of DAPPER-H", &opts);
    let workload_set = opts.workloads();

    println!("{:<8} {:>10} {:>12} {:>12}", "N_RH", "benign", "streaming", "refresh");
    for nrh in opts.nrh_sweep() {
        let mut cols = Vec::new();
        for attack in [
            AttackChoice::None,
            AttackChoice::Specific(Attack::Streaming),
            AttackChoice::Specific(Attack::RefreshAttack),
        ] {
            // With tracker.
            let with: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(Experiment::new(w.name).tracker("dapper-h").attack(attack)).nrh(nrh)
                })
                .collect();
            // Without tracker, same mix (including the attacker).
            let without: Vec<Experiment> = workload_set
                .iter()
                .map(|w| {
                    opts.apply(Experiment::new(w.name).tracker("none").attack(match attack {
                        AttackChoice::None => AttackChoice::None,
                        a => a,
                    }))
                    .nrh(nrh)
                })
                .collect();
            let rw = run_all(with);
            let ro = run_all(without);
            let e_with: f64 = rw.iter().map(|r| r.run.energy_mj).sum();
            let e_without: f64 = ro.iter().map(|r| r.run.energy_mj).sum();
            cols.push(100.0 * (e_with - e_without) / e_without);
        }
        println!("{:<8} {:>9.1}% {:>11.1}% {:>11.1}%", nrh, cols[0], cols[1], cols[2]);
    }
    println!("\npaper @500: benign 0.1%, streaming 0.2%, refresh 1.1%; @125: 4.5/7.0/7.5%");
}
