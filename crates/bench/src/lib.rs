//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary accepts:
//!
//! * `--window-us <f64>` — simulation window per run (default 4000 µs),
//! * `--full` — all 57 workloads instead of the 9-workload quick subset,
//! * `--seed <u64>` — RNG seed,
//! * `--nrh <u32>` — RowHammer threshold where applicable (default 500).
//!
//! Output is plain text: one table per figure with the same rows/series the
//! paper reports, ready to diff against EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::experiment::{Experiment, ExperimentResult};
use sim::runner::run_parallel;
use workloads::catalog::{catalog, quick_subset, WorkloadSpec};

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Simulation window per run, microseconds.
    pub window_us: f64,
    /// Run all 57 workloads.
    pub full: bool,
    /// RNG seed.
    pub seed: u64,
    /// Default RowHammer threshold.
    pub nrh: u32,
    /// Number of N_RH sweep points (6 = the paper's full sweep; 3 keeps
    /// the endpoints and the default threshold for quick runs).
    pub sweep_points: usize,
}

impl BenchOpts {
    /// Parses `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
        };
        Self {
            window_us: get("--window-us").and_then(|v| v.parse().ok()).unwrap_or(4000.0),
            full: args.iter().any(|a| a == "--full"),
            seed: get("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xDA99E5),
            nrh: get("--nrh").and_then(|v| v.parse().ok()).unwrap_or(500),
            sweep_points: get("--sweep-points").and_then(|v| v.parse().ok()).unwrap_or(6),
        }
    }

    /// The N_RH values swept by the sensitivity figures.
    pub fn nrh_sweep(&self) -> Vec<u32> {
        if self.sweep_points >= 6 {
            vec![125, 250, 500, 1000, 2000, 4000]
        } else {
            vec![125, 500, 2000]
        }
    }

    /// The workload set implied by `--full`.
    pub fn workloads(&self) -> Vec<&'static WorkloadSpec> {
        if self.full {
            catalog().iter().collect()
        } else {
            quick_subset()
        }
    }

    /// Applies the shared options to an experiment.
    pub fn apply(&self, e: Experiment) -> Experiment {
        e.window_us(self.window_us).seed(self.seed).nrh(self.nrh)
    }
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self { window_us: 4000.0, full: false, seed: 0xDA99E5, nrh: 500, sweep_points: 6 }
    }
}

/// Prints the standard harness header.
pub fn header(id: &str, title: &str, opts: &BenchOpts) {
    println!("==== {id}: {title} ====");
    println!(
        "window: {} us | workloads: {} | N_RH: {} | seed: {:#x}",
        opts.window_us,
        if opts.full { "all 57" } else { "quick subset (9)" },
        opts.nrh,
        opts.seed
    );
    println!();
}

/// Runs a batch in parallel and returns the results.
pub fn run_all(jobs: Vec<Experiment>) -> Vec<ExperimentResult> {
    run_parallel(jobs)
}

/// Mean normalized performance of a result slice.
pub fn mean_norm(results: &[&ExperimentResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.normalized_performance).sum::<f64>() / results.len() as f64
}

/// Groups results by suite and prints one row per suite plus "All",
/// with one column per (label) series.
pub fn print_suite_table(
    series: &[(&str, Vec<ExperimentResult>)],
    workload_set: &[&'static WorkloadSpec],
) {
    print!("{:<14}", "suite");
    for (label, _) in series {
        print!(" {label:>16}");
    }
    println!();
    let suites: Vec<workloads::Suite> = {
        let mut seen = Vec::new();
        for w in workload_set {
            if !seen.contains(&w.suite) {
                seen.push(w.suite);
            }
        }
        seen
    };
    for suite in &suites {
        let names: Vec<&str> =
            workload_set.iter().filter(|w| w.suite == *suite).map(|w| w.name).collect();
        print!("{:<14}", suite.to_string());
        for (_, results) in series {
            let vals: Vec<&ExperimentResult> =
                results.iter().filter(|r| names.contains(&r.workload.as_str())).collect();
            print!(" {:>16.3}", mean_norm(&vals));
        }
        println!();
    }
    print!("{:<14}", "All");
    for (_, results) in series {
        let all: Vec<&ExperimentResult> = results.iter().collect();
        print!(" {:>16.3}", mean_norm(&all));
    }
    println!();
}

/// Prints one row per workload, one column per series.
pub fn print_workload_table(
    series: &[(&str, Vec<ExperimentResult>)],
    workload_set: &[&'static WorkloadSpec],
    intensive_only: bool,
) {
    print!("{:<22}", "workload");
    for (label, _) in series {
        print!(" {label:>14}");
    }
    println!();
    for w in workload_set {
        if intensive_only && !w.memory_intensive() {
            continue;
        }
        print!("{:<22}", w.name);
        for (_, results) in series {
            match results.iter().find(|r| r.workload == w.name) {
                Some(r) => print!(" {:>14.3}", r.normalized_performance),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}
