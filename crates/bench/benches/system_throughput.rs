//! Criterion benchmark of whole-system simulation throughput: bus cycles
//! simulated per second of host time, benign and under attack.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim::experiment::{AttackChoice, Experiment, TrackerChoice};

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("benign_100us_dapper_h", |b| {
        b.iter(|| {
            let mut sys = Experiment::new("gcc_like")
                .tracker(TrackerChoice::DapperH)
                .window_us(100.0)
                .build_system(false);
            black_box(sys.run().cycles)
        });
    });
    group.bench_function("refresh_attack_100us_dapper_h", |b| {
        b.iter(|| {
            let mut sys = Experiment::new("gcc_like")
                .tracker(TrackerChoice::DapperH)
                .attack(AttackChoice::Specific(workloads::Attack::RefreshAttack))
                .window_us(100.0)
                .build_system(false);
            black_box(sys.run().cycles)
        });
    });
    group.bench_function("tailored_attack_100us_hydra", |b| {
        b.iter(|| {
            let mut sys = Experiment::new("gcc_like")
                .tracker(TrackerChoice::Hydra)
                .attack(AttackChoice::Tailored)
                .window_us(100.0)
                .build_system(false);
            black_box(sys.run().cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
