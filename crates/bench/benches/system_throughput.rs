//! Criterion benchmark of whole-system simulation throughput: bus cycles
//! simulated per second of host time, benign and under attack, for both
//! the dense-tick reference engine and the event-driven time-skipping
//! engine (see `bench_snapshot` for the machine-readable JSON trajectory).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim::experiment::{AttackChoice, Experiment};
use sim::Engine;

fn run(e: &Experiment, engine: Engine) -> u64 {
    e.build_system(false).run_engine(engine).cycles
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    let benign = Experiment::new("gcc_like").tracker("dapper-h").window_us(100.0);
    group.bench_function("benign_100us_dapper_h", |b| {
        b.iter(|| black_box(run(&benign, Engine::EventDriven)));
    });
    let refresh = Experiment::new("gcc_like")
        .tracker("dapper-h")
        .attack(AttackChoice::Specific(workloads::Attack::RefreshAttack))
        .window_us(100.0);
    group.bench_function("refresh_attack_100us_dapper_h", |b| {
        b.iter(|| black_box(run(&refresh, Engine::EventDriven)));
    });
    let tailored = Experiment::new("gcc_like")
        .tracker("hydra")
        .attack(AttackChoice::Tailored)
        .window_us(100.0);
    group.bench_function("tailored_attack_100us_hydra", |b| {
        b.iter(|| black_box(run(&tailored, Engine::EventDriven)));
    });
    group.finish();
}

/// Dense vs. event engine on the idle-heavy workload the skip targets, and
/// on a saturated one where probing must stay cheap.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    let idle = Experiment::new("povray_like").tracker("dapper-h").window_us(500.0);
    group.bench_function("idle_povray_500us_dense", |b| {
        b.iter(|| black_box(run(&idle, Engine::Dense)));
    });
    group.bench_function("idle_povray_500us_event", |b| {
        b.iter(|| black_box(run(&idle, Engine::EventDriven)));
    });
    let saturated = Experiment::new("mcf_like").tracker("dapper-h").window_us(100.0);
    group.bench_function("saturated_mcf_100us_dense", |b| {
        b.iter(|| black_box(run(&saturated, Engine::Dense)));
    });
    group.bench_function("saturated_mcf_100us_event", |b| {
        b.iter(|| black_box(run(&saturated, Engine::EventDriven)));
    });
    group.finish();
}

criterion_group!(benches, bench_system, bench_engines);
criterion_main!(benches);
