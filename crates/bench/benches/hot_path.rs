//! Criterion microbenchmarks for the memory-side hot path, so scheduler
//! and tracker changes are measurable in isolation from full-system runs:
//!
//! * `ctrl_tick/*` — [`memctrl::ChannelController::tick`] under saturated
//!   queues (the FR-FCFS scan + cached-decision-bound maintenance), for
//!   the indexed production scheduler, the retained naive-scan oracle,
//!   and the quiet-tick early-out.
//! * `on_activation_attack/*` — the per-ACT path of the trackers the
//!   Perf-Attacks lean on (Hydra's RCC/RCT, CoMeT's CMS+RAT, DAPPER-H's
//!   double-hashed groups) under an attack-shaped access pattern (a small
//!   aggressor set hammered hard), which drives Hydra into per-row mode
//!   and CoMeT into RAT churn — the regimes that dominate
//!   `tailored_attack_*` wall-clock.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dapper::{DapperConfig, DapperH};
use dram::{DramChannel, TimingParams};
use memctrl::{ChannelController, CtrlConfig};
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::config::MitigationKind;
use sim_core::req::{AccessKind, MemRequest, SourceId};
use sim_core::rng::Xoshiro256;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, NullTracker, RowHammerTracker};
use trackers::{Comet, Hydra, TrackerParams};

/// A controller with both demand queues saturated by a conflict-heavy,
/// hit-sprinkled request mix.
fn saturated_controller(naive: bool) -> (ChannelController, Xoshiro256, u64) {
    let dram = DramChannel::new(Geometry::paper_baseline(), TimingParams::ddr5_6400());
    let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
    let mut c = ChannelController::new(0, dram, Box::new(NullTracker), cfg);
    c.set_naive_scan(naive);
    let mut rng = Xoshiro256::seed_from(0xbeef);
    let mut id = 1;
    refill(&mut c, &mut rng, &mut id, 0);
    (c, rng, id)
}

/// Tops both queues up to their caps.
fn refill(c: &mut ChannelController, rng: &mut Xoshiro256, id: &mut u64, now: Cycle) {
    let geom = Geometry::paper_baseline();
    loop {
        let kind = if rng.gen_range(100) < 30 { AccessKind::Write } else { AccessKind::Read };
        let addr = DramAddr::new(
            0,
            rng.gen_range(2) as u8,
            rng.gen_range(geom.bank_groups as u64) as u8,
            rng.gen_range(geom.banks_per_group as u64) as u8,
            rng.gen_range(8) as u32,
            rng.gen_range(64) as u16,
        );
        if !c.enqueue(MemRequest::new(*id, SourceId(0), kind, PhysAddr(0), addr, now)) {
            break;
        }
        *id += 1;
    }
}

fn bench_ctrl_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrl_tick");
    for (name, naive) in [("indexed_saturated", false), ("naive_scan_saturated", true)] {
        group.bench_function(name, |b| {
            let (mut ctrl, mut rng, mut id) = saturated_controller(naive);
            let mut now: Cycle = 0;
            let mut done = Vec::new();
            b.iter(|| {
                ctrl.tick(now);
                ctrl.pop_completions(now, &mut done);
                done.clear();
                if now.is_multiple_of(16) {
                    refill(&mut ctrl, &mut rng, &mut id, now);
                }
                now += 1;
                black_box(now)
            });
        });
    }
    // The quiet-tick fast path: an idle controller right after its bound
    // was refreshed — every tick must early-out in O(1).
    group.bench_function("quiet_early_out", |b| {
        let dram = DramChannel::new(Geometry::paper_baseline(), TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        let mut ctrl = ChannelController::new(0, dram, Box::new(NullTracker), cfg);
        ctrl.tick(0);
        b.iter(|| {
            ctrl.tick(black_box(1));
        });
    });
    group.finish();
}

/// Attack-shaped activation stream: a small aggressor set hammered in
/// round-robin across two ranks (what tailored attacks and the red-team
/// scenarios produce at the controller).
fn attack_acts(n: usize, aggressors: u64, seed: u64) -> Vec<Activation> {
    let geom = Geometry::paper_baseline();
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|i| {
            let idx = (rng.gen_range(aggressors)) * 64 + 7;
            let rank = (i & 1) as u8;
            Activation {
                addr: geom.addr_from_rank_row_index(0, rank, idx % geom.rows_per_rank()),
                source: SourceId(0),
                cycle: i as u64 * 8,
            }
        })
        .collect()
}

fn bench_tracker_attack_path(c: &mut Criterion) {
    let acts = attack_acts(4096, 192, 0x5eed);
    let mut group = c.benchmark_group("on_activation_attack");
    macro_rules! bench_tracker {
        ($name:literal, $mk:expr) => {
            group.bench_function($name, |b| {
                let mut t = $mk;
                let mut out = Vec::new();
                let mut i = 0;
                b.iter(|| {
                    out.clear();
                    t.on_activation(black_box(acts[i & 4095]), &mut out);
                    i += 1;
                    black_box(out.len())
                });
            });
        };
    }
    let p = TrackerParams::baseline(500, 0, 7);
    bench_tracker!("hydra", Hydra::new(p));
    bench_tracker!("comet", Comet::new(p));
    bench_tracker!("dapper_h", DapperH::new(DapperConfig::baseline(500, 0, 7)));
    group.finish();
}

criterion_group!(benches, bench_ctrl_tick, bench_tracker_attack_path);
criterion_main!(benches);
