//! Criterion microbenchmarks: the per-activation hot path of every tracker
//! (this is the logic that must finish within tRRD_S = 2.5 ns in hardware)
//! plus the LLBC encrypt/decrypt primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dapper::{DapperConfig, DapperH, DapperS};
use llbc::Llbc;
use sim_core::addr::Geometry;
use sim_core::req::SourceId;
use sim_core::rng::Xoshiro256;
use sim_core::tracker::{Activation, RowHammerTracker};
use trackers::{Abacus, BlockHammer, Comet, Hydra, Para, Prac, Pride, Start, TrackerParams};

fn random_acts(n: usize, seed: u64) -> Vec<Activation> {
    let geom = Geometry::paper_baseline();
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|i| {
            let idx = rng.gen_range(geom.rows_per_rank());
            let rank = (rng.next_u64() & 1) as u8;
            Activation {
                addr: geom.addr_from_rank_row_index(0, rank, idx),
                source: SourceId(0),
                cycle: i as u64 * 8,
            }
        })
        .collect()
}

fn bench_trackers(c: &mut Criterion) {
    let acts = random_acts(4096, 99);
    let mut group = c.benchmark_group("on_activation");
    macro_rules! bench_tracker {
        ($name:literal, $mk:expr) => {
            group.bench_function($name, |b| {
                let mut t = $mk;
                let mut out = Vec::new();
                let mut i = 0;
                b.iter(|| {
                    out.clear();
                    t.on_activation(black_box(acts[i & 4095]), &mut out);
                    i += 1;
                    black_box(out.len())
                });
            });
        };
    }
    let p = TrackerParams::baseline(500, 0, 7);
    let d = DapperConfig::baseline(500, 0, 7);
    bench_tracker!("dapper_s", DapperS::new(d));
    bench_tracker!("dapper_h", DapperH::new(d));
    bench_tracker!("hydra", Hydra::new(p));
    bench_tracker!("start", Start::new(p));
    bench_tracker!("comet", Comet::new(p));
    bench_tracker!("abacus", Abacus::new(p));
    bench_tracker!("blockhammer", BlockHammer::new(p));
    bench_tracker!("para", Para::new(p));
    bench_tracker!("pride", Pride::new(p));
    bench_tracker!("prac", Prac::new(p));
    group.finish();
}

fn bench_llbc(c: &mut Criterion) {
    let cipher = Llbc::new(21, 42);
    let mut group = c.benchmark_group("llbc");
    group.bench_function("encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & 0x1F_FFFF;
            black_box(cipher.encrypt(black_box(x)))
        });
    });
    group.bench_function("decrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & 0x1F_FFFF;
            black_box(cipher.decrypt(black_box(x)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trackers, bench_llbc);
criterion_main!(benches);
