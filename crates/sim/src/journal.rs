//! Checkpoint journal for resumable sweeps.
//!
//! A [`SweepJournal`] is an append-only, checksummed, line-oriented log of
//! sweep progress: a `start` record pinning the sweep's identity (the
//! stable content hash of its canonical spec JSON — see
//! [`SweepJournal::sweep_hash`]) plus the full spec so a restarted server
//! can resurrect the sweep; one `cell` record per completed cell key;
//! and an `end` record once every cell finished cleanly. Records are
//! appended *after* the corresponding result is committed to the run
//! cache and fsynced line-by-line, so the journal never claims more than
//! the cache holds — a `kill -9` can at worst lose the final in-flight
//! record, and a torn last line fails its checksum and is skipped on
//! load instead of poisoning the whole journal.
//!
//! Resume is then a subtraction: completed cells answer from the cache
//! (byte-identically — the cache's own invariant), and only the
//! remainder re-executes. The resumed report is identical to an
//! uninterrupted run because cell results are deterministic and the
//! report is assembled in expansion order, not execution order.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sim_core::cache::{checksum64, content_key};

use crate::spec::SweepSpec;

/// Journal-format magic, bumped if the line envelope changes.
const MAGIC: &str = "dapper-journal1";

/// Progress of one sweep, reconstructed from the journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepProgress {
    /// The sweep's declared name (from the `start` record).
    pub name: String,
    /// Total cells the sweep declared at start.
    pub cells_declared: u64,
    /// The canonical spec JSON, for resurrection after a restart.
    pub spec_json: Option<String>,
    /// Keys of cells whose results are committed to the run cache.
    pub completed: BTreeSet<String>,
    /// Whether the sweep recorded a clean `end`.
    pub ended: bool,
}

impl SweepProgress {
    /// Whether this sweep was interrupted: started, never ended.
    pub fn unfinished(&self) -> bool {
        !self.ended
    }
}

/// Everything a journal file currently says, keyed by sweep hash.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    sweeps: BTreeMap<String, SweepProgress>,
    /// Lines that failed the checksum or shape checks (typically the torn
    /// tail of a `kill -9`).
    pub damaged_lines: u64,
}

impl JournalState {
    /// Progress for one sweep hash, if the journal has seen it.
    pub fn progress(&self, hash: &str) -> Option<&SweepProgress> {
        self.sweeps.get(hash)
    }

    /// Completed cell keys for one sweep (empty set if unknown).
    pub fn completed(&self, hash: &str) -> BTreeSet<String> {
        self.sweeps.get(hash).map(|p| p.completed.clone()).unwrap_or_default()
    }

    /// Sweeps that started but never recorded an `end`, in hash order.
    pub fn unfinished(&self) -> impl Iterator<Item = (&String, &SweepProgress)> {
        self.sweeps.iter().filter(|(_, p)| p.unfinished())
    }

    /// All sweeps the journal knows about.
    pub fn sweeps(&self) -> impl Iterator<Item = (&String, &SweepProgress)> {
        self.sweeps.iter()
    }
}

/// The append-only sweep checkpoint log (see the module docs).
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SweepJournal {
    /// Conventional journal filename inside a cache directory.
    pub const FILE_NAME: &'static str = "journal.log";

    /// Opens (creating if needed) the journal at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<SweepJournal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        // Seal a torn tail (kill -9 mid-append): if the last line never
        // got its newline, terminate it now so fresh records start on
        // their own line. The sealed fragment then fails its checksum on
        // load and is skipped — it can never swallow a good record.
        if let Ok(text) = std::fs::read_to_string(&path) {
            if !text.is_empty() && !text.ends_with('\n') {
                file.write_all(b"\n")?;
                file.sync_data()?;
            }
        }
        Ok(SweepJournal { path, file: Mutex::new(file) })
    }

    /// Opens the conventional journal inside a cache directory.
    pub fn in_cache_dir(cache_dir: impl AsRef<Path>) -> std::io::Result<SweepJournal> {
        SweepJournal::open(cache_dir.as_ref().join(SweepJournal::FILE_NAME))
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stable identity of a sweep: the content hash of its canonical
    /// spec JSON. Two textually different spec files that canonicalize
    /// identically share one journal identity (and one cache footprint).
    pub fn sweep_hash(spec: &SweepSpec) -> String {
        content_key(spec.to_json().render().as_bytes())
    }

    /// Records that a sweep began: its identity, size, and full spec.
    pub fn record_start(&self, hash: &str, spec: &SweepSpec, cells: u64) -> std::io::Result<()> {
        let spec_json = spec.to_json().render();
        debug_assert!(!spec_json.contains('\n'), "compact JSON is single-line");
        self.append(&format!("start {hash} {cells} {spec_json}"))
    }

    /// Records one completed cell (call only after the result is in the
    /// run cache, so the journal never over-claims).
    pub fn record_cell(&self, hash: &str, cell_key: &str) -> std::io::Result<()> {
        self.append(&format!("cell {hash} {cell_key}"))
    }

    /// Records that every cell of a sweep finished cleanly.
    pub fn record_end(&self, hash: &str) -> std::io::Result<()> {
        self.append(&format!("end {hash}"))
    }

    fn append(&self, payload: &str) -> std::io::Result<()> {
        let line = format!("{MAGIC} {:016x} {payload}\n", checksum64(payload.as_bytes()));
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        // Per-record durability: a cell record must survive the very
        // crash the journal exists to recover from. Cells cost far more
        // to simulate than an fsync costs to issue.
        file.sync_data()
    }

    /// Replays the journal from disk into a [`JournalState`], skipping
    /// (and counting) damaged lines.
    pub fn load(&self) -> std::io::Result<JournalState> {
        let mut state = JournalState::default();
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let Some(payload) = decode_line(line) else {
                state.damaged_lines += 1;
                continue;
            };
            if !apply(&mut state, payload) {
                state.damaged_lines += 1;
            }
        }
        Ok(state)
    }
}

/// Verifies one journal line's magic + checksum, returning the payload.
fn decode_line(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (sum, payload) = rest.split_once(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (checksum64(payload.as_bytes()) == sum).then_some(payload)
}

/// Applies one decoded payload to the state; `false` if malformed.
fn apply(state: &mut JournalState, payload: &str) -> bool {
    let mut parts = payload.splitn(2, ' ');
    let (Some(kind), Some(rest)) = (parts.next(), parts.next()) else {
        return false;
    };
    match kind {
        "start" => {
            let mut parts = rest.splitn(3, ' ');
            let (Some(hash), Some(cells), Some(spec_json)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return false;
            };
            let Ok(cells) = cells.parse::<u64>() else {
                return false;
            };
            let name = sim_core::json::Json::parse(spec_json)
                .ok()
                .and_then(|j| match j.get("name") {
                    Some(sim_core::json::Json::Str(s)) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            let entry = state.sweeps.entry(hash.to_string()).or_default();
            entry.name = name;
            entry.cells_declared = cells;
            entry.spec_json = Some(spec_json.to_string());
            true
        }
        "cell" => {
            let mut parts = rest.splitn(2, ' ');
            let (Some(hash), Some(key)) = (parts.next(), parts.next()) else {
                return false;
            };
            state.sweeps.entry(hash.to_string()).or_default().completed.insert(key.to_string());
            true
        }
        "end" => {
            state.sweeps.entry(rest.to_string()).or_default().ended = true;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dapper-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join(SweepJournal::FILE_NAME)
    }

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("journal-test");
        spec.workloads = vec!["mcf_like".to_string()];
        spec.trackers = vec!["none".to_string()];
        spec.options.window_us = Some(20.0);
        spec.options.seed = Some(7);
        spec
    }

    #[test]
    fn journal_round_trips_progress() {
        let j = SweepJournal::open(scratch("roundtrip")).unwrap();
        let spec = tiny_spec();
        let hash = SweepJournal::sweep_hash(&spec);
        j.record_start(&hash, &spec, 2).unwrap();
        j.record_cell(&hash, "aaaa").unwrap();
        j.record_cell(&hash, "bbbb").unwrap();
        let state = j.load().unwrap();
        let p = state.progress(&hash).unwrap();
        assert_eq!(p.cells_declared, 2);
        assert_eq!(p.name, "journal-test");
        assert_eq!(p.completed.len(), 2);
        assert!(p.unfinished(), "no end record yet");
        assert_eq!(state.unfinished().count(), 1);
        j.record_end(&hash).unwrap();
        let state = j.load().unwrap();
        assert!(!state.progress(&hash).unwrap().unfinished());
        assert_eq!(state.damaged_lines, 0);
        // The embedded spec resurrects the sweep identically.
        let back =
            SweepSpec::from_json_str(state.progress(&hash).unwrap().spec_json.as_ref().unwrap())
                .unwrap();
        assert_eq!(SweepJournal::sweep_hash(&back), hash);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = scratch("torn");
        let j = SweepJournal::open(&path).unwrap();
        let spec = tiny_spec();
        let hash = SweepJournal::sweep_hash(&spec);
        j.record_start(&hash, &spec, 3).unwrap();
        j.record_cell(&hash, "cccc").unwrap();
        drop(j);
        // Simulate kill -9 mid-append: a half-written record at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("dapper-journal1 0123456789abcdef cell ");
        std::fs::write(&path, &text).unwrap();
        let j = SweepJournal::open(&path).unwrap();
        let state = j.load().unwrap();
        assert_eq!(state.damaged_lines, 1, "the torn line is counted, not fatal");
        let p = state.progress(&hash).unwrap();
        assert_eq!(p.completed, BTreeSet::from(["cccc".to_string()]));
        // And appending after the torn tail keeps working: the journal
        // only ever appends whole lines, so a fresh record follows the
        // damage and still parses.
        j.record_cell(&hash, "dddd").unwrap();
        assert_eq!(j.load().unwrap().progress(&hash).unwrap().completed.len(), 2);
    }

    #[test]
    fn foreign_garbage_lines_are_counted_as_damage() {
        let path = scratch("garbage");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not a journal line\n").unwrap();
        let j = SweepJournal::open(&path).unwrap();
        let state = j.load().unwrap();
        assert_eq!(state.damaged_lines, 1);
        assert_eq!(state.sweeps().count(), 0);
    }

    #[test]
    fn missing_journal_loads_empty() {
        let j = SweepJournal::open(scratch("missing")).unwrap();
        // open() creates the file; loading an empty file is empty state.
        let state = j.load().unwrap();
        assert_eq!(state.sweeps().count(), 0);
        assert_eq!(state.damaged_lines, 0);
    }
}
