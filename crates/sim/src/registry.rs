//! The process-wide tracker registry.
//!
//! `sim` assembles the default [`TrackerRegistry`] from every built-in
//! tracker — the insecure baseline, the eight schemes in `trackers`, and
//! the DAPPER variants from their home crate — in the order the paper's
//! tables list them. Third-party trackers join the same namespace through
//! [`register_tracker`]; everything downstream (experiments, spec files,
//! the attacklab CLI) resolves names through this one registry, so a
//! registered tracker is immediately sweepable from config.
//!
//! ```
//! let keys: Vec<String> = sim::registry::tracker_keys();
//! assert_eq!(keys.first().map(String::as_str), Some("none"));
//! assert!(keys.iter().any(|k| k == "dapper-h"));
//! ```

use sim_core::registry::{RegistryError, TrackerParams, TrackerRegistry, TrackerSpec};
use sim_core::tracker::RowHammerTracker;
use std::sync::{Arc, OnceLock, RwLock};

/// The four scalable baselines of Figs. 1 and 3-5, by registry key.
pub const SCALABLE_BASELINES: [&str; 4] = ["hydra", "start", "abacus", "comet"];

fn global() -> &'static RwLock<TrackerRegistry> {
    static REGISTRY: OnceLock<RwLock<TrackerRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = TrackerRegistry::new();
        reg.register(sim_core::registry::null_spec()).expect("fresh registry");
        trackers::register_builtin(&mut reg).expect("built-in trackers");
        dapper::register_builtin(&mut reg).expect("DAPPER variants");
        RwLock::new(reg)
    })
}

/// Runs `f` with a read lock on the global registry. Keep the closure
/// cheap (resolve, clone an `Arc`, list keys) — building or simulating
/// inside it would serialize sweeps.
pub fn with_registry<R>(f: impl FnOnce(&TrackerRegistry) -> R) -> R {
    f(&global().read().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Registers a third-party [`TrackerSpec`] into the global registry,
/// making it constructible by key everywhere (experiments, spec files,
/// the red-team CLI). Fails if the key or an alias is already taken.
pub fn register_tracker(spec: TrackerSpec) -> Result<(), RegistryError> {
    global().write().unwrap_or_else(std::sync::PoisonError::into_inner).register(spec)
}

/// Resolves a tracker name (key, display name, or alias; case and
/// separator insensitive) to its spec.
pub fn resolve(name: &str) -> Result<Arc<TrackerSpec>, RegistryError> {
    with_registry(|reg| reg.resolve(name).cloned())
}

/// Canonical keys of every registered tracker, in registration order
/// (the paper's table order for the built-ins).
pub fn tracker_keys() -> Vec<String> {
    with_registry(|reg| reg.keys().map(str::to_string).collect())
}

/// Builds a tracker instance by name through the global registry.
pub fn build_tracker(
    name: &str,
    params: &TrackerParams,
) -> Result<Box<dyn RowHammerTracker>, RegistryError> {
    resolve(name)?.build(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::Geometry;
    use sim_core::registry::ParamSpec;
    use sim_core::tracker::NullTracker;

    #[test]
    fn builtins_register_in_paper_order() {
        let keys = tracker_keys();
        let expected = [
            "none",
            "hydra",
            "start",
            "comet",
            "abacus",
            "blockhammer",
            "para",
            "pride",
            "prac",
            "dapper-s",
            "dapper-h",
        ];
        assert_eq!(&keys[..expected.len()], &expected[..]);
    }

    #[test]
    fn every_builtin_builds_with_defaults() {
        let p = TrackerParams::new(500, Geometry::paper_baseline(), 0, 7);
        for key in tracker_keys() {
            let t = build_tracker(&key, &p)
                .unwrap_or_else(|e| panic!("{key} must build with defaults: {e}"));
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn third_party_registration_is_visible_globally() {
        // Key chosen to avoid collision with other tests in this binary.
        let spec =
            TrackerSpec::new("unit-test-tracker", "UnitTest", |_p| Ok(Box::new(NullTracker)))
                .param(ParamSpec::int("knob", "a knob", 1));
        register_tracker(spec).expect("fresh key");
        let p = TrackerParams::new(500, Geometry::paper_baseline(), 0, 7);
        assert!(build_tracker("Unit_Test_Tracker", &p).is_ok());
        let err = register_tracker(TrackerSpec::new("unit-test-tracker", "X", |_p| {
            Ok(Box::new(NullTracker))
        }));
        assert!(err.is_err(), "duplicate keys must be rejected");
    }

    #[test]
    fn start_is_the_only_llc_reserver() {
        for key in tracker_keys() {
            let spec = resolve(&key).unwrap();
            assert_eq!(spec.llc_reserved(), key == "start", "{key}");
        }
    }
}
