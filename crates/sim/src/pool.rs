//! The sharded memory-phase executor.
//!
//! A [`ShardPool`] is a persistent set of worker threads that
//! [`memctrl::ChannelShard`]s are handed to for one bus cycle at a time:
//! the coordinator moves each active shard's box to a worker
//! ([`ShardPool::dispatch`]), advances its own share inline, and blocks
//! until every dispatched shard comes home ([`ShardPool::collect`]).
//! Ownership transfer is the whole synchronization story — a shard is
//! never aliased, so there are no locks and no ordering hazards; the
//! deterministic merge happens afterwards, when the system drains
//! completion buffers in channel-index order.
//!
//! Panic safety mirrors [`crate::runner`]: a worker catches the unwinding
//! panic, stringifies the payload, and sends it back in the shard's place,
//! so the coordinator can re-raise it with channel attribution instead of
//! deadlocking on a result that will never arrive.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use memctrl::ChannelShard;
use sim_core::time::Cycle;

use crate::runner::panic_message;

/// A dispatched job: `(channel index, the shard, the cycle to advance to)`.
type Job = (usize, Box<ChannelShard>, Cycle);

/// A finished job: the shard coming home, or the worker's panic message
/// (the shard itself is lost to the unwind in that case — the coordinator
/// re-raises, it never keeps simulating).
type Outcome = (usize, Result<Box<ChannelShard>, String>);

/// A persistent pool of shard workers (see the module docs).
///
/// Workers park on their private channel between cycles; dropping the pool
/// hangs up every channel and joins the threads.
pub(crate) struct ShardPool {
    senders: Vec<mpsc::Sender<Job>>,
    results: mpsc::Receiver<Outcome>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` (>= 1) shard workers.
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool without workers cannot make progress");
        let (result_tx, results) = mpsc::channel::<Outcome>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            let result_tx = result_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("shard-worker-{w}"))
                .spawn(move || {
                    while let Ok((ch, mut shard, now)) = rx.recv() {
                        let outcome = catch_unwind(AssertUnwindSafe(move || {
                            shard.advance_to(now);
                            shard
                        }))
                        .map_err(panic_message);
                        if result_tx.send((ch, outcome)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, results, handles }
    }

    /// Number of worker lanes.
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Hands `shard` to worker `lane` to advance through bus cycle `now`.
    pub(crate) fn dispatch(&self, lane: usize, ch: usize, shard: Box<ChannelShard>, now: Cycle) {
        self.senders[lane].send((ch, shard, now)).expect("shard worker alive");
    }

    /// Blocks until one dispatched shard comes home. Call exactly once per
    /// [`ShardPool::dispatch`] before reading any shard state.
    pub(crate) fn collect(&self) -> Outcome {
        self.results.recv().expect("a dispatched shard always reports back")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Hanging up the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind (impossible by
            // construction, but cheap to tolerate) must not abort drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::{DramChannel, TimingParams};
    use memctrl::{ChannelController, CtrlConfig};
    use sim_core::addr::{DramAddr, Geometry, PhysAddr};
    use sim_core::config::MitigationKind;
    use sim_core::req::{AccessKind, MemRequest, SourceId};
    use sim_core::tracker::NullTracker;

    fn shard(ch: u8) -> Box<ChannelShard> {
        let dram = DramChannel::new(Geometry::tiny(), TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        Box::new(ChannelShard::new(ChannelController::new(ch, dram, Box::new(NullTracker), cfg)))
    }

    fn rd(ch: u8, id: u64, row: u32) -> MemRequest {
        let d = DramAddr::new(ch, 0, 0, 0, row, 0);
        MemRequest::new(id, SourceId(0), AccessKind::Read, PhysAddr(0), d, 0)
    }

    #[test]
    fn pooled_advance_matches_inline_advance() {
        let pool = ShardPool::new(2);
        let mut pooled: Vec<Option<Box<ChannelShard>>> = (0..4).map(|ch| Some(shard(ch))).collect();
        let mut inline: Vec<Box<ChannelShard>> = (0..4).map(shard).collect();
        for (ch, slot) in pooled.iter_mut().enumerate() {
            assert!(slot.as_mut().unwrap().inject(rd(ch as u8, 1 + ch as u64, 7)));
        }
        for (ch, s) in inline.iter_mut().enumerate() {
            assert!(s.inject(rd(ch as u8, 1 + ch as u64, 7)));
        }
        for now in 0..400 {
            for (ch, slot) in pooled.iter_mut().enumerate() {
                let s = slot.take().unwrap();
                pool.dispatch(ch % pool.workers(), ch, s, now);
            }
            for _ in 0..4 {
                let (ch, outcome) = pool.collect();
                pooled[ch] = Some(outcome.expect("no panic"));
            }
            for s in inline.iter_mut() {
                s.advance_to(now);
            }
        }
        for (slot, s) in pooled.iter_mut().zip(inline.iter_mut()) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            slot.as_mut().unwrap().drain_completions_into(&mut a);
            s.drain_completions_into(&mut b);
            assert_eq!(a, b, "pooled and inline advance agree");
            assert!(!a.is_empty(), "the read completed");
            assert_eq!(slot.as_ref().unwrap().step_counts(), s.step_counts());
        }
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = ShardPool::new(3);
        pool.dispatch(1, 0, shard(0), 0);
        let (ch, outcome) = pool.collect();
        assert_eq!(ch, 0);
        assert!(outcome.is_ok());
        drop(pool); // must not hang
    }
}
