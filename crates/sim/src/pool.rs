//! The sharded memory-phase executor.
//!
//! A [`ShardPool`] is a persistent set of worker threads that
//! [`memctrl::ChannelShard`]s are handed to for one bus cycle at a time:
//! the coordinator moves each active shard's box to a worker
//! ([`ShardPool::dispatch`]), advances its own share inline, and blocks
//! until every dispatched shard comes home ([`ShardPool::collect`]).
//! Ownership transfer is the whole synchronization story — a shard is
//! never aliased, so there are no locks and no ordering hazards; the
//! deterministic merge happens afterwards, when the system drains
//! completion buffers in channel-index order.
//!
//! Panic safety mirrors [`crate::runner`]: a worker catches the unwinding
//! panic, stringifies the payload, and sends it back in the shard's place,
//! so the coordinator can re-raise it with channel attribution instead of
//! deadlocking on a result that will never arrive.
//!
//! Fault injection adds a third, *recoverable* outcome: a worker armed
//! with a [`FaultSite::ShardWorker`] kill hands its shard back untouched
//! ([`ShardOutcome::Died`]) and exits its thread. Because the shard
//! crosses the channel unprocessed, no state is lost — the coordinator
//! advances it inline, respawns the lane, and the cycle's results are
//! bit-identical to an undisturbed run. (An actual mid-advance panic
//! stays fatal: the shard is lost to the unwind and no recovery could be
//! sound.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use memctrl::ChannelShard;
use sim_core::fault::{FaultAction, FaultSite, Injector};
use sim_core::time::Cycle;

use crate::runner::panic_message;

/// A dispatched job: `(channel index, the shard, the cycle to advance to)`.
type Job = (usize, Box<ChannelShard>, Cycle);

/// How a dispatched shard came home.
pub(crate) enum ShardOutcome {
    /// Advanced through the cycle; business as usual.
    Advanced(Box<ChannelShard>),
    /// The worker died (injected) before touching the shard — it comes
    /// home unprocessed and the lane needs a respawn.
    Died(Box<ChannelShard>),
    /// The advance panicked; the shard is lost to the unwind.
    Panicked(String),
}

/// A finished job: `(lane, channel index, outcome)`.
type Outcome = (usize, usize, ShardOutcome);

/// A persistent pool of shard workers (see the module docs).
///
/// Workers park on their private channel between cycles; dropping the pool
/// hangs up every channel and joins the threads.
pub(crate) struct ShardPool {
    senders: Vec<mpsc::Sender<Job>>,
    results: mpsc::Receiver<Outcome>,
    result_tx: mpsc::Sender<Outcome>,
    handles: Vec<thread::JoinHandle<()>>,
    faults: Option<Arc<Injector>>,
    respawns: u64,
}

impl ShardPool {
    /// Spawns `workers` (>= 1) shard workers. `faults` arms the
    /// [`FaultSite::ShardWorker`] probe in every lane (chaos tests only).
    pub(crate) fn new(workers: usize, faults: Option<Arc<Injector>>) -> Self {
        assert!(workers >= 1, "a pool without workers cannot make progress");
        let (result_tx, results) = mpsc::channel::<Outcome>();
        let mut pool = Self {
            senders: Vec::with_capacity(workers),
            results,
            result_tx,
            handles: Vec::with_capacity(workers),
            faults,
            respawns: 0,
        };
        for lane in 0..workers {
            let (tx, handle) = pool.spawn_worker(lane);
            pool.senders.push(tx);
            pool.handles.push(handle);
        }
        pool
    }

    fn spawn_worker(&self, lane: usize) -> (mpsc::Sender<Job>, thread::JoinHandle<()>) {
        let (tx, rx) = mpsc::channel::<Job>();
        let result_tx = self.result_tx.clone();
        let faults = self.faults.clone();
        let handle = thread::Builder::new()
            .name(format!("shard-worker-{lane}"))
            .spawn(move || {
                while let Ok((ch, mut shard, now)) = rx.recv() {
                    if let Some(inj) = faults.as_ref() {
                        if inj.check_indexed(FaultSite::ShardWorker, lane as u64)
                            == Some(FaultAction::KillWorker)
                        {
                            // Hand the shard back untouched and die: the
                            // coordinator advances it inline and respawns
                            // this lane, so nothing is lost.
                            let _ = result_tx.send((lane, ch, ShardOutcome::Died(shard)));
                            return;
                        }
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(move || {
                        shard.advance_to(now);
                        shard
                    }))
                    .map_or_else(
                        |p| ShardOutcome::Panicked(panic_message(p)),
                        ShardOutcome::Advanced,
                    );
                    if result_tx.send((lane, ch, outcome)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn shard worker");
        (tx, handle)
    }

    /// Number of worker lanes.
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Replaces the worker on `lane` after a (injected) death. The dead
    /// thread's sender is dropped; its join handle stays queued for drop.
    pub(crate) fn respawn(&mut self, lane: usize) {
        let (tx, handle) = self.spawn_worker(lane);
        self.senders[lane] = tx;
        self.handles.push(handle);
        self.respawns += 1;
    }

    /// How many lanes have been respawned after worker deaths.
    pub(crate) fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Hands `shard` to worker `lane` to advance through bus cycle `now`.
    pub(crate) fn dispatch(&self, lane: usize, ch: usize, shard: Box<ChannelShard>, now: Cycle) {
        self.senders[lane].send((ch, shard, now)).expect("shard worker alive");
    }

    /// Blocks until one dispatched shard comes home. Call exactly once per
    /// [`ShardPool::dispatch`] before reading any shard state.
    pub(crate) fn collect(&self) -> Outcome {
        self.results.recv().expect("a dispatched shard always reports back")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Hanging up the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind (impossible by
            // construction, but cheap to tolerate) must not abort drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::{DramChannel, TimingParams};
    use memctrl::{ChannelController, CtrlConfig};
    use sim_core::addr::{DramAddr, Geometry, PhysAddr};
    use sim_core::config::MitigationKind;
    use sim_core::fault::FaultPlan;
    use sim_core::req::{AccessKind, MemRequest, SourceId};
    use sim_core::tracker::NullTracker;

    fn shard(ch: u8) -> Box<ChannelShard> {
        let dram = DramChannel::new(Geometry::tiny(), TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        Box::new(ChannelShard::new(ChannelController::new(ch, dram, Box::new(NullTracker), cfg)))
    }

    fn rd(ch: u8, id: u64, row: u32) -> MemRequest {
        let d = DramAddr::new(ch, 0, 0, 0, row, 0);
        MemRequest::new(id, SourceId(0), AccessKind::Read, PhysAddr(0), d, 0)
    }

    #[test]
    fn pooled_advance_matches_inline_advance() {
        let mut pool = ShardPool::new(2, None);
        let mut pooled: Vec<Option<Box<ChannelShard>>> = (0..4).map(|ch| Some(shard(ch))).collect();
        let mut inline: Vec<Box<ChannelShard>> = (0..4).map(shard).collect();
        for (ch, slot) in pooled.iter_mut().enumerate() {
            assert!(slot.as_mut().unwrap().inject(rd(ch as u8, 1 + ch as u64, 7)));
        }
        for (ch, s) in inline.iter_mut().enumerate() {
            assert!(s.inject(rd(ch as u8, 1 + ch as u64, 7)));
        }
        for now in 0..400 {
            for (ch, slot) in pooled.iter_mut().enumerate() {
                let s = slot.take().unwrap();
                pool.dispatch(ch % pool.workers(), ch, s, now);
            }
            for _ in 0..4 {
                let (lane, ch, outcome) = pool.collect();
                match outcome {
                    ShardOutcome::Advanced(s) => pooled[ch] = Some(s),
                    ShardOutcome::Died(mut s) => {
                        s.advance_to(now);
                        pooled[ch] = Some(s);
                        pool.respawn(lane);
                    }
                    ShardOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
                }
            }
            for s in inline.iter_mut() {
                s.advance_to(now);
            }
        }
        for (slot, s) in pooled.iter_mut().zip(inline.iter_mut()) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            slot.as_mut().unwrap().drain_completions_into(&mut a);
            s.drain_completions_into(&mut b);
            assert_eq!(a, b, "pooled and inline advance agree");
            assert!(!a.is_empty(), "the read completed");
            assert_eq!(slot.as_ref().unwrap().step_counts(), s.step_counts());
        }
    }

    #[test]
    fn killed_worker_hands_back_its_shard_and_the_lane_respawns() {
        let mut pool = ShardPool::new(2, Some(FaultPlan::new(5).kill_worker_once(1).arm()));
        let mut a = shard(0);
        assert!(a.inject(rd(0, 1, 3)));
        // Lane 1 is armed to die on its first job.
        pool.dispatch(1, 0, a, 0);
        let (lane, ch, outcome) = pool.collect();
        assert_eq!((lane, ch), (1, 0));
        let mut came_home = match outcome {
            ShardOutcome::Died(s) => s,
            _ => panic!("the armed lane must die"),
        };
        pool.respawn(lane);
        assert_eq!(pool.respawns(), 1);
        // The shard is untouched; the coordinator advances it inline and
        // keeps dispatching to the respawned lane (the fault budget is
        // spent, so the new worker lives).
        for now in 0..400 {
            came_home.advance_to(now);
            pool.dispatch(1, 0, came_home, now + 1);
            let (_, _, outcome) = pool.collect();
            came_home = match outcome {
                ShardOutcome::Advanced(s) => s,
                ShardOutcome::Died(_) => panic!("budget spent; the lane must live"),
                ShardOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
            };
        }
        let mut done = Vec::new();
        came_home.drain_completions_into(&mut done);
        assert!(!done.is_empty(), "the read still completed after the death");
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = ShardPool::new(3, None);
        pool.dispatch(1, 0, shard(0), 0);
        let (lane, ch, outcome) = pool.collect();
        assert_eq!(ch, 0);
        assert_eq!(lane, 1);
        assert!(matches!(outcome, ShardOutcome::Advanced(_)));
        drop(pool); // must not hang
    }
}
