//! Content-addressed run cache: canonical experiment cells in, complete
//! [`ExperimentResult`]s out.
//!
//! `tests/determinism.rs` proves the contract that makes this sound: an
//! identical (spec, tracker params, workload, seed) tuple yields a
//! bit-identical [`RunStats`]. This module turns that property into
//! reuse — every experiment canonicalizes to a **cell descriptor** (all
//! defaults resolved, every identity-bearing knob listed), the
//! descriptor hashes to a stable key via [`sim_core::cache::content_key`],
//! and the full result (stats, reference, telemetry blob) persists under
//! that key in a [`DiskStore`]. A warm re-run of an unchanged spec
//! performs zero simulations; an edited spec re-runs only the changed
//! frontier.
//!
//! # Canonicalization
//!
//! The descriptor is a canonical JSON document covering:
//!
//! * [`CACHE_EPOCH`] — bumped whenever canonicalization or the payload
//!   codec changes meaning, invalidating all prior entries at once,
//! * the workload id and the canonical tracker key (aliases resolve to
//!   the same key, so `DAPPER_H` and `dapper-h` are the same cell),
//! * the **fully resolved** tracker parameter map — defaults merged and
//!   values coerced, so an override spelled `5` and one spelled `5.0`,
//!   or an explicit default, canonicalize identically,
//! * the **resolved** attack (`tailored` resolves to the concrete
//!   pattern chosen for the tracker, so it shares a cell with an
//!   explicit naming of that pattern); custom attacks are uncacheable
//!   unless the caller supplies an identity string covering the whole
//!   trace-generation genome (see [`cell_key_with_attack_id`]),
//! * every [`sim_core::SystemConfig`] field that shapes results
//!   (geometry, CPU, LLC, N_RH, blast radius, mitigation kind, window,
//!   instruction budget, seed) — but **not**
//!   [`Threads`](sim_core::config::Threads): the executor produces
//!   bit-identical results at any lane count, so a sequential and a
//!   sharded run of the same cell share one cache entry by design
//!   (`tests/cache_keys.rs` pins this),
//! * the engine, the normalization mode, and the full telemetry spec
//!   (recorders change what a result *carries*, so they are part of
//!   identity, not just presentation).
//!
//! Each entry embeds its descriptor and the reader compares it
//! byte-for-byte, so even a hash collision cannot alias results; a
//! mismatched or undecodable entry is evicted and recomputed, never
//! returned.

use crate::experiment::{Experiment, ExperimentResult};
use crate::metrics::{RunStats, RunTelemetry};
use crate::runner::try_run_parallel_observed;
use crate::spec::{SpecError, SweepReport, SweepSpec};
use crate::system::Engine;
use sim_core::cache::{content_key, CacheStats, DiskStore};
use sim_core::json::Json;
use sim_core::stats::MemStats;
use sim_core::telemetry::{
    MitigationKindTag, MitigationRecord, SlowdownPoint, SlowdownReference, SlowdownTrace,
    WindowSample,
};
use sim_core::ParamValue;

/// Cache-format epoch. Part of every cell descriptor: bump it whenever
/// canonicalization or the entry codec changes meaning, and every prior
/// entry becomes unreachable (superseded, not misread). The golden-key
/// test in `tests/cache_keys.rs` fails loudly on *accidental* drift;
/// bumping this constant is the intentional-change escape hatch.
pub const CACHE_EPOCH: u32 = 1;

/// A canonicalized experiment cell: the content-addressed `key` (32 hex
/// chars) and the full `descriptor` it hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    /// Stable content hash of the descriptor — the on-disk address.
    pub key: String,
    /// Canonical JSON descriptor of the cell (embedded in the entry and
    /// verified on read).
    pub descriptor: String,
}

fn param_tag(v: &ParamValue) -> String {
    match v {
        ParamValue::Int(i) => format!("i:{i}"),
        ParamValue::Float(f) => format!("f:{f}"),
        ParamValue::Bool(b) => format!("b:{b}"),
        ParamValue::Str(s) => format!("s:{s}"),
    }
}

fn engine_tag(e: Engine) -> &'static str {
    match e {
        Engine::Dense => "dense",
        Engine::EventDriven => "event-driven",
    }
}

/// The canonical descriptor of an experiment, or `None` when the cell is
/// uncacheable (a custom attack without a supplied identity, or tracker
/// parameters that no longer resolve).
fn descriptor(e: &Experiment, attack_id: Option<&str>) -> Option<Json> {
    let params = e.tracker.spec().resolve_params(e.tracker.params()).ok()?;
    let attack = if e.custom_attack.is_some() {
        // The factory closure is opaque; only an explicit identity that
        // covers the whole trace-generation genome makes caching sound.
        format!("custom:{}", attack_id?)
    } else {
        match e.attack.resolve(&e.tracker) {
            Some(a) => format!("attack:{}", a.name()),
            None => "benign".to_string(),
        }
    };
    let g = e.cfg.geometry;
    let mut fields = vec![
        ("epoch", Json::count(u64::from(CACHE_EPOCH))),
        ("workload", Json::str(&e.workload)),
        ("tracker", Json::str(e.tracker.key())),
        (
            "params",
            Json::Obj(params.iter().map(|(k, v)| (k.clone(), Json::str(param_tag(v)))).collect()),
        ),
        ("attack", Json::str(attack)),
        (
            "geometry",
            Json::obj([
                ("channels", Json::count(u64::from(g.channels))),
                ("ranks", Json::count(u64::from(g.ranks))),
                ("bank_groups", Json::count(u64::from(g.bank_groups))),
                ("banks_per_group", Json::count(u64::from(g.banks_per_group))),
                ("rows_per_bank", Json::count(u64::from(g.rows_per_bank))),
                ("row_bytes", Json::count(u64::from(g.row_bytes))),
            ]),
        ),
        (
            "cpu",
            Json::obj([
                ("cores", Json::count(u64::from(e.cfg.cpu.cores))),
                ("width", Json::count(u64::from(e.cfg.cpu.width))),
                ("rob_entries", Json::count(u64::from(e.cfg.cpu.rob_entries))),
            ]),
        ),
        (
            "llc",
            Json::obj([
                ("capacity_bytes", Json::count(e.cfg.llc.capacity_bytes)),
                ("ways", Json::count(u64::from(e.cfg.llc.ways))),
                ("line_bytes", Json::count(u64::from(e.cfg.llc.line_bytes))),
                ("reserved_ways", Json::count(u64::from(e.cfg.llc.reserved_ways))),
            ]),
        ),
        ("nrh", Json::count(u64::from(e.cfg.nrh))),
        ("blast_radius", Json::count(u64::from(e.cfg.blast_radius))),
        ("mitigation", Json::str(e.cfg.mitigation.to_string())),
        ("window_cycles", Json::hex(e.cfg.window_cycles)),
        ("max_instructions", Json::hex(e.cfg.max_instructions)),
        ("seed", Json::hex(e.cfg.seed)),
        ("engine", Json::str(engine_tag(e.engine))),
        ("isolate", Json::Bool(e.isolate_tracker_overhead)),
        (
            "telemetry",
            Json::obj([
                ("oracle", Json::Bool(e.telemetry.oracle)),
                ("time_series", Json::Bool(e.telemetry.time_series)),
                ("slowdown", Json::Bool(e.telemetry.slowdown)),
                ("mitigation_log", Json::Bool(e.telemetry.mitigation_log)),
                ("window_us", e.telemetry.window_us.map_or(Json::Null, Json::num)),
            ]),
        ),
    ];
    // The attacker descriptor is appended only when the experiment carries
    // one: attacker-free cells keep their pre-attackpipe keys (pinned by
    // the goldens in tests/cache_keys.rs), while two attacker cells
    // differing in knowledge, budget, or seed can never collide.
    if let Some(a) = &e.attacker {
        fields.push((
            "attacker",
            Json::obj([
                ("knowledge", Json::str(a.knowledge.key())),
                ("recon_budget", Json::count(a.recon_budget)),
                ("seed", Json::hex(a.seed)),
            ]),
        ));
    }
    Some(Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()))
}

/// Canonical cell identity string for an experiment — what
/// [`SweepSpec::expand`] dedupes on. `None` for uncacheable cells (which
/// are never deduped: two opaque custom attacks cannot be proven equal).
pub(crate) fn cell_identity(e: &Experiment) -> Option<String> {
    descriptor(e, None).map(|d| d.render())
}

/// The content-addressed key of an experiment cell, or `None` when the
/// cell is uncacheable (anonymous custom attacks need
/// [`cell_key_with_attack_id`]).
pub fn cell_key(e: &Experiment) -> Option<CellKey> {
    cell_key_with_attack_id(e, None)
}

/// Like [`cell_key`], with an explicit identity for a custom attack. The
/// caller asserts `attack_id` covers everything the attack's trace
/// factory depends on besides the experiment's geometry and seed
/// (attacklab passes the full scenario genome JSON).
pub fn cell_key_with_attack_id(e: &Experiment, attack_id: Option<&str>) -> Option<CellKey> {
    let descriptor = descriptor(e, attack_id)?.render();
    Some(CellKey { key: content_key(descriptor.as_bytes()), descriptor })
}

// ---------------------------------------------------------------------------
// Result codec
// ---------------------------------------------------------------------------
//
// The export-oriented `to_json` methods on results are intentionally
// lossy (derived columns, dropped reference series). Caching needs the
// complete state back, so the cache speaks its own codec: every field of
// `ExperimentResult` — including telemetry traces — encodes exactly and
// decodes into an equal value. `Json::render` writes floats in shortest
// round-trip form, so a decoded result re-renders byte-identically.

type Decoded<T> = Result<T, String>;

fn want<'a>(j: &'a Json, key: &str) -> Decoded<&'a Json> {
    j.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn as_u64(j: &Json) -> Decoded<u64> {
    match j {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
            Ok(*n as u64)
        }
        other => Err(format!("expected a count, got {}", other.render())),
    }
}

fn as_f64(j: &Json) -> Decoded<f64> {
    match j {
        Json::Num(n) => Ok(*n),
        // `Json::num` writes non-finite floats as null; read them back as
        // NaN so re-rendering stays byte-identical.
        Json::Null => Ok(f64::NAN),
        other => Err(format!("expected a number, got {}", other.render())),
    }
}

fn as_str(j: &Json) -> Decoded<&str> {
    match j {
        Json::Str(s) => Ok(s),
        other => Err(format!("expected a string, got {}", other.render())),
    }
}

fn as_arr(j: &Json) -> Decoded<&[Json]> {
    match j {
        Json::Arr(items) => Ok(items),
        other => Err(format!("expected an array, got {}", other.render())),
    }
}

fn u64_vec(j: &Json) -> Decoded<Vec<u64>> {
    as_arr(j)?.iter().map(as_u64).collect()
}

fn counts(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::count(v)).collect())
}

fn mem_from_json(j: &Json) -> Decoded<MemStats> {
    let f = |key| want(j, key).and_then(as_u64);
    Ok(MemStats {
        activations: f("activations")?,
        precharges: f("precharges")?,
        reads: f("reads")?,
        writes: f("writes")?,
        refreshes: f("refreshes")?,
        vrr_commands: f("vrr_commands")?,
        victim_rows_refreshed: f("victim_rows_refreshed")?,
        rfm_commands: f("rfm_commands")?,
        counter_reads: f("counter_reads")?,
        counter_writes: f("counter_writes")?,
        reset_sweeps: f("reset_sweeps")?,
        mitigation_block_cycles: f("mitigation_block_cycles")?,
        row_hits: f("row_hits")?,
        row_misses: f("row_misses")?,
    })
}

fn stats_to_json(s: &RunStats) -> Json {
    Json::obj([
        ("tracker", Json::str(&s.tracker)),
        ("cycles", Json::count(s.cycles)),
        ("retired", counts(&s.retired)),
        ("core_cycles", counts(&s.core_cycles)),
        ("mem", s.mem.to_json()),
        ("llc_hit_rate", Json::num(s.llc_hit_rate)),
        ("energy_mj", Json::num(s.energy_mj)),
        (
            "oracle",
            match s.oracle {
                Some((disturbance, violations)) => {
                    Json::Arr(vec![Json::count(u64::from(disturbance)), Json::count(violations)])
                }
                None => Json::Null,
            },
        ),
    ])
}

fn stats_from_json(j: &Json) -> Decoded<RunStats> {
    let oracle = match want(j, "oracle")? {
        Json::Null => None,
        pair => {
            let pair = as_arr(pair)?;
            if pair.len() != 2 {
                return Err("oracle pair must have two entries".into());
            }
            let disturbance = u32::try_from(as_u64(&pair[0])?)
                .map_err(|_| "oracle disturbance out of range".to_string())?;
            Some((disturbance, as_u64(&pair[1])?))
        }
    };
    Ok(RunStats {
        tracker: as_str(want(j, "tracker")?)?.to_string(),
        cycles: as_u64(want(j, "cycles")?)?,
        retired: u64_vec(want(j, "retired")?)?,
        core_cycles: u64_vec(want(j, "core_cycles")?)?,
        mem: mem_from_json(want(j, "mem")?)?,
        llc_hit_rate: as_f64(want(j, "llc_hit_rate")?)?,
        energy_mj: as_f64(want(j, "energy_mj")?)?,
        oracle,
    })
}

fn window_to_json(w: &WindowSample) -> Json {
    Json::obj([
        ("index", Json::count(w.index)),
        ("start", Json::count(w.start)),
        ("end", Json::count(w.end)),
        ("retired", counts(&w.retired)),
        ("core_cycles", counts(&w.core_cycles)),
        ("mem", w.mem.to_json()),
    ])
}

fn window_from_json(j: &Json) -> Decoded<WindowSample> {
    Ok(WindowSample {
        index: as_u64(want(j, "index")?)?,
        start: as_u64(want(j, "start")?)?,
        end: as_u64(want(j, "end")?)?,
        retired: u64_vec(want(j, "retired")?)?,
        core_cycles: u64_vec(want(j, "core_cycles")?)?,
        mem: mem_from_json(want(j, "mem")?)?,
    })
}

fn windows_to_json(windows: &[WindowSample]) -> Json {
    Json::Arr(windows.iter().map(window_to_json).collect())
}

fn windows_from_json(j: &Json) -> Decoded<Vec<WindowSample>> {
    as_arr(j)?.iter().map(window_from_json).collect()
}

fn trace_to_json(t: &SlowdownTrace) -> Json {
    let reference = match t.reference() {
        SlowdownReference::Flat(ipc) => {
            Json::obj([("flat", Json::Arr(ipc.iter().map(|&v| Json::num(v)).collect()))])
        }
        SlowdownReference::PerWindow(windows) => {
            Json::obj([("per_window", windows_to_json(windows))])
        }
    };
    Json::obj([
        ("reference", reference),
        ("benign", counts(&t.benign_cores().iter().map(|&c| c as u64).collect::<Vec<_>>())),
        (
            "points",
            Json::Arr(
                t.points()
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("index", Json::count(p.index)),
                            ("end", Json::count(p.end)),
                            ("normalized_ipc", Json::num(p.normalized_ipc)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn trace_from_json(j: &Json) -> Decoded<SlowdownTrace> {
    let r = want(j, "reference")?;
    let reference = if let Some(flat) = r.get("flat") {
        SlowdownReference::Flat(as_arr(flat)?.iter().map(as_f64).collect::<Decoded<_>>()?)
    } else if let Some(per_window) = r.get("per_window") {
        SlowdownReference::PerWindow(windows_from_json(per_window)?)
    } else {
        return Err("slowdown reference must be 'flat' or 'per_window'".into());
    };
    let benign = u64_vec(want(j, "benign")?)?.into_iter().map(|c| c as usize).collect();
    let points = as_arr(want(j, "points")?)?
        .iter()
        .map(|p| {
            Ok(SlowdownPoint {
                index: as_u64(want(p, "index")?)?,
                end: as_u64(want(p, "end")?)?,
                normalized_ipc: as_f64(want(p, "normalized_ipc")?)?,
            })
        })
        .collect::<Decoded<_>>()?;
    Ok(SlowdownTrace::from_parts(reference, benign, points))
}

fn mitigation_to_json(m: &MitigationRecord) -> Json {
    let (kind, row, blast) = match m.kind {
        MitigationKindTag::VictimRefresh { row, blast_radius } => {
            ("victim-refresh", Json::count(u64::from(row)), Json::count(u64::from(blast_radius)))
        }
        MitigationKindTag::Sweep => ("sweep", Json::Null, Json::Null),
    };
    Json::obj([
        ("cycle", Json::count(m.cycle)),
        ("channel", Json::count(u64::from(m.channel))),
        ("kind", Json::str(kind)),
        ("row", row),
        ("blast_radius", blast),
    ])
}

fn mitigation_from_json(j: &Json) -> Decoded<MitigationRecord> {
    let kind = match as_str(want(j, "kind")?)? {
        "victim-refresh" => MitigationKindTag::VictimRefresh {
            row: u32::try_from(as_u64(want(j, "row")?)?)
                .map_err(|_| "row out of range".to_string())?,
            blast_radius: u8::try_from(as_u64(want(j, "blast_radius")?)?)
                .map_err(|_| "blast radius out of range".to_string())?,
        },
        "sweep" => MitigationKindTag::Sweep,
        other => return Err(format!("unknown mitigation kind '{other}'")),
    };
    Ok(MitigationRecord {
        cycle: as_u64(want(j, "cycle")?)?,
        channel: u8::try_from(as_u64(want(j, "channel")?)?)
            .map_err(|_| "channel out of range".to_string())?,
        kind,
    })
}

fn telemetry_to_json(t: &RunTelemetry) -> Json {
    Json::obj([
        ("window_len", Json::count(t.window_len)),
        ("windows", windows_to_json(&t.windows)),
        ("reference_windows", windows_to_json(&t.reference_windows)),
        ("slowdown", t.slowdown.as_ref().map_or(Json::Null, trace_to_json)),
        ("mitigations", Json::Arr(t.mitigations.iter().map(mitigation_to_json).collect())),
    ])
}

fn telemetry_from_json(j: &Json) -> Decoded<RunTelemetry> {
    let slowdown = match want(j, "slowdown")? {
        Json::Null => None,
        trace => Some(trace_from_json(trace)?),
    };
    Ok(RunTelemetry {
        window_len: as_u64(want(j, "window_len")?)?,
        windows: windows_from_json(want(j, "windows")?)?,
        reference_windows: windows_from_json(want(j, "reference_windows")?)?,
        slowdown,
        mitigations: as_arr(want(j, "mitigations")?)?
            .iter()
            .map(mitigation_from_json)
            .collect::<Decoded<_>>()?,
    })
}

fn result_to_json(r: &ExperimentResult) -> Json {
    Json::obj([
        ("workload", Json::str(&r.workload)),
        ("tracker_name", Json::str(&r.tracker_name)),
        ("attack_name", Json::str(&r.attack_name)),
        ("normalized_performance", Json::num(r.normalized_performance)),
        ("run", stats_to_json(&r.run)),
        ("reference", stats_to_json(&r.reference)),
        ("telemetry", r.telemetry.as_ref().map_or(Json::Null, telemetry_to_json)),
    ])
}

fn result_from_json(j: &Json) -> Decoded<ExperimentResult> {
    let telemetry = match want(j, "telemetry")? {
        Json::Null => None,
        t => Some(telemetry_from_json(t)?),
    };
    Ok(ExperimentResult {
        workload: as_str(want(j, "workload")?)?.to_string(),
        tracker_name: as_str(want(j, "tracker_name")?)?.to_string(),
        attack_name: as_str(want(j, "attack_name")?)?.to_string(),
        normalized_performance: as_f64(want(j, "normalized_performance")?)?,
        run: stats_from_json(want(j, "run")?)?,
        reference: stats_from_json(want(j, "reference")?)?,
        telemetry,
    })
}

// ---------------------------------------------------------------------------
// RunCache
// ---------------------------------------------------------------------------

/// The run cache: a [`DiskStore`] of complete experiment results keyed by
/// canonical cell descriptors. Thread-safe (`&self` everywhere) — one
/// cache serves every sweep worker and every `campaignd` connection.
#[derive(Debug)]
pub struct RunCache {
    store: DiskStore,
}

impl RunCache {
    /// Opens (creating if needed) a run cache rooted at `dir`.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> std::io::Result<RunCache> {
        Ok(RunCache { store: DiskStore::open(dir)? })
    }

    /// The canonical cell key for an experiment, or `None` when the cell
    /// is uncacheable (an anonymous custom attack).
    pub fn key_for(e: &Experiment) -> Option<CellKey> {
        cell_key(e)
    }

    /// The underlying blob store (root path, raw entry access).
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// Counter snapshot of the underlying store.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Looks a cell up. Returns the complete cached result only when the
    /// entry decodes, its epoch matches, and its embedded descriptor is
    /// byte-identical to the key's; anything less is evicted and read as
    /// a miss.
    pub fn lookup(&self, key: &CellKey) -> Option<ExperimentResult> {
        let payload = self.store.get(&key.key)?;
        let valid = Json::parse(&payload).ok().and_then(|entry| {
            let epoch = entry.get("epoch").and_then(|e| as_u64(e).ok())?;
            let embedded = entry.get("descriptor")?.render();
            if epoch != u64::from(CACHE_EPOCH) || embedded != key.descriptor {
                return None;
            }
            result_from_json(entry.get("result")?).ok()
        });
        if valid.is_none() {
            self.store.evict(&key.key);
        }
        valid
    }

    /// Persists a result under its cell key. Write failures are
    /// swallowed: the cache is an accelerator, and a read-only or full
    /// disk must not fail the sweep that computed the result.
    pub fn save(&self, key: &CellKey, result: &ExperimentResult) {
        let descriptor =
            Json::parse(&key.descriptor).expect("descriptors are rendered canonical JSON");
        let entry = Json::obj([
            ("epoch", Json::count(u64::from(CACHE_EPOCH))),
            ("descriptor", descriptor),
            ("result", result_to_json(result)),
        ]);
        let _ = self.store.put(&key.key, &entry.render());
    }
}

/// What a cache-aware sweep did, cell by cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheRunSummary {
    /// Cells in the expanded sweep.
    pub cells: usize,
    /// Cells answered from the cache with zero simulation.
    pub hits: usize,
    /// Cacheable cells that had to be simulated.
    pub misses: usize,
    /// Cells that cannot be cached (anonymous custom attacks).
    pub uncacheable: usize,
    /// Freshly simulated cells persisted for next time.
    pub stored: usize,
    /// Cells skipped because a [`SweepJournal`](crate::journal::SweepJournal)
    /// already recorded them as
    /// complete (each also counts under `hits` — the journal marks them,
    /// the cache answers them).
    pub resumed: usize,
}

impl std::fmt::Display for CacheRunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses ({} cells", self.hits, self.misses, self.cells)?;
        if self.uncacheable > 0 {
            write!(f, ", {} uncacheable", self.uncacheable)?;
        }
        if self.resumed > 0 {
            write!(f, ", {} resumed", self.resumed)?;
        }
        write!(f, ")")
    }
}

impl SweepSpec {
    /// Expands and runs the sweep through a [`RunCache`]: cached cells
    /// are answered without simulation, the rest run on the parallel
    /// worker pool and are persisted. The report is assembled in
    /// expansion order, so a warm re-run reproduces the cold run's report
    /// byte-for-byte (cell failures are not cached and re-run every
    /// time).
    pub fn run_cached(
        &self,
        cache: &RunCache,
    ) -> Result<(SweepReport, CacheRunSummary), SpecError> {
        self.run_cached_with(cache, None, &crate::runner::RunnerConfig::default())
    }

    /// [`SweepSpec::run_cached`] with the full recovery toolkit: an
    /// optional [`SweepJournal`](crate::journal::SweepJournal) for
    /// checkpoint-resume (completed cells are journaled after they land
    /// in the cache; an interrupted sweep resumed against the same
    /// journal+cache re-executes only the remainder, and the resumed
    /// report is byte-identical to an uninterrupted run) and an explicit
    /// [`RunnerConfig`](crate::runner::RunnerConfig) (retry policy,
    /// fault injection) for the cells that do simulate.
    ///
    /// Journal IO failures are swallowed like cache write failures: the
    /// journal accelerates recovery, it must never fail the sweep.
    pub fn run_cached_with(
        &self,
        cache: &RunCache,
        journal: Option<&crate::journal::SweepJournal>,
        runner: &crate::runner::RunnerConfig,
    ) -> Result<(SweepReport, CacheRunSummary), SpecError> {
        use crate::journal::SweepJournal;
        let experiments = self.expand()?;
        let mut summary = CacheRunSummary { cells: experiments.len(), ..Default::default() };
        let sweep_hash = journal.map(|_| SweepJournal::sweep_hash(self));
        let journaled = match (journal, &sweep_hash) {
            (Some(j), Some(hash)) => {
                let state = j.load().unwrap_or_default();
                if state.progress(hash).is_none() {
                    let _ = j.record_start(hash, self, experiments.len() as u64);
                }
                state.completed(hash)
            }
            _ => Default::default(),
        };
        let mut slots: Vec<Option<Result<ExperimentResult, crate::runner::SweepError>>> =
            experiments.iter().map(|_| None).collect();
        let mut jobs = Vec::new();
        let mut job_cells = Vec::new();
        let mut job_keys = Vec::new();
        for (i, e) in experiments.into_iter().enumerate() {
            let key = RunCache::key_for(&e);
            match &key {
                Some(k) => {
                    if let Some(result) = cache.lookup(k) {
                        summary.hits += 1;
                        if journaled.contains(&k.key) {
                            summary.resumed += 1;
                        }
                        slots[i] = Some(Ok(result));
                        continue;
                    }
                    summary.misses += 1;
                }
                None => summary.uncacheable += 1,
            }
            jobs.push(e);
            job_cells.push(i);
            job_keys.push(key);
        }
        // Checkpoint from the worker thread as each cell settles: cache
        // save, then journal strictly after it (the journal never claims
        // a cell the cache lacks). An interrupted process loses at most
        // the cells still in flight, never the finished ones.
        let stored = std::sync::atomic::AtomicUsize::new(0);
        let on_done = |j: usize, outcome: &Result<ExperimentResult, crate::runner::SweepError>| {
            if let (Ok(result), Some(key)) = (outcome, &job_keys[j]) {
                cache.save(key, result);
                stored.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let (Some(jnl), Some(hash)) = (journal, &sweep_hash) {
                    let _ = jnl.record_cell(hash, &key.key);
                }
            }
        };
        for (j, outcome) in try_run_parallel_observed(jobs, runner, on_done).into_iter().enumerate()
        {
            let cell = job_cells[j];
            slots[cell] = Some(match outcome {
                Ok(result) => Ok(result),
                Err(mut err) => {
                    // Remap the worker-pool index to the expansion index,
                    // matching what an uncached run reports.
                    err.index = cell;
                    Err(err)
                }
            });
        }
        summary.stored = stored.into_inner();
        let mut results = Vec::new();
        let mut failures = Vec::new();
        for outcome in slots.into_iter().flatten() {
            match outcome {
                Ok(r) => results.push(r),
                Err(e) => failures.push(e),
            }
        }
        if failures.is_empty() {
            if let (Some(jnl), Some(hash)) = (journal, &sweep_hash) {
                let _ = jnl.record_end(hash);
            }
        }
        Ok((
            SweepReport { name: self.name.clone(), spec: self.clone(), results, failures },
            summary,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::AttackChoice;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dapper-runcache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> Experiment {
        let mut e = Experiment::quick("mcf_like").tracker("para");
        e.cfg.window_cycles = 20_000;
        e
    }

    #[test]
    fn tailored_canonicalizes_to_its_concrete_attack() {
        let mut a = tiny();
        a.attack = AttackChoice::Tailored;
        let resolved = a.attack.resolve(&a.tracker).unwrap();
        let mut b = tiny();
        b.attack = AttackChoice::Specific(resolved);
        assert_eq!(cell_key(&a), cell_key(&b), "tailored == its resolved pattern");
        let mut c = tiny();
        c.attack = AttackChoice::CacheThrash;
        if AttackChoice::CacheThrash.resolve(&c.tracker) != Some(resolved) {
            assert_ne!(cell_key(&a), cell_key(&c));
        }
    }

    #[test]
    fn identity_bearing_knobs_change_the_key() {
        let base = cell_key(&tiny()).unwrap();
        let mut seeded = tiny();
        seeded.cfg.seed ^= 1;
        assert_ne!(cell_key(&seeded).unwrap().key, base.key, "seed is identity");
        let mut threshold = tiny();
        threshold.cfg.nrh = 1000;
        assert_ne!(cell_key(&threshold).unwrap().key, base.key, "nrh is identity");
        let mut engine = tiny();
        engine.engine = Engine::Dense;
        assert_ne!(cell_key(&engine).unwrap().key, base.key, "engine is identity");
        let mut telem = tiny();
        telem.telemetry.mitigation_log = true;
        assert_ne!(cell_key(&telem).unwrap().key, base.key, "telemetry is identity");
    }

    #[test]
    fn explicit_defaults_canonicalize_like_absent_ones() {
        let implicit = tiny().tracker("hydra");
        let spec_default =
            implicit.tracker.spec().resolve_params(&std::collections::BTreeMap::new()).unwrap();
        let (name, value) = spec_default.iter().next().expect("hydra has parameters");
        let explicit = tiny().tracker("hydra").tracker_param(name.as_str(), value.clone());
        assert_eq!(
            cell_key(&implicit),
            cell_key(&explicit),
            "an override equal to the default is the same cell"
        );
    }

    #[test]
    fn anonymous_custom_attacks_are_uncacheable_but_identified_ones_cache() {
        let mut e = tiny();
        e.custom_attack = Some(crate::experiment::CustomAttack::new("x", true, |_, _| {
            panic!("never built in this test")
        }));
        assert_eq!(cell_key(&e), None, "opaque factories must not cache");
        let keyed = cell_key_with_attack_id(&e, Some("genome-v1")).unwrap();
        assert_ne!(
            keyed.key,
            cell_key_with_attack_id(&e, Some("genome-v2")).unwrap().key,
            "the supplied identity must reach the key"
        );
    }

    #[test]
    fn results_round_trip_through_the_cache_exactly() {
        let cache = RunCache::open(scratch("roundtrip")).unwrap();
        let mut e = tiny();
        e.telemetry = crate::experiment::TelemetrySpec::all_recorders(2.0);
        e.telemetry.oracle = true;
        let key = cell_key(&e).unwrap();
        assert!(cache.lookup(&key).is_none());
        let fresh = e.run();
        cache.save(&key, &fresh);
        let cached = cache.lookup(&key).expect("just stored");
        assert_eq!(cached.run, fresh.run, "RunStats must round-trip bit-identically");
        assert_eq!(cached.reference, fresh.reference);
        assert_eq!(cached.normalized_performance, fresh.normalized_performance);
        let (a, b) = (cached.telemetry.as_ref().unwrap(), fresh.telemetry.as_ref().unwrap());
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.reference_windows, b.reference_windows);
        assert_eq!(a.slowdown, b.slowdown);
        assert_eq!(a.mitigations, b.mitigations);
        assert_eq!(
            crate::spec::result_to_json(&cached).render(),
            crate::spec::result_to_json(&fresh).render(),
            "export rows must be byte-identical"
        );
    }

    #[test]
    fn epoch_mismatch_reads_as_a_miss_and_evicts() {
        let cache = RunCache::open(scratch("epoch")).unwrap();
        let e = tiny();
        let key = cell_key(&e).unwrap();
        cache.save(&key, &e.run());
        // Rewrite the entry under an old epoch (valid envelope, stale
        // meaning).
        let payload = cache.store().get(&key.key).unwrap();
        let stale = payload.replacen(
            &format!("\"epoch\":{CACHE_EPOCH}"),
            &format!("\"epoch\":{}", CACHE_EPOCH + 1),
            1,
        );
        cache.store().put(&key.key, &stale).unwrap();
        assert!(cache.lookup(&key).is_none(), "foreign epochs must not be served");
        assert!(!cache.store().entry_path(&key.key).exists(), "stale entry must be evicted");
    }
}
