//! A minimal TOML reader/writer for experiment spec files.
//!
//! The workspace builds offline (serde is a marker-trait shim), so the
//! declarative spec layer parses its own config format. This module covers
//! the TOML subset spec files need — and rejects everything else loudly:
//!
//! * `key = value` pairs with dotted keys (`hydra.rcc_entries = 512`),
//! * `[table]` / `[nested.table]` headers and `[[array-of-tables]]`,
//! * strings (basic, with escapes), integers (decimal, `0x` hex, `_`
//!   separators), floats, booleans,
//! * arrays of values, which may span lines,
//! * `#` comments and blank lines.
//!
//! Errors carry the 1-based line number and a message naming the offending
//! token.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<TomlValue>),
    /// A (sub-)table.
    Table(BTreeMap<String, TomlValue>),
}

impl TomlValue {
    /// Member lookup on tables.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        match self {
            TomlValue::Table(t) => t.get(key),
            _ => None,
        }
    }

    /// The kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Arr(_) => "array",
            TomlValue::Table(_) => "table",
        }
    }
}

/// A TOML parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError { line, message: message.into() }
}

/// Parses a TOML document into its root table.
pub fn parse(input: &str) -> Result<BTreeMap<String, TomlValue>, TomlError> {
    let mut root: BTreeMap<String, TomlValue> = BTreeMap::new();
    // Path of the table the current section writes into; empty = root.
    let mut section: Vec<String> = Vec::new();
    let mut section_is_array = false;

    let lines: Vec<&str> = input.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let trimmed = line.trim();
        i += 1;
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return Err(err(lineno, "unterminated [[header]]"));
            };
            section = parse_key_path(name.trim(), lineno)?;
            section_is_array = true;
            push_array_table(&mut root, &section, lineno)?;
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(lineno, "unterminated [header]"));
            };
            section = parse_key_path(name.trim(), lineno)?;
            section_is_array = false;
            ensure_table(&mut root, &section, lineno)?;
            continue;
        }
        let Some(eq) = find_unquoted(trimmed, '=') else {
            return Err(err(lineno, format!("expected 'key = value', got '{trimmed}'")));
        };
        let key_text = trimmed[..eq].trim();
        let mut value_text = trimmed[eq + 1..].trim().to_string();
        if value_text.is_empty() {
            return Err(err(lineno, format!("missing value for key '{key_text}'")));
        }
        // Multi-line arrays: keep consuming lines until brackets balance.
        while bracket_balance(&value_text) > 0 {
            if i >= lines.len() {
                return Err(err(lineno, format!("unterminated array for key '{key_text}'")));
            }
            value_text.push(' ');
            value_text.push_str(strip_comment(lines[i]).trim());
            i += 1;
        }
        let key_path = parse_key_path(key_text, lineno)?;
        let value = parse_value(value_text.trim(), lineno)?;
        let target = if section_is_array {
            current_array_table(&mut root, &section, lineno)?
        } else {
            walk_tables(&mut root, &section, lineno)?
        };
        insert_dotted(target, &key_path, value, lineno)?;
    }
    Ok(root)
}

/// String-state tracker shared by the line scanners: a `"` toggles string
/// mode unless it is escaped (`\"` inside a string stays part of it).
#[derive(Default)]
struct StrState {
    in_str: bool,
    escaped: bool,
}

impl StrState {
    /// Feeds one character; returns true when it is *outside* any string
    /// (and thus structurally meaningful: comment start, `=`, brackets).
    fn structural(&mut self, c: char) -> bool {
        if self.escaped {
            self.escaped = false;
            return false;
        }
        match c {
            '\\' if self.in_str => {
                self.escaped = true;
                false
            }
            '"' => {
                self.in_str = !self.in_str;
                false
            }
            _ => !self.in_str,
        }
    }
}

fn strip_comment(line: &str) -> &str {
    let mut st = StrState::default();
    for (idx, c) in line.char_indices() {
        if st.structural(c) && c == '#' {
            return &line[..idx];
        }
    }
    line
}

fn find_unquoted(s: &str, needle: char) -> Option<usize> {
    let mut st = StrState::default();
    for (idx, c) in s.char_indices() {
        if st.structural(c) && c == needle {
            return Some(idx);
        }
    }
    None
}

fn bracket_balance(s: &str) -> i64 {
    let mut depth = 0i64;
    let mut st = StrState::default();
    for c in s.chars() {
        if st.structural(c) {
            match c {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
        }
    }
    depth
}

fn parse_key_path(text: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = text.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(|p| {
        p.is_empty() || !p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }) {
        return Err(err(lineno, format!("invalid key '{text}' (bare keys only)")));
    }
    Ok(parts)
}

fn ensure_table<'t>(
    root: &'t mut BTreeMap<String, TomlValue>,
    path: &[String],
    lineno: usize,
) -> Result<&'t mut BTreeMap<String, TomlValue>, TomlError> {
    walk_tables(root, path, lineno)
}

fn walk_tables<'t>(
    root: &'t mut BTreeMap<String, TomlValue>,
    path: &[String],
    lineno: usize,
) -> Result<&'t mut BTreeMap<String, TomlValue>, TomlError> {
    let mut current = root;
    for part in path {
        let entry =
            current.entry(part.clone()).or_insert_with(|| TomlValue::Table(BTreeMap::new()));
        current = match entry {
            TomlValue::Table(t) => t,
            TomlValue::Arr(items) => match items.last_mut() {
                Some(TomlValue::Table(t)) => t,
                _ => return Err(err(lineno, format!("'{part}' is not a table"))),
            },
            other => {
                return Err(err(
                    lineno,
                    format!("'{part}' is already a {}, not a table", other.kind()),
                ))
            }
        };
    }
    Ok(current)
}

fn push_array_table(
    root: &mut BTreeMap<String, TomlValue>,
    path: &[String],
    lineno: usize,
) -> Result<(), TomlError> {
    let (last, prefix) = path.split_last().ok_or_else(|| err(lineno, "empty [[header]]"))?;
    let parent = walk_tables(root, prefix, lineno)?;
    let entry = parent.entry(last.clone()).or_insert_with(|| TomlValue::Arr(Vec::new()));
    match entry {
        TomlValue::Arr(items) => {
            items.push(TomlValue::Table(BTreeMap::new()));
            Ok(())
        }
        other => Err(err(lineno, format!("'{last}' is already a {}, not an array", other.kind()))),
    }
}

fn current_array_table<'t>(
    root: &'t mut BTreeMap<String, TomlValue>,
    path: &[String],
    lineno: usize,
) -> Result<&'t mut BTreeMap<String, TomlValue>, TomlError> {
    let (last, prefix) = path.split_last().ok_or_else(|| err(lineno, "empty [[header]]"))?;
    let parent = walk_tables(root, prefix, lineno)?;
    match parent.get_mut(last) {
        Some(TomlValue::Arr(items)) => match items.last_mut() {
            Some(TomlValue::Table(t)) => Ok(t),
            _ => Err(err(lineno, format!("'{last}' has no open table"))),
        },
        _ => Err(err(lineno, format!("'{last}' is not an array of tables"))),
    }
}

fn insert_dotted(
    table: &mut BTreeMap<String, TomlValue>,
    path: &[String],
    value: TomlValue,
    lineno: usize,
) -> Result<(), TomlError> {
    let (last, prefix) = path.split_last().expect("nonempty key path");
    let target = walk_tables(table, prefix, lineno)?;
    if target.insert(last.clone(), value).is_some() {
        return Err(err(lineno, format!("duplicate key '{last}'")));
    }
    Ok(())
}

fn parse_value(text: &str, lineno: usize) -> Result<TomlValue, TomlError> {
    let mut cursor = Cursor { text, pos: 0, lineno };
    cursor.skip_ws();
    let v = cursor.value()?;
    cursor.skip_ws();
    if cursor.pos != text.len() {
        return Err(err(
            lineno,
            format!("trailing characters after value: '{}'", &text[cursor.pos..]),
        ));
    }
    Ok(v)
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<TomlValue, TomlError> {
        let rest = self.rest();
        if rest.starts_with('"') {
            return self.string();
        }
        if rest.starts_with('[') {
            return self.array();
        }
        if let Some(word) = rest.strip_prefix("true") {
            if !word.starts_with(|c: char| c.is_ascii_alphanumeric()) {
                self.pos += 4;
                return Ok(TomlValue::Bool(true));
            }
        }
        if let Some(word) = rest.strip_prefix("false") {
            if !word.starts_with(|c: char| c.is_ascii_alphanumeric()) {
                self.pos += 5;
                return Ok(TomlValue::Bool(false));
            }
        }
        self.number()
    }

    fn string(&mut self) -> Result<TomlValue, TomlError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((idx, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += idx + 1;
                    return Ok(TomlValue::Str(out));
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => {
                        return Err(err(
                            self.lineno,
                            format!("unsupported escape '\\{}'", other.map(|o| o.1).unwrap_or(' ')),
                        ))
                    }
                },
                c => out.push(c),
            }
        }
        Err(err(self.lineno, "unterminated string"))
    }

    fn array(&mut self) -> Result<TomlValue, TomlError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with(']') {
                self.pos += 1;
                return Ok(TomlValue::Arr(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else if !self.rest().starts_with(']') {
                return Err(err(self.lineno, "expected ',' or ']' in array"));
            }
        }
    }

    fn number(&mut self) -> Result<TomlValue, TomlError> {
        let end = self
            .rest()
            .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.' | '_')))
            .map(|e| self.pos + e)
            .unwrap_or(self.text.len());
        let raw = &self.text[self.pos..end];
        if raw.is_empty() {
            return Err(err(self.lineno, format!("expected a value at '{}'", self.rest())));
        }
        let clean: String = raw.chars().filter(|&c| c != '_').collect();
        self.pos = end;
        if let Some(hex) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
            return i64::from_str_radix(hex, 16)
                .map(TomlValue::Int)
                .map_err(|_| err(self.lineno, format!("bad hex integer '{raw}'")));
        }
        if !clean.contains(['.', 'e', 'E']) {
            if let Ok(i) = clean.parse::<i64>() {
                return Ok(TomlValue::Int(i));
            }
        }
        clean
            .parse::<f64>()
            .map(TomlValue::Float)
            .map_err(|_| err(self.lineno, format!("bad number '{raw}'")))
    }
}

/// Renders a root table as TOML: scalar and array keys first, then
/// sub-tables as `[section]` headers and arrays of tables as `[[section]]`.
/// Output parses back to an identical tree (floats always carry a decimal
/// point or exponent so they stay floats).
pub fn render(root: &BTreeMap<String, TomlValue>) -> String {
    let mut out = String::new();
    render_table(root, &mut Vec::new(), &mut out);
    out
}

fn render_table(table: &BTreeMap<String, TomlValue>, path: &mut Vec<String>, out: &mut String) {
    for (k, v) in table {
        match v {
            TomlValue::Table(_) => {}
            TomlValue::Arr(items) if items.iter().any(|i| matches!(i, TomlValue::Table(_))) => {}
            _ => {
                out.push_str(k);
                out.push_str(" = ");
                render_value(v, out);
                out.push('\n');
            }
        }
    }
    for (k, v) in table {
        match v {
            TomlValue::Table(sub) => {
                path.push(k.clone());
                out.push_str(&format!("\n[{}]\n", path.join(".")));
                render_table(sub, path, out);
                path.pop();
            }
            TomlValue::Arr(items) if items.iter().any(|i| matches!(i, TomlValue::Table(_))) => {
                path.push(k.clone());
                for item in items {
                    if let TomlValue::Table(sub) = item {
                        out.push_str(&format!("\n[[{}]]\n", path.join(".")));
                        render_table(sub, path, out);
                    }
                }
                path.pop();
            }
            _ => {}
        }
    }
}

fn render_value(v: &TomlValue, out: &mut String) {
    match v {
        TomlValue::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        TomlValue::Int(i) => out.push_str(&i.to_string()),
        TomlValue::Float(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E', 'n', 'i']) {
                out.push_str(".0");
            }
        }
        TomlValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        TomlValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        TomlValue::Table(_) => unreachable!("tables render as sections"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_dotted_keys() {
        let doc = r#"
# a spec
name = "fig09"          # trailing comment
nrh = 500
seed = 0xDA_99E5
window_us = 250.5
isolate = true
hydra.rcc_entries = 512

[params.comet]
rat_entries = 64
"#;
        let t = parse(doc).unwrap();
        assert_eq!(t["name"], TomlValue::Str("fig09".into()));
        assert_eq!(t["nrh"], TomlValue::Int(500));
        assert_eq!(t["seed"], TomlValue::Int(0xDA99E5));
        assert_eq!(t["window_us"], TomlValue::Float(250.5));
        assert_eq!(t["isolate"], TomlValue::Bool(true));
        assert_eq!(t["hydra"].get("rcc_entries"), Some(&TomlValue::Int(512)));
        assert_eq!(
            t["params"].get("comet").and_then(|c| c.get("rat_entries")),
            Some(&TomlValue::Int(64))
        );
    }

    #[test]
    fn parses_multiline_arrays_and_array_tables() {
        let doc = r#"
workloads = [
    "gcc_like",   # one per line
    "mcf_like",
]

[[trackers]]
key = "hydra"

[[trackers]]
key = "comet"
params = { }
"#;
        // Inline tables are not supported: the spec layer never emits them.
        assert!(parse(doc).is_err());
        let doc = doc.replace("params = { }\n", "");
        let t = parse(&doc).unwrap();
        assert_eq!(
            t["workloads"],
            TomlValue::Arr(vec![
                TomlValue::Str("gcc_like".into()),
                TomlValue::Str("mcf_like".into())
            ])
        );
        match &t["trackers"] {
            TomlValue::Arr(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("key"), Some(&TomlValue::Str("comet".into())));
            }
            other => panic!("expected array of tables, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = \n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("'b'"), "{e}");
        let e = parse("[unclosed\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key 'a'"), "{e}");
        let e = parse("k = [1, 2\n").unwrap_err();
        assert!(e.to_string().contains("unterminated array"), "{e}");
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"
name = "sweep"
nrh = 500
ratio = 2.0
flags = [true, false]
words = ["a b", "c#d"]

[params.hydra]
rcc_entries = 512

[[trackers]]
key = "hydra"
weight = 1.5
"#;
        let t = parse(doc).unwrap();
        let rendered = render(&t);
        let back = parse(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
        assert_eq!(back, t, "---\n{rendered}");
    }

    #[test]
    fn floats_survive_render_as_floats() {
        let mut t = BTreeMap::new();
        t.insert("x".to_string(), TomlValue::Float(4.0));
        let back = parse(&render(&t)).unwrap();
        assert_eq!(back["x"], TomlValue::Float(4.0));
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let t = parse("s = \"a#b\" # real comment\n").unwrap();
        assert_eq!(t["s"], TomlValue::Str("a#b".into()));
    }

    #[test]
    fn escaped_quotes_do_not_end_the_string() {
        // `\"` inside a string must not toggle string state: the `#`, `=`,
        // and `]` that follow are still string content.
        let t = parse("s = \"a\\\"#b\"\n").unwrap();
        assert_eq!(t["s"], TomlValue::Str("a\"#b".into()));
        let t = parse("s = \"x\\\"=y\"\n").unwrap();
        assert_eq!(t["s"], TomlValue::Str("x\"=y".into()));
        let t = parse("arr = [\"\\\"]\", \"b\"]\n").unwrap();
        assert_eq!(
            t["arr"],
            TomlValue::Arr(vec![TomlValue::Str("\"]".into()), TomlValue::Str("b".into())])
        );
        // And the renderer emits a form that parses back identically.
        let mut doc = BTreeMap::new();
        doc.insert("s".to_string(), TomlValue::Str("a\"#b\\c".into()));
        let rendered = render(&doc);
        assert_eq!(parse(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}")), doc);
    }
}
