//! Parallel experiment sweeps.

use crate::experiment::{Experiment, ExperimentResult};
use std::sync::Mutex;

/// Runs experiments across all available cores, preserving input order.
pub fn run_parallel(jobs: Vec<Experiment>) -> Vec<ExperimentResult> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    let work: Mutex<Vec<(usize, Experiment)>> =
        Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<ExperimentResult>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = work.lock().expect("work queue poisoned").pop();
                match job {
                    Some((i, e)) => {
                        let r = e.run();
                        results.lock().expect("results poisoned")[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrackerChoice;

    #[test]
    fn parallel_results_keep_order() {
        let jobs = vec![
            Experiment::quick("povray_like").tracker(TrackerChoice::None).window_us(100.0),
            Experiment::quick("namd_like").tracker(TrackerChoice::None).window_us(100.0),
        ];
        let results = run_parallel(jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "povray_like");
        assert_eq!(results[1].workload, "namd_like");
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_parallel(vec![]).is_empty());
    }
}
