//! Parallel experiment sweeps.
//!
//! The work queue is a shared stack drained by one worker per host core.
//! Every job runs under [`std::panic::catch_unwind`], so a single bad
//! experiment (unknown workload, assertion in a model, ...) surfaces as a
//! [`SweepError`] for that slot instead of poisoning the queue and killing
//! the entire sweep. [`run_parallel`] keeps the historical infallible
//! signature for the figure harnesses; [`try_run_parallel`] exposes per-job
//! results; [`try_run_parallel_cfg`] adds a [`RetryPolicy`] (bounded
//! retries, exponential backoff, per-attempt timeout) and the
//! [`sim_core::fault`] hook; [`parallel_map`] is the generic engine
//! (attacklab's campaign and search fan out through it with a shared
//! reference run).
//!
//! Failed jobs are *quarantined*, never silently dropped: the
//! [`SweepError`] carries the cell's human-readable descriptor and cache
//! key prefix plus the attempt count, so a sweep report names exactly
//! which cells died and why.

use crate::experiment::{Experiment, ExperimentResult};
use sim_core::fault::{FaultAction, FaultSite, Injector};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Failure of a single job inside a parallel sweep — the quarantine
/// record: which slot, which cell, what the panic said, how many attempts
/// were made before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the failed job in the input order.
    pub index: usize,
    /// Human-readable cell attribution (`workload x tracker x attack
    /// [key-prefix]`); empty when the generic engine had no experiment to
    /// describe.
    pub cell: String,
    /// The panic payload, stringified (the last attempt's, if retried).
    pub message: String,
    /// How many attempts were made (>= 1).
    pub attempts: u32,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cell.is_empty() {
            write!(f, "job {} panicked: {}", self.index, self.message)
        } else {
            write!(
                f,
                "job {} ({}) failed after {} attempt(s): {}",
                self.index, self.cell, self.attempts, self.message
            )
        }
    }
}

impl std::error::Error for SweepError {}

/// Bounded retries with exponential backoff and an optional per-attempt
/// timeout. The default is the historical behavior: one attempt, no
/// timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (>= 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the delay after each retry.
    pub backoff_factor: u32,
    /// Ceiling on the delay between attempts.
    pub max_backoff: Duration,
    /// Wall-clock budget per attempt. A timed-out attempt counts as a
    /// failure and is retried like a panic; the runaway attempt thread is
    /// abandoned (its result, if any ever arrives, is discarded).
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// One attempt, no backoff, no timeout — the historical semantics.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            backoff_factor: 2,
            max_backoff: Duration::ZERO,
            timeout: None,
        }
    }

    /// A sensible service-side default: 3 attempts, 10 ms doubling
    /// backoff capped at 250 ms, no timeout.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_millis(250),
            timeout: None,
        }
    }

    /// Retry up to `attempts` total attempts (builder-style).
    pub fn attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Set the per-attempt timeout (builder-style).
    pub fn attempt_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.timeout = Some(timeout);
        self
    }

    /// Delay before retry number `retry` (1-based).
    fn delay(&self, retry: u32) -> Duration {
        let factor = self.backoff_factor.max(1).saturating_pow(retry.saturating_sub(1));
        (self.backoff * factor).min(self.max_backoff.max(self.backoff))
    }
}

/// Knobs for [`try_run_parallel_cfg`]: the retry policy plus an optional
/// armed fault injector (chaos tests only — `None` costs one branch).
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Retry/backoff/timeout policy applied to every job.
    pub retry: RetryPolicy,
    /// Armed fault plan probed at [`FaultSite::JobRun`] with the job
    /// index before each attempt.
    pub faults: Option<Arc<Injector>>,
}

/// Locks a mutex, recovering the guard even if a previous holder panicked
/// (our critical sections only move plain data, so the state stays valid).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stringifies a panic payload for [`SweepError`].
///
/// `panic!`/`expect` payloads are `&str`/`String` and pass through as-is.
/// `panic_any` payloads of common scalar types are rendered by value;
/// anything else reports its `TypeId` (the concrete type *name* is erased
/// by `Box<dyn Any>`, but a stable id still distinguishes payload kinds
/// across a sweep), so failures never collapse into one opaque label.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    macro_rules! try_display {
        ($($ty:ty),+ $(,)?) => {
            $(
                if let Some(v) = payload.downcast_ref::<$ty>() {
                    return format!("{v:?} ({})", stringify!($ty));
                }
            )+
        };
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    try_display!(
        std::borrow::Cow<'static, str>,
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        f32,
        f64,
        bool,
        char,
    );
    format!("non-string panic payload ({:?})", (*payload).type_id())
}

/// Applies `f` to every item across all available cores, preserving input
/// order. A panicking call yields `Err(SweepError)` in its slot; the other
/// items still complete.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, SweepError>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<Result<R, SweepError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = relock(&work).pop();
                match job {
                    Some((i, item)) => {
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| SweepError {
                                index: i,
                                cell: String::new(),
                                message: panic_message(p),
                                attempts: 1,
                            });
                        relock(&results)[i] = Some(outcome);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Runs experiments in parallel, returning one `Result` per job in input
/// order. A panicking experiment does not disturb its neighbours.
pub fn try_run_parallel(jobs: Vec<Experiment>) -> Vec<Result<ExperimentResult, SweepError>> {
    try_run_parallel_cfg(jobs, &RunnerConfig::default())
}

/// Human-readable cell attribution for quarantine records:
/// `workload x tracker x attack [cache-key-prefix]`.
pub fn cell_label(e: &Experiment) -> String {
    let attack = match &e.custom_attack {
        Some(custom) => custom.name().to_string(),
        None => e
            .attack
            .resolve(&e.tracker)
            .map_or_else(|| "benign".to_string(), |a| a.name().to_string()),
    };
    let key = crate::cache::cell_key(e)
        .map_or_else(|| "uncacheable".to_string(), |k| k.key[..12].to_string());
    format!("{} x {} x {} [{}]", e.workload, e.tracker.label(), attack, key)
}

/// Runs experiments in parallel under an explicit [`RunnerConfig`]:
/// every job gets up to `retry.max_attempts` attempts (each under
/// `catch_unwind`, each bounded by `retry.timeout` if set, with
/// exponential backoff between attempts); a job that exhausts its
/// attempts is quarantined as a [`SweepError`] carrying its cell
/// descriptor and attempt count while the rest of the sweep completes.
pub fn try_run_parallel_cfg(
    jobs: Vec<Experiment>,
    cfg: &RunnerConfig,
) -> Vec<Result<ExperimentResult, SweepError>> {
    try_run_parallel_observed(jobs, cfg, |_, _| {})
}

/// [`try_run_parallel_cfg`] with a completion observer: `on_done(i,
/// outcome)` fires on the worker thread the moment job `i` settles
/// (simulated, retried to success, or quarantined), before the sweep as
/// a whole finishes. Callers use it to persist results incrementally —
/// a checkpoint made per cell survives a crash that a
/// save-everything-at-the-end design would lose wholesale. The observer
/// runs concurrently from several workers and must synchronize
/// internally; the returned `Vec` is still in input order.
pub fn try_run_parallel_observed<F>(
    jobs: Vec<Experiment>,
    cfg: &RunnerConfig,
    on_done: F,
) -> Vec<Result<ExperimentResult, SweepError>>
where
    F: Fn(usize, &Result<ExperimentResult, SweepError>) + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    let work: Mutex<Vec<(usize, Experiment)>> =
        Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<Result<ExperimentResult, SweepError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = relock(&work).pop();
                match job {
                    Some((i, e)) => {
                        let outcome = run_one(i, e, cfg);
                        on_done(i, &outcome);
                        relock(&results)[i] = Some(outcome);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// One job's attempt loop: inject → run → retry with backoff → quarantine.
fn run_one(
    index: usize,
    e: Experiment,
    cfg: &RunnerConfig,
) -> Result<ExperimentResult, SweepError> {
    let cell = cell_label(&e);
    let max_attempts = cfg.retry.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=max_attempts {
        let injected = cfg
            .faults
            .as_ref()
            .and_then(|f| f.check_indexed(FaultSite::JobRun, index as u64))
            .filter(|a| *a == FaultAction::Panic);
        match run_attempt(e.clone(), injected, cfg.retry.timeout) {
            Ok(result) => return Ok(result),
            Err(message) => last = message,
        }
        if attempt < max_attempts {
            std::thread::sleep(cfg.retry.delay(attempt));
        }
    }
    Err(SweepError { index, cell, message: last, attempts: max_attempts })
}

/// One attempt: the job body under `catch_unwind`, optionally raced
/// against a wall-clock deadline on a detached thread (a scoped thread
/// cannot be abandoned, and a CPU-bound simulation cannot be interrupted
/// cooperatively — abandonment is the only honest timeout).
fn run_attempt(
    e: Experiment,
    injected: Option<FaultAction>,
    timeout: Option<Duration>,
) -> Result<ExperimentResult, String> {
    let body = move || {
        if injected.is_some() {
            panic!("injected fault: job panic");
        }
        e.run()
    };
    match timeout {
        None => catch_unwind(AssertUnwindSafe(body)).map_err(panic_message),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            std::thread::Builder::new()
                .name("sweep-attempt".into())
                .spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(body)).map_err(panic_message);
                    let _ = tx.send(outcome);
                })
                .expect("spawn attempt thread");
            match rx.recv_timeout(limit) {
                Ok(outcome) => outcome,
                Err(_) => Err(format!("attempt timed out after {limit:?}")),
            }
        }
    }
}

/// Runs experiments across all available cores, preserving input order.
///
/// # Panics
///
/// Panics after the whole sweep finishes if any job failed, reporting every
/// failure (use [`try_run_parallel`] to handle failures per job).
pub fn run_parallel(jobs: Vec<Experiment>) -> Vec<ExperimentResult> {
    let (ok, errs): (Vec<_>, Vec<_>) = try_run_parallel(jobs).into_iter().partition(Result::is_ok);
    let errs: Vec<SweepError> = errs.into_iter().map(|e| e.unwrap_err()).collect();
    assert!(
        errs.is_empty(),
        "{} of {} sweep jobs failed: {}",
        errs.len(),
        errs.len() + ok.len(),
        errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
    );
    ok.into_iter().map(|r| r.expect("partitioned ok")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_keep_order() {
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let results = run_parallel(jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "povray_like");
        assert_eq!(results[1].workload, "namd_like");
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_parallel(vec![]).is_empty());
    }

    #[test]
    fn one_bad_job_does_not_kill_the_sweep() {
        // Silence the expected panic backtrace from the worker thread.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("not_a_workload").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let results = try_run_parallel(jobs);
        std::panic::set_hook(prev);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().expect_err("bad workload must fail alone");
        assert_eq!(err.index, 1);
        assert!(err.message.contains("unknown workload"), "{}", err.message);
        assert!(results[2].is_ok());
    }

    #[test]
    fn parallel_map_is_generic_and_ordered() {
        let out = parallel_map((0..64).collect::<Vec<u64>>(), |x| x * x);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn observer_fires_once_per_job_with_the_final_outcome() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("not_a_workload").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let fired = [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)];
        let oks = AtomicUsize::new(0);
        let results = try_run_parallel_observed(jobs, &RunnerConfig::default(), |i, outcome| {
            fired[i].fetch_add(1, Ordering::SeqCst);
            if outcome.is_ok() {
                oks.fetch_add(1, Ordering::SeqCst);
            }
        });
        std::panic::set_hook(prev);
        // Exactly one notification per job, settled outcomes matching the
        // returned vector (index 1 is the quarantined bad workload).
        for f in &fired {
            assert_eq!(f.load(Ordering::SeqCst), 1);
        }
        assert_eq!(oks.load(Ordering::SeqCst), 2);
        assert!(results[0].is_ok() && results[1].is_err() && results[2].is_ok());
    }

    #[test]
    fn quarantine_carries_cell_attribution() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("not_a_workload").window_us(100.0),
        ];
        let results = try_run_parallel(jobs);
        std::panic::set_hook(prev);
        let err = results[1].as_ref().expect_err("bad workload fails");
        assert_eq!(err.attempts, 1);
        assert!(err.cell.contains("not_a_workload"), "{}", err.cell);
        let rendered = err.to_string();
        assert!(rendered.contains("not_a_workload") && rendered.contains("attempt"), "{rendered}");
    }

    #[test]
    fn injected_transient_panic_is_absorbed_by_a_retry() {
        use sim_core::fault::FaultPlan;
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let clean: Vec<_> =
            try_run_parallel(jobs.clone()).into_iter().map(|r| r.expect("clean run")).collect();
        let cfg = RunnerConfig {
            retry: RetryPolicy::standard(),
            faults: Some(FaultPlan::new(11).panic_job_once(1).arm()),
        };
        let faulted = try_run_parallel_cfg(jobs, &cfg);
        std::panic::set_hook(prev);
        let rendered = |rs: &[ExperimentResult]| -> Vec<String> {
            rs.iter().map(|r| crate::spec::result_to_json(r).render()).collect()
        };
        let recovered: Vec<_> =
            faulted.into_iter().map(|r| r.expect("retry absorbs the fault")).collect();
        assert_eq!(
            rendered(&recovered),
            rendered(&clean),
            "retried sweep is bit-identical to the clean one"
        );
    }

    #[test]
    fn permanent_panic_is_quarantined_with_attempt_count() {
        use sim_core::fault::FaultPlan;
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let cfg = RunnerConfig {
            retry: RetryPolicy::standard(),
            faults: Some(FaultPlan::new(11).panic_job_always(0).arm()),
        };
        let out = try_run_parallel_cfg(jobs, &cfg);
        std::panic::set_hook(prev);
        let err = out[0].as_ref().expect_err("permanently faulted job is quarantined");
        assert_eq!(err.attempts, 3);
        assert!(err.cell.contains("povray_like"), "{}", err.cell);
        assert!(err.message.contains("injected fault"), "{}", err.message);
        assert!(out[1].is_ok(), "the healthy neighbour completes");
    }

    #[test]
    fn per_attempt_timeout_quarantines_runaway_jobs() {
        let cfg = RunnerConfig {
            retry: RetryPolicy::none().attempt_timeout(std::time::Duration::from_millis(5)),
            faults: None,
        };
        // A real workload at a long horizon takes far more than 5 ms.
        let jobs = vec![Experiment::quick("mcf_like").tracker("hydra").window_us(10_000.0)];
        let out = try_run_parallel_cfg(jobs, &cfg);
        let err = out[0].as_ref().expect_err("timeout fires");
        assert!(err.message.contains("timed out"), "{}", err.message);
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn retry_backoff_grows_and_caps() {
        let p = RetryPolicy::standard();
        assert_eq!(p.delay(1), std::time::Duration::from_millis(10));
        assert_eq!(p.delay(2), std::time::Duration::from_millis(20));
        assert_eq!(p.delay(6), std::time::Duration::from_millis(250), "capped");
    }

    #[test]
    fn non_string_panic_payloads_stay_diagnosable() {
        struct Opaque;
        // Scalar payloads render by value; opaque ones report a type id
        // rather than collapsing into one indistinct label.
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        assert_eq!(panic_message(Box::new(42i32)), "42 (i32)");
        assert_eq!(panic_message(Box::new(7u64)), "7 (u64)");
        assert_eq!(panic_message(Box::new(2.5f64)), "2.5 (f64)");
        let opaque = panic_message(Box::new(Opaque));
        assert!(opaque.contains("TypeId"), "{opaque}");
        let other = panic_message(Box::new(vec![1u8]));
        assert_ne!(opaque, other, "distinct payload types must stay distinguishable");
    }

    #[test]
    fn sweep_error_carries_payload_value() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = parallel_map(vec![1u32, 2, 3], |x| {
            if x == 2 {
                std::panic::panic_any(x * 10);
            }
            x
        });
        std::panic::set_hook(prev);
        assert!(out[0].is_ok() && out[2].is_ok());
        let err = out[1].as_ref().expect_err("job 1 panicked");
        assert_eq!(err.index, 1);
        assert_eq!(err.message, "20 (u32)");
    }
}
