//! Parallel experiment sweeps.
//!
//! The work queue is a shared stack drained by one worker per host core.
//! Every job runs under [`std::panic::catch_unwind`], so a single bad
//! experiment (unknown workload, assertion in a model, ...) surfaces as a
//! [`SweepError`] for that slot instead of poisoning the queue and killing
//! the entire sweep. [`run_parallel`] keeps the historical infallible
//! signature for the figure harnesses; [`try_run_parallel`] exposes per-job
//! results; [`parallel_map`] is the generic engine (attacklab's campaign
//! and search fan out through it with a shared reference run).

use crate::experiment::{Experiment, ExperimentResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Failure of a single job inside a parallel sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the failed job in the input order.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SweepError {}

/// Locks a mutex, recovering the guard even if a previous holder panicked
/// (our critical sections only move plain data, so the state stays valid).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stringifies a panic payload for [`SweepError`].
///
/// `panic!`/`expect` payloads are `&str`/`String` and pass through as-is.
/// `panic_any` payloads of common scalar types are rendered by value;
/// anything else reports its `TypeId` (the concrete type *name* is erased
/// by `Box<dyn Any>`, but a stable id still distinguishes payload kinds
/// across a sweep), so failures never collapse into one opaque label.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    macro_rules! try_display {
        ($($ty:ty),+ $(,)?) => {
            $(
                if let Some(v) = payload.downcast_ref::<$ty>() {
                    return format!("{v:?} ({})", stringify!($ty));
                }
            )+
        };
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    try_display!(
        std::borrow::Cow<'static, str>,
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        f32,
        f64,
        bool,
        char,
    );
    format!("non-string panic payload ({:?})", (*payload).type_id())
}

/// Applies `f` to every item across all available cores, preserving input
/// order. A panicking call yields `Err(SweepError)` in its slot; the other
/// items still complete.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, SweepError>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<Result<R, SweepError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = relock(&work).pop();
                match job {
                    Some((i, item)) => {
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(item)))
                            .map_err(|p| SweepError { index: i, message: panic_message(p) });
                        relock(&results)[i] = Some(outcome);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Runs experiments in parallel, returning one `Result` per job in input
/// order. A panicking experiment does not disturb its neighbours.
pub fn try_run_parallel(jobs: Vec<Experiment>) -> Vec<Result<ExperimentResult, SweepError>> {
    parallel_map(jobs, Experiment::run)
}

/// Runs experiments across all available cores, preserving input order.
///
/// # Panics
///
/// Panics after the whole sweep finishes if any job failed, reporting every
/// failure (use [`try_run_parallel`] to handle failures per job).
pub fn run_parallel(jobs: Vec<Experiment>) -> Vec<ExperimentResult> {
    let (ok, errs): (Vec<_>, Vec<_>) = try_run_parallel(jobs).into_iter().partition(Result::is_ok);
    let errs: Vec<SweepError> = errs.into_iter().map(|e| e.unwrap_err()).collect();
    assert!(
        errs.is_empty(),
        "{} of {} sweep jobs failed: {}",
        errs.len(),
        errs.len() + ok.len(),
        errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
    );
    ok.into_iter().map(|r| r.expect("partitioned ok")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_keep_order() {
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let results = run_parallel(jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "povray_like");
        assert_eq!(results[1].workload, "namd_like");
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_parallel(vec![]).is_empty());
    }

    #[test]
    fn one_bad_job_does_not_kill_the_sweep() {
        // Silence the expected panic backtrace from the worker thread.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs = vec![
            Experiment::quick("povray_like").tracker("none").window_us(100.0),
            Experiment::quick("not_a_workload").window_us(100.0),
            Experiment::quick("namd_like").tracker("none").window_us(100.0),
        ];
        let results = try_run_parallel(jobs);
        std::panic::set_hook(prev);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().expect_err("bad workload must fail alone");
        assert_eq!(err.index, 1);
        assert!(err.message.contains("unknown workload"), "{}", err.message);
        assert!(results[2].is_ok());
    }

    #[test]
    fn parallel_map_is_generic_and_ordered() {
        let out = parallel_map((0..64).collect::<Vec<u64>>(), |x| x * x);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn non_string_panic_payloads_stay_diagnosable() {
        struct Opaque;
        // Scalar payloads render by value; opaque ones report a type id
        // rather than collapsing into one indistinct label.
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        assert_eq!(panic_message(Box::new(42i32)), "42 (i32)");
        assert_eq!(panic_message(Box::new(7u64)), "7 (u64)");
        assert_eq!(panic_message(Box::new(2.5f64)), "2.5 (f64)");
        let opaque = panic_message(Box::new(Opaque));
        assert!(opaque.contains("TypeId"), "{opaque}");
        let other = panic_message(Box::new(vec![1u8]));
        assert_ne!(opaque, other, "distinct payload types must stay distinguishable");
    }

    #[test]
    fn sweep_error_carries_payload_value() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = parallel_map(vec![1u32, 2, 3], |x| {
            if x == 2 {
                std::panic::panic_any(x * 10);
            }
            x
        });
        std::panic::set_hook(prev);
        assert!(out[0].is_ok() && out[2].is_ok());
        let err = out[1].as_ref().expect_err("job 1 panicked");
        assert_eq!(err.index, 1);
        assert_eq!(err.message, "20 (u32)");
    }
}
