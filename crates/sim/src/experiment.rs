//! Experiment definition: workload x tracker x attack -> normalized perf.

use cpu::{TraceEntry, TraceSource};
use dapper::{DapperConfig, DapperH, DapperS};
use sim_core::addr::{Geometry, PhysAddr};
use sim_core::config::{MitigationKind, SystemConfig};
use sim_core::time::us_to_cycles;
use sim_core::tracker::{NullTracker, RowHammerTracker};
use trackers::{Abacus, BlockHammer, Comet, Hydra, Para, Prac, Pride, Start, TrackerParams};
use workloads::{spec_by_name, Attack, SyntheticTrace};

use crate::metrics::{normalized_performance, RunStats};
use crate::system::{Engine, System};
use std::sync::Arc;

/// Which RowHammer defense guards the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerChoice {
    /// Insecure baseline (no tracker).
    None,
    /// Hydra (ISCA'22).
    Hydra,
    /// START (HPCA'24).
    Start,
    /// CoMeT (HPCA'24).
    Comet,
    /// ABACuS (USENIX Sec'24).
    Abacus,
    /// BlockHammer (HPCA'21).
    BlockHammer,
    /// PARA (ISCA'14).
    Para,
    /// PrIDE (ISCA'24).
    Pride,
    /// PRAC / QPRAC (HPCA'25).
    Prac,
    /// DAPPER-S (this paper, Section V).
    DapperS,
    /// DAPPER-H (this paper, Section VI).
    DapperH,
}

impl TrackerChoice {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TrackerChoice::None => "none",
            TrackerChoice::Hydra => "Hydra",
            TrackerChoice::Start => "START",
            TrackerChoice::Comet => "CoMeT",
            TrackerChoice::Abacus => "ABACUS",
            TrackerChoice::BlockHammer => "BlockHammer",
            TrackerChoice::Para => "PARA",
            TrackerChoice::Pride => "PrIDE",
            TrackerChoice::Prac => "PRAC",
            TrackerChoice::DapperS => "DAPPER-S",
            TrackerChoice::DapperH => "DAPPER-H",
        }
    }

    /// The four scalable baselines of Figs. 1 and 3-5.
    pub fn scalable_baselines() -> [TrackerChoice; 4] {
        [TrackerChoice::Hydra, TrackerChoice::Start, TrackerChoice::Abacus, TrackerChoice::Comet]
    }

    /// Every tracker, in the order the paper's tables list them.
    pub fn all() -> [TrackerChoice; 11] {
        [
            TrackerChoice::None,
            TrackerChoice::Hydra,
            TrackerChoice::Start,
            TrackerChoice::Comet,
            TrackerChoice::Abacus,
            TrackerChoice::BlockHammer,
            TrackerChoice::Para,
            TrackerChoice::Pride,
            TrackerChoice::Prac,
            TrackerChoice::DapperS,
            TrackerChoice::DapperH,
        ]
    }

    /// Parses a tracker name, ignoring case and `-`/`_` separators, so CLI
    /// spellings like `dapper-h`, `DAPPER_H`, and `DapperH` all resolve.
    pub fn parse(s: &str) -> Option<TrackerChoice> {
        let key: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        TrackerChoice::all().into_iter().find(|t| {
            let name: String = t
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            name == key
        })
    }

    /// True if this tracker reserves half the LLC (START).
    pub fn reserves_llc(self) -> bool {
        self == TrackerChoice::Start
    }

    /// Instantiates the tracker for one channel.
    pub fn build(
        self,
        nrh: u32,
        geometry: Geometry,
        channel: u8,
        seed: u64,
    ) -> Box<dyn RowHammerTracker> {
        let p = TrackerParams { nrh, geometry, channel, seed };
        let d = DapperConfig { geometry, ..DapperConfig::baseline(nrh, channel, seed) };
        match self {
            TrackerChoice::None => Box::new(NullTracker),
            TrackerChoice::Hydra => Box::new(Hydra::new(p)),
            TrackerChoice::Start => Box::new(Start::new(p)),
            TrackerChoice::Comet => Box::new(Comet::new(p)),
            TrackerChoice::Abacus => Box::new(Abacus::new(p)),
            TrackerChoice::BlockHammer => Box::new(BlockHammer::new(p)),
            TrackerChoice::Para => Box::new(Para::new(p)),
            TrackerChoice::Pride => Box::new(Pride::new(p)),
            TrackerChoice::Prac => Box::new(Prac::new(p)),
            TrackerChoice::DapperS => Box::new(DapperS::new(d)),
            TrackerChoice::DapperH => Box::new(DapperH::new(d)),
        }
    }
}

/// The adversary sharing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackChoice {
    /// No attacker: four homogeneous benign copies (Fig. 11 setting).
    None,
    /// Cache-thrashing attacker on one core.
    CacheThrash,
    /// The RH-Tracker-based attack tailored to the tracker under test.
    Tailored,
    /// A specific attack pattern.
    Specific(Attack),
}

impl AttackChoice {
    fn resolve(self, tracker: TrackerChoice) -> Option<Attack> {
        match self {
            AttackChoice::None => None,
            AttackChoice::CacheThrash => Some(Attack::CacheThrash),
            AttackChoice::Tailored => Some(Attack::tailored_for(tracker.name())),
            AttackChoice::Specific(a) => Some(a),
        }
    }
}

/// An attacker trace injected from outside the fixed [`Attack`] menu —
/// attacklab scenarios drive the attacker core through this hook.
///
/// The factory is called once per system build with the experiment's
/// geometry and seed, so a cloned experiment (reference run, parallel
/// sweeps) reconstructs an identical trace stream deterministically.
#[derive(Clone)]
pub struct CustomAttack {
    name: Arc<str>,
    bypasses_llc: bool,
    factory: Arc<dyn Fn(Geometry, u64) -> Box<dyn TraceSource> + Send + Sync>,
}

impl CustomAttack {
    /// Wraps a trace factory under a display name. `bypasses_llc` mirrors
    /// [`Attack::bypasses_llc`]: RowHammer patterns evict with
    /// clflush/conflict sets, cache-pressure patterns go through the LLC.
    pub fn new<F>(name: &str, bypasses_llc: bool, factory: F) -> Self
    where
        F: Fn(Geometry, u64) -> Box<dyn TraceSource> + Send + Sync + 'static,
    {
        Self { name: Arc::from(name), bypasses_llc, factory: Arc::new(factory) }
    }

    /// Display name for results and leaderboards.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the attacker's accesses skip the LLC.
    pub fn bypasses_llc(&self) -> bool {
        self.bypasses_llc
    }

    /// Builds the attacker's trace for one system instance.
    pub fn build(&self, geom: Geometry, seed: u64) -> Box<dyn TraceSource> {
        (self.factory)(geom, seed)
    }
}

impl std::fmt::Debug for CustomAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomAttack")
            .field("name", &self.name)
            .field("bypasses_llc", &self.bypasses_llc)
            .finish_non_exhaustive()
    }
}

/// Pure-compute filler trace for the reference run's idle core.
#[derive(Debug)]
struct IdleTrace {
    next: u64,
}

impl TraceSource for IdleTrace {
    fn next_entry(&mut self) -> TraceEntry {
        // One access per 50K instructions inside a tiny private region:
        // negligible memory traffic.
        self.next = (self.next + 64) % 4096;
        TraceEntry { bubbles: 50_000, addr: PhysAddr((60 << 30) + self.next), is_write: false }
    }
}

/// One experiment: a workload mix, a tracker, and an optional attacker.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Benign workload name (from `workloads::catalog`).
    pub workload: String,
    /// Defense under test.
    pub tracker: TrackerChoice,
    /// Adversary.
    pub attack: AttackChoice,
    /// Attacker injected from outside the fixed [`Attack`] menu; takes
    /// precedence over `attack` for the attacker core.
    pub custom_attack: Option<CustomAttack>,
    /// System configuration (threshold, window, mitigation command, ...).
    pub cfg: SystemConfig,
    /// Attach the ground-truth oracle (slower).
    pub collect_events: bool,
    /// When true, the reference run keeps the attacker (on the insecure
    /// baseline), so normalized performance isolates the *tracker-induced*
    /// overhead rather than the attacker's raw bandwidth contention. The
    /// paper uses this normalization for the DAPPER figures (9, 10, 12, 13,
    /// 16, 17); the motivation figures (1, 3-5) compare against the
    /// attack-free baseline.
    pub isolate_tracker_overhead: bool,
    /// Simulation loop for both the run and its reference. The engines are
    /// bit-identical in results; [`Engine::EventDriven`] (default) is
    /// faster on quiet workloads.
    pub engine: Engine,
}

/// Outcome of [`Experiment::run`].
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Benign workload.
    pub workload: String,
    /// Tracker display name.
    pub tracker_name: &'static str,
    /// Attack display name ("benign" when none).
    pub attack_name: String,
    /// Mean benign IPC relative to the insecure, attack-free baseline.
    pub normalized_performance: f64,
    /// The measured run.
    pub run: RunStats,
    /// The reference run.
    pub reference: RunStats,
}

impl Experiment {
    /// A paper-baseline experiment with a 2 ms window.
    pub fn new(workload: &str) -> Self {
        Self {
            workload: workload.to_string(),
            tracker: TrackerChoice::DapperH,
            attack: AttackChoice::None,
            custom_attack: None,
            cfg: SystemConfig::paper_baseline().with_window(us_to_cycles(2_000.0)),
            collect_events: false,
            isolate_tracker_overhead: false,
            engine: Engine::default(),
        }
    }

    /// A fast variant (500 us window) for tests and doc examples.
    pub fn quick(workload: &str) -> Self {
        let mut e = Self::new(workload);
        e.cfg.window_cycles = us_to_cycles(500.0);
        e
    }

    /// Sets the tracker.
    pub fn tracker(mut self, t: TrackerChoice) -> Self {
        self.tracker = t;
        self
    }

    /// Sets the attack.
    pub fn attack(mut self, a: AttackChoice) -> Self {
        self.attack = a;
        self
    }

    /// Puts a custom attacker on the last core (overrides `attack`).
    pub fn custom(mut self, attack: CustomAttack) -> Self {
        self.custom_attack = Some(attack);
        self
    }

    /// Sets the RowHammer threshold.
    pub fn nrh(mut self, nrh: u32) -> Self {
        self.cfg.nrh = nrh;
        self
    }

    /// Sets the simulation window in microseconds.
    pub fn window_us(mut self, us: f64) -> Self {
        self.cfg.window_cycles = us_to_cycles(us);
        self
    }

    /// Sets the mitigation command flavour.
    pub fn mitigation(mut self, m: MitigationKind) -> Self {
        self.cfg.mitigation = m;
        self
    }

    /// Sets the blast radius.
    pub fn blast_radius(mut self, br: u8) -> Self {
        self.cfg.blast_radius = br;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Uses the eight-channel geometry of Fig. 5 with the given per-core
    /// LLC capacity.
    pub fn eight_channel(mut self, llc_per_core_mib: u64) -> Self {
        self.cfg.geometry = Geometry::eight_channel();
        self.cfg.llc.capacity_bytes = llc_per_core_mib << 20 << 2; // x4 cores
        self
    }

    /// Enables the ground-truth oracle.
    pub fn with_oracle(mut self) -> Self {
        self.collect_events = true;
        self
    }

    /// Normalizes against an attacker-inclusive insecure baseline (isolates
    /// the tracker's own overhead; the DAPPER-figure normalization).
    pub fn isolating(mut self) -> Self {
        self.isolate_tracker_overhead = true;
        self
    }

    /// Selects the simulation engine (default: [`Engine::EventDriven`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    fn build_traces(
        &self,
        attack: Option<Attack>,
        reference: bool,
    ) -> (Vec<Box<dyn TraceSource>>, Vec<bool>) {
        let spec = spec_by_name(&self.workload)
            .unwrap_or_else(|| panic!("unknown workload '{}'", self.workload));
        let cores = self.cfg.cpu.cores as usize;
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cores);
        let mut bypass = vec![false; cores];
        let has_attacker = attack.is_some() || self.custom_attack.is_some();
        for (core, bypass_slot) in bypass.iter_mut().enumerate() {
            let is_attacker_slot = has_attacker && core == cores - 1;
            if is_attacker_slot {
                if reference && !self.isolate_tracker_overhead {
                    traces.push(Box::new(IdleTrace { next: 0 }));
                } else if let Some(custom) = &self.custom_attack {
                    traces.push(custom.build(self.cfg.geometry, self.cfg.seed));
                    *bypass_slot = custom.bypasses_llc();
                } else {
                    let a = attack.expect("attacker slot implies attack");
                    traces.push(Box::new(a.trace(self.cfg.geometry, self.cfg.seed)));
                    *bypass_slot = a.bypasses_llc();
                }
            } else {
                traces.push(Box::new(SyntheticTrace::new(spec, core, self.cfg.seed)));
            }
        }
        (traces, bypass)
    }

    /// Builds the system under test (`reference = false`) or the insecure,
    /// attack-free reference machine (`reference = true`).
    pub fn build_system(&self, reference: bool) -> System {
        let attack = self.attack.resolve(self.tracker);
        let (traces, bypass) = self.build_traces(attack, reference);
        let mut cfg = self.cfg.clone();
        if !reference && self.tracker.reserves_llc() {
            cfg.llc.reserved_ways = cfg.llc.ways / 2;
        }
        let trackers: Vec<Box<dyn RowHammerTracker>> = (0..cfg.geometry.channels)
            .map(|ch| {
                if reference {
                    Box::new(NullTracker) as Box<dyn RowHammerTracker>
                } else {
                    self.tracker.build(cfg.nrh, cfg.geometry, ch, cfg.seed ^ (ch as u64) << 8)
                }
            })
            .collect();
        System::new(cfg, traces, bypass, trackers, self.collect_events && !reference)
    }

    /// The benign core indices for this experiment.
    pub fn benign_cores(&self) -> Vec<usize> {
        let cores = self.cfg.cpu.cores as usize;
        if self.custom_attack.is_none() && self.attack == AttackChoice::None {
            (0..cores).collect()
        } else {
            (0..cores - 1).collect()
        }
    }

    /// Runs the experiment and its reference, returning normalized
    /// performance (the paper's metric).
    pub fn run(self) -> ExperimentResult {
        let reference = self.build_system(true).run_engine(self.engine);
        self.run_against(&reference)
    }

    /// Runs only the system under test, normalizing against a pre-computed
    /// reference (sweeps share one reference per workload).
    pub fn run_against(self, reference: &RunStats) -> ExperimentResult {
        let run = self.build_system(false).run_engine(self.engine);
        let benign = self.benign_cores();
        let attack_name = match (&self.custom_attack, self.attack.resolve(self.tracker)) {
            (Some(c), _) => c.name().to_string(),
            (None, Some(a)) => a.name().to_string(),
            (None, None) => "benign".to_string(),
        };
        ExperimentResult {
            normalized_performance: normalized_performance(&run, reference, &benign),
            workload: self.workload,
            tracker_name: self.tracker.name(),
            attack_name,
            run,
            reference: reference.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_dapper_h_is_near_baseline() {
        let r = Experiment::quick("gcc_like").tracker(TrackerChoice::DapperH).run();
        assert!(r.normalized_performance > 0.9, "DAPPER-H benign: {}", r.normalized_performance);
        assert_eq!(r.tracker_name, "DAPPER-H");
        assert_eq!(r.attack_name, "benign");
    }

    #[test]
    fn tailored_attack_names_resolve() {
        let e = Experiment::quick("gcc_like")
            .tracker(TrackerChoice::Hydra)
            .attack(AttackChoice::Tailored);
        assert_eq!(e.attack.resolve(e.tracker), Some(Attack::HydraRccThrash));
    }

    #[test]
    fn attacker_occupies_last_core() {
        let e = Experiment::quick("gcc_like").attack(AttackChoice::CacheThrash);
        assert_eq!(e.benign_cores(), vec![0, 1, 2]);
        let e2 = Experiment::quick("gcc_like");
        assert_eq!(e2.benign_cores(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = Experiment::quick("not_a_workload").run();
    }

    #[test]
    fn tracker_names_parse_with_any_spelling() {
        assert_eq!(TrackerChoice::parse("dapper-h"), Some(TrackerChoice::DapperH));
        assert_eq!(TrackerChoice::parse("DAPPER_S"), Some(TrackerChoice::DapperS));
        assert_eq!(TrackerChoice::parse("hydra"), Some(TrackerChoice::Hydra));
        assert_eq!(TrackerChoice::parse("CoMeT"), Some(TrackerChoice::Comet));
        assert_eq!(TrackerChoice::parse("blockhammer"), Some(TrackerChoice::BlockHammer));
        assert_eq!(TrackerChoice::parse("what"), None);
        for t in TrackerChoice::all() {
            assert_eq!(TrackerChoice::parse(t.name()), Some(t), "{} must round-trip", t.name());
        }
    }

    #[test]
    fn custom_attack_replays_the_legacy_pattern_identically() {
        // A custom factory wrapping the legacy streaming trace must produce
        // the exact run the built-in enum produces: same traces, same seed,
        // same system.
        let legacy = Experiment::quick("gcc_like")
            .tracker(TrackerChoice::DapperS)
            .attack(AttackChoice::Specific(Attack::Streaming))
            .window_us(100.0)
            .run();
        let custom = Experiment::quick("gcc_like")
            .tracker(TrackerChoice::DapperS)
            .custom(CustomAttack::new("streaming-custom", true, |geom, seed| {
                Box::new(Attack::Streaming.trace(geom, seed))
            }))
            .window_us(100.0)
            .run();
        assert_eq!(custom.attack_name, "streaming-custom");
        assert!(
            (legacy.normalized_performance - custom.normalized_performance).abs() < 1e-12,
            "{} vs {}",
            legacy.normalized_performance,
            custom.normalized_performance
        );
        assert_eq!(legacy.run.mem.activations, custom.run.mem.activations);
    }

    #[test]
    fn custom_attack_occupies_the_last_core() {
        let e = Experiment::quick("gcc_like").custom(CustomAttack::new("x", true, |geom, seed| {
            Box::new(Attack::Streaming.trace(geom, seed))
        }));
        assert_eq!(e.benign_cores(), vec![0, 1, 2]);
    }

    #[test]
    fn reference_reuse_matches_fresh_run() {
        let e1 = Experiment::quick("povray_like").tracker(TrackerChoice::Para);
        let reference = e1.build_system(true).run();
        let a = e1.clone().run_against(&reference);
        let b = Experiment::quick("povray_like").tracker(TrackerChoice::Para).run();
        assert!((a.normalized_performance - b.normalized_performance).abs() < 1e-9);
    }
}
