//! Experiment definition: workload x tracker x attack -> normalized perf.
//!
//! Trackers are selected through the open registry (see
//! [`crate::registry`]): a [`TrackerSel`] names a registered tracker by
//! string key and carries validated parameter overrides, so any registered
//! scheme — built-in or third-party — drops into an [`Experiment`] with
//! `.tracker("hydra")` or a full parameter map. The legacy closed
//! [`TrackerChoice`] enum survives as a deprecated shim that resolves
//! through the same registry.

use cpu::{TraceEntry, TraceSource};
use sim_core::addr::{Geometry, PhysAddr};
use sim_core::config::{MitigationKind, SystemConfig, Threads};
use sim_core::registry::{ParamValue, RegistryError, TrackerParams, TrackerSpec};
use sim_core::telemetry::{
    MitigationLog, Probe, SlowdownTrace, Telemetry, TimeSeriesRecorder, WindowSample,
};
use sim_core::time::{us_to_cycles, Cycle};
use sim_core::tracker::{NullTracker, RowHammerTracker};
use workloads::{spec_by_name, Attack, SyntheticTrace};

use crate::metrics::{normalized_performance, RunStats, RunTelemetry};
use crate::system::{Engine, System};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A tracker selection: a resolved registry spec plus validated parameter
/// overrides. This is how experiments, sweeps, and campaigns name the
/// defense under test.
#[derive(Clone)]
pub struct TrackerSel {
    spec: Arc<TrackerSpec>,
    overrides: BTreeMap<String, ParamValue>,
}

impl TrackerSel {
    /// Resolves a tracker by key, display name, or alias through the
    /// global registry.
    pub fn by_key(name: &str) -> Result<TrackerSel, RegistryError> {
        Ok(TrackerSel { spec: crate::registry::resolve(name)?, overrides: BTreeMap::new() })
    }

    /// Wraps an already-resolved spec.
    pub fn from_spec(spec: Arc<TrackerSpec>) -> TrackerSel {
        TrackerSel { spec, overrides: BTreeMap::new() }
    }

    /// Adds one parameter override, validated against the spec's schema
    /// immediately (unknown keys and out-of-range values fail here, before
    /// any simulation starts).
    pub fn with_param(
        mut self,
        key: &str,
        value: impl Into<ParamValue>,
    ) -> Result<TrackerSel, RegistryError> {
        let mut probe = self.overrides.clone();
        probe.insert(key.to_string(), value.into());
        self.spec.resolve_params(&probe)?;
        self.overrides = probe;
        Ok(self)
    }

    /// Replaces the whole override map (validated against the schema).
    pub fn with_params(
        mut self,
        overrides: BTreeMap<String, ParamValue>,
    ) -> Result<TrackerSel, RegistryError> {
        self.spec.resolve_params(&overrides)?;
        self.overrides = overrides;
        Ok(self)
    }

    /// The resolved spec.
    pub fn spec(&self) -> &Arc<TrackerSpec> {
        &self.spec
    }

    /// Canonical registry key.
    pub fn key(&self) -> &str {
        self.spec.key()
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &str {
        self.spec.display_name()
    }

    /// The parameter overrides riding on this selection.
    pub fn params(&self) -> &BTreeMap<String, ParamValue> {
        &self.overrides
    }

    /// A label distinguishing parameterized selections of the same
    /// tracker: the display name alone for defaults, the overrides
    /// appended otherwise (`Hydra{rcc_entries=512}`) — campaign rows and
    /// leaderboards use this so two variants of one scheme never conflate.
    pub fn label(&self) -> String {
        if self.overrides.is_empty() {
            return self.name().to_string();
        }
        let params: Vec<String> = self.overrides.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.name(), params.join(","))
    }

    /// True if this tracker reserves half the LLC (START).
    pub fn reserves_llc(&self) -> bool {
        self.spec.llc_reserved()
    }

    /// Instantiates the tracker for one channel.
    ///
    /// # Panics
    ///
    /// Panics if the factory rejects the parameter combination; individual
    /// values were already validated when the selection was built, so this
    /// indicates an invalid combination (the error message names the key).
    pub fn build(
        &self,
        nrh: u32,
        geometry: Geometry,
        channel: u8,
        seed: u64,
    ) -> Box<dyn RowHammerTracker> {
        let params =
            TrackerParams::new(nrh, geometry, channel, seed).with_values(self.overrides.clone());
        self.spec
            .build(&params)
            .unwrap_or_else(|e| panic!("cannot build tracker '{}': {e}", self.key()))
    }
}

impl PartialEq for TrackerSel {
    fn eq(&self, other: &Self) -> bool {
        self.spec.key() == other.spec.key() && self.overrides == other.overrides
    }
}

impl std::fmt::Debug for TrackerSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackerSel")
            .field("key", &self.key())
            .field("params", &self.overrides)
            .finish()
    }
}

/// Panicking conversion used by builder-style call sites
/// (`.tracker("hydra")`); use [`TrackerSel::by_key`] to handle unknown
/// names gracefully.
impl From<&str> for TrackerSel {
    fn from(name: &str) -> Self {
        TrackerSel::by_key(name).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl From<&String> for TrackerSel {
    fn from(name: &String) -> Self {
        TrackerSel::from(name.as_str())
    }
}

impl From<Arc<TrackerSpec>> for TrackerSel {
    fn from(spec: Arc<TrackerSpec>) -> Self {
        TrackerSel::from_spec(spec)
    }
}

#[allow(deprecated)]
impl From<TrackerChoice> for TrackerSel {
    fn from(choice: TrackerChoice) -> Self {
        TrackerSel::from(choice.key())
    }
}

/// Which RowHammer defense guards the memory controller.
///
/// Deprecated shim over the open registry: the closed enum cannot name
/// third-party trackers or carry parameter overrides. Every method
/// delegates to the registry, so behaviour is bit-identical to resolving
/// the same key through [`TrackerSel`].
#[deprecated(
    since = "0.2.0",
    note = "resolve trackers through the registry (`TrackerSel::by_key`, \
            `Experiment::tracker(\"hydra\")`) instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerChoice {
    /// Insecure baseline (no tracker).
    None,
    /// Hydra (ISCA'22).
    Hydra,
    /// START (HPCA'24).
    Start,
    /// CoMeT (HPCA'24).
    Comet,
    /// ABACuS (USENIX Sec'24).
    Abacus,
    /// BlockHammer (HPCA'21).
    BlockHammer,
    /// PARA (ISCA'14).
    Para,
    /// PrIDE (ISCA'24).
    Pride,
    /// PRAC / QPRAC (HPCA'25).
    Prac,
    /// DAPPER-S (this paper, Section V).
    DapperS,
    /// DAPPER-H (this paper, Section VI).
    DapperH,
}

#[allow(deprecated)]
impl TrackerChoice {
    /// The registry key this variant resolves through.
    pub fn key(self) -> &'static str {
        match self {
            TrackerChoice::None => "none",
            TrackerChoice::Hydra => "hydra",
            TrackerChoice::Start => "start",
            TrackerChoice::Comet => "comet",
            TrackerChoice::Abacus => "abacus",
            TrackerChoice::BlockHammer => "blockhammer",
            TrackerChoice::Para => "para",
            TrackerChoice::Pride => "pride",
            TrackerChoice::Prac => "prac",
            TrackerChoice::DapperS => "dapper-s",
            TrackerChoice::DapperH => "dapper-h",
        }
    }

    /// Display name matching the paper's figures (pinned to the
    /// registry's display names by the registry-equivalence suite).
    pub fn name(self) -> &'static str {
        match self {
            TrackerChoice::None => "none",
            TrackerChoice::Hydra => "Hydra",
            TrackerChoice::Start => "START",
            TrackerChoice::Comet => "CoMeT",
            TrackerChoice::Abacus => "ABACUS",
            TrackerChoice::BlockHammer => "BlockHammer",
            TrackerChoice::Para => "PARA",
            TrackerChoice::Pride => "PrIDE",
            TrackerChoice::Prac => "PRAC",
            TrackerChoice::DapperS => "DAPPER-S",
            TrackerChoice::DapperH => "DAPPER-H",
        }
    }

    /// The four scalable baselines of Figs. 1 and 3-5.
    pub fn scalable_baselines() -> [TrackerChoice; 4] {
        [TrackerChoice::Hydra, TrackerChoice::Start, TrackerChoice::Abacus, TrackerChoice::Comet]
    }

    /// Every tracker, in the order the paper's tables list them.
    pub fn all() -> [TrackerChoice; 11] {
        [
            TrackerChoice::None,
            TrackerChoice::Hydra,
            TrackerChoice::Start,
            TrackerChoice::Comet,
            TrackerChoice::Abacus,
            TrackerChoice::BlockHammer,
            TrackerChoice::Para,
            TrackerChoice::Pride,
            TrackerChoice::Prac,
            TrackerChoice::DapperS,
            TrackerChoice::DapperH,
        ]
    }

    /// Parses a tracker name through the registry's single lookup path:
    /// case and separator insensitive, alias table included — so
    /// `dapper-h`, `DAPPER_H`, `DapperH`, and the alias `dapper` all
    /// resolve. Returns `None` for registry keys with no legacy variant.
    pub fn parse(s: &str) -> Option<TrackerChoice> {
        let spec = crate::registry::resolve(s).ok()?;
        TrackerChoice::all().into_iter().find(|t| t.key() == spec.key())
    }

    /// True if this tracker reserves half the LLC (START).
    pub fn reserves_llc(self) -> bool {
        TrackerSel::from(self).reserves_llc()
    }

    /// Instantiates the tracker for one channel through the registry.
    pub fn build(
        self,
        nrh: u32,
        geometry: Geometry,
        channel: u8,
        seed: u64,
    ) -> Box<dyn RowHammerTracker> {
        TrackerSel::from(self).build(nrh, geometry, channel, seed)
    }
}

/// The adversary sharing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackChoice {
    /// No attacker: four homogeneous benign copies (Fig. 11 setting).
    None,
    /// Cache-thrashing attacker on one core.
    CacheThrash,
    /// The RH-Tracker-based attack tailored to the tracker under test.
    Tailored,
    /// A specific attack pattern.
    Specific(Attack),
}

impl AttackChoice {
    /// The concrete [`Attack`] this choice denotes against `tracker`
    /// (`None` for the benign setting). `Tailored` resolves to the
    /// specific pattern selected for the tracker under test, which is why
    /// the run cache canonicalizes through this method: `tailored` and an
    /// explicit naming of the same pattern are the same cell.
    pub fn resolve(self, tracker: &TrackerSel) -> Option<Attack> {
        match self {
            AttackChoice::None => None,
            AttackChoice::CacheThrash => Some(Attack::CacheThrash),
            AttackChoice::Tailored => Some(Attack::tailored_for(tracker.name())),
            AttackChoice::Specific(a) => Some(a),
        }
    }
}

/// An attacker trace injected from outside the fixed [`Attack`] menu —
/// attacklab scenarios drive the attacker core through this hook.
///
/// The factory is called once per system build with the experiment's
/// geometry and seed, so a cloned experiment (reference run, parallel
/// sweeps) reconstructs an identical trace stream deterministically.
#[derive(Clone)]
pub struct CustomAttack {
    name: Arc<str>,
    bypasses_llc: bool,
    factory: Arc<dyn Fn(Geometry, u64) -> Box<dyn TraceSource> + Send + Sync>,
}

impl CustomAttack {
    /// Wraps a trace factory under a display name. `bypasses_llc` mirrors
    /// [`Attack::bypasses_llc`]: RowHammer patterns evict with
    /// clflush/conflict sets, cache-pressure patterns go through the LLC.
    pub fn new<F>(name: &str, bypasses_llc: bool, factory: F) -> Self
    where
        F: Fn(Geometry, u64) -> Box<dyn TraceSource> + Send + Sync + 'static,
    {
        Self { name: Arc::from(name), bypasses_llc, factory: Arc::new(factory) }
    }

    /// Display name for results and leaderboards.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the attacker's accesses skip the LLC.
    pub fn bypasses_llc(&self) -> bool {
        self.bypasses_llc
    }

    /// Builds the attacker's trace for one system instance.
    pub fn build(&self, geom: Geometry, seed: u64) -> Box<dyn TraceSource> {
        (self.factory)(geom, seed)
    }
}

impl std::fmt::Debug for CustomAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomAttack")
            .field("name", &self.name)
            .field("bypasses_llc", &self.bypasses_llc)
            .finish_non_exhaustive()
    }
}

/// Pure-compute filler trace for the reference run's idle core.
#[derive(Debug)]
struct IdleTrace {
    next: u64,
}

impl TraceSource for IdleTrace {
    fn next_entry(&mut self) -> TraceEntry {
        // One access per 50K instructions inside a tiny private region:
        // negligible memory traffic.
        self.next = (self.next + 64) % 4096;
        TraceEntry { bubbles: 50_000, addr: PhysAddr((60 << 30) + self.next), is_write: false }
    }
}

/// How much the attacker knows about the machine before hammering — the
/// realism axis of the attackpipe end-to-end pipeline.
///
/// This is pure configuration data: the `sim` crate carries it so the
/// spec layer can parse a `[attacker]` section and the run cache can
/// canonicalize it, while the pipeline itself (recon, hammer compilation,
/// victim adjudication) lives in the `attackpipe` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerKnowledge {
    /// Full knowledge of the address mapping: the attacker hammers true
    /// adjacent same-bank rows directly (the classic simulator idealism).
    Omniscient,
    /// Knowledge inferred purely from access latencies: a Spoiler/DRAMA
    /// style row-buffer-conflict recon run reverse-engineers bank/row
    /// co-location before the hammer run; inference errors blunt the
    /// attack.
    TimingRecon,
    /// No knowledge: random physical addresses.
    Blind,
}

impl AttackerKnowledge {
    /// Every level, in descending-knowledge order.
    pub const ALL: [AttackerKnowledge; 3] = [Self::Omniscient, Self::TimingRecon, Self::Blind];

    /// Canonical spec-file spelling.
    pub fn key(self) -> &'static str {
        match self {
            Self::Omniscient => "omniscient",
            Self::TimingRecon => "timing-recon",
            Self::Blind => "blind",
        }
    }

    /// Resolves a spec-file spelling (case- and separator-insensitive,
    /// like registry keys).
    pub fn by_key(name: &str) -> Result<Self, String> {
        let norm: String =
            name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_lowercase();
        match norm.as_str() {
            "omniscient" => Ok(Self::Omniscient),
            "timingrecon" => Ok(Self::TimingRecon),
            "blind" => Ok(Self::Blind),
            _ => Err(format!(
                "unknown attacker knowledge '{name}' (expected omniscient, timing-recon, or blind)"
            )),
        }
    }
}

impl std::fmt::Display for AttackerKnowledge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Attacker-pipeline configuration (the `[attacker]` spec section): how
/// much the adversary knows, how many probe accesses the recon stage may
/// spend, and the seed driving every attacker-side random choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackerConfig {
    /// Knowledge level.
    pub knowledge: AttackerKnowledge,
    /// Recon budget in probe accesses (only spent by
    /// [`AttackerKnowledge::TimingRecon`]).
    pub recon_budget: u64,
    /// Seed for attacker-side choices (pool placement, victim spread),
    /// independent of the simulation seed.
    pub seed: u64,
}

impl AttackerConfig {
    /// Default recon budget: enough for stride discovery plus a few
    /// hundred verification pairs on the baseline geometry.
    pub const DEFAULT_RECON_BUDGET: u64 = 4096;
    /// Default attacker seed.
    pub const DEFAULT_SEED: u64 = 0xA77AC4;

    /// A configuration at the given knowledge level with default budget
    /// and seed.
    pub fn new(knowledge: AttackerKnowledge) -> Self {
        Self { knowledge, recon_budget: Self::DEFAULT_RECON_BUDGET, seed: Self::DEFAULT_SEED }
    }
}

/// What to observe during an experiment, declaratively — the
/// [`Experiment`]-level face of the [`sim_core::telemetry`] probe API.
/// Everything defaults to off (the zero-overhead fast path).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetrySpec {
    /// Attach the ground-truth RowHammer oracle (an event-sink probe).
    pub oracle: bool,
    /// Record per-window counter deltas ([`TimeSeriesRecorder`]).
    pub time_series: bool,
    /// Record the per-window benign slowdown vs. the reference run
    /// ([`SlowdownTrace`] — the paper's attack-transient axis).
    pub slowdown: bool,
    /// Record the mitigation timeline ([`MitigationLog`]).
    pub mitigation_log: bool,
    /// Window length in microseconds (default: one tREFW, 32 ms — set
    /// this explicitly for runs shorter than that, or the only sample
    /// will be the final partial window).
    pub window_us: Option<f64>,
}

impl TelemetrySpec {
    /// Every recorder on (oracle excluded) with the given window length.
    pub fn all_recorders(window_us: f64) -> Self {
        Self {
            oracle: false,
            time_series: true,
            slowdown: true,
            mitigation_log: true,
            window_us: Some(window_us),
        }
    }

    /// True if any recorder is requested (the oracle alone reports
    /// through `RunStats::oracle` and produces no [`RunTelemetry`]).
    pub fn recorders_wanted(&self) -> bool {
        self.windows_wanted() || self.mitigation_log
    }

    /// True if any window-consuming recorder is requested.
    pub fn windows_wanted(&self) -> bool {
        self.time_series || self.slowdown
    }

    /// The window length in cycles, when overridden.
    pub fn window_cycles(&self) -> Option<Cycle> {
        self.window_us.map(us_to_cycles)
    }
}

/// One experiment: a workload mix, a tracker, and an optional attacker.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Benign workload name (from `workloads::catalog`).
    pub workload: String,
    /// Defense under test (a registry key plus parameter overrides).
    pub tracker: TrackerSel,
    /// Adversary.
    pub attack: AttackChoice,
    /// Attacker injected from outside the fixed [`Attack`] menu; takes
    /// precedence over `attack` for the attacker core.
    pub custom_attack: Option<CustomAttack>,
    /// System configuration (threshold, window, mitigation command, ...).
    pub cfg: SystemConfig,
    /// What to observe (replaces the retired all-or-nothing
    /// `collect_events` flag).
    pub telemetry: TelemetrySpec,
    /// When true, the reference run keeps the attacker (on the insecure
    /// baseline), so normalized performance isolates the *tracker-induced*
    /// overhead rather than the attacker's raw bandwidth contention. The
    /// paper uses this normalization for the DAPPER figures (9, 10, 12, 13,
    /// 16, 17); the motivation figures (1, 3-5) compare against the
    /// attack-free baseline.
    pub isolate_tracker_overhead: bool,
    /// Simulation loop for both the run and its reference. The engines are
    /// bit-identical in results; [`Engine::EventDriven`] (default) is
    /// faster on quiet workloads.
    pub engine: Engine,
    /// Attacker-pipeline configuration (the `[attacker]` spec section).
    /// Pure data at this layer: the `attackpipe` crate interprets it;
    /// plain `Experiment::run` ignores it, and the cell descriptor
    /// canonicalizes it only when present so attacker-free keys are
    /// unchanged.
    pub attacker: Option<AttackerConfig>,
    /// Armed fault injector (chaos tests only). An execution knob like
    /// `cfg.threads`: recovery is bit-identical, so the run-cache cell
    /// descriptor deliberately ignores it. Threaded into every built
    /// [`System`]'s shard pool.
    pub faults: Option<std::sync::Arc<sim_core::fault::Injector>>,
}

/// Outcome of [`Experiment::run`].
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Benign workload.
    pub workload: String,
    /// Tracker display name.
    pub tracker_name: String,
    /// Attack display name ("benign" when none).
    pub attack_name: String,
    /// Mean benign IPC relative to the insecure, attack-free baseline.
    pub normalized_performance: f64,
    /// The measured run.
    pub run: RunStats,
    /// The reference run.
    pub reference: RunStats,
    /// Time-series observations, when the experiment's [`TelemetrySpec`]
    /// enabled any recorder.
    pub telemetry: Option<RunTelemetry>,
}

impl Experiment {
    /// A paper-baseline experiment with a 2 ms window.
    pub fn new(workload: &str) -> Self {
        Self {
            workload: workload.to_string(),
            tracker: TrackerSel::by_key("dapper-h").expect("built-in key"),
            attack: AttackChoice::None,
            custom_attack: None,
            cfg: SystemConfig::paper_baseline().with_window(us_to_cycles(2_000.0)),
            telemetry: TelemetrySpec::default(),
            isolate_tracker_overhead: false,
            engine: Engine::default(),
            attacker: None,
            faults: None,
        }
    }

    /// A fast variant (500 us window) for tests and doc examples.
    pub fn quick(workload: &str) -> Self {
        let mut e = Self::new(workload);
        e.cfg.window_cycles = us_to_cycles(500.0);
        e
    }

    /// Sets the tracker: a registry key / display name / alias
    /// (`"hydra"`, `"DAPPER_H"`), a prepared [`TrackerSel`], or a legacy
    /// [`TrackerChoice`] variant.
    ///
    /// # Panics
    ///
    /// Panics (via the `From<&str>` conversion) on an unknown name; use
    /// [`TrackerSel::by_key`] for fallible resolution.
    pub fn tracker(mut self, t: impl Into<TrackerSel>) -> Self {
        self.tracker = t.into();
        self
    }

    /// Overrides one tracker parameter (e.g. `("rcc_entries", 512)` on
    /// Hydra), validated against the tracker's schema.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key or out-of-range value; the spec layer uses
    /// the fallible [`TrackerSel::with_param`] instead.
    pub fn tracker_param(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.tracker = self.tracker.with_param(key, value).unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Sets the attack.
    pub fn attack(mut self, a: AttackChoice) -> Self {
        self.attack = a;
        self
    }

    /// Puts a custom attacker on the last core (overrides `attack`).
    pub fn custom(mut self, attack: CustomAttack) -> Self {
        self.custom_attack = Some(attack);
        self
    }

    /// Sets the RowHammer threshold.
    pub fn nrh(mut self, nrh: u32) -> Self {
        self.cfg.nrh = nrh;
        self
    }

    /// Sets the simulation window in microseconds.
    pub fn window_us(mut self, us: f64) -> Self {
        self.cfg.window_cycles = us_to_cycles(us);
        self
    }

    /// Sets the mitigation command flavour.
    pub fn mitigation(mut self, m: MitigationKind) -> Self {
        self.cfg.mitigation = m;
        self
    }

    /// Sets the blast radius.
    pub fn blast_radius(mut self, br: u8) -> Self {
        self.cfg.blast_radius = br;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Uses the eight-channel geometry of Fig. 5 with the given per-core
    /// LLC capacity.
    pub fn eight_channel(mut self, llc_per_core_mib: u64) -> Self {
        self.cfg.geometry = Geometry::eight_channel();
        self.cfg.llc.capacity_bytes = llc_per_core_mib << 20 << 2; // x4 cores
        self
    }

    /// Sets the memory-phase execution lanes ([`Threads::Seq`] by
    /// default). An execution knob, not a model knob: results are
    /// bit-identical for every setting, only wall-clock changes, and the
    /// run-cache cell key deliberately ignores it.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Enables the ground-truth oracle.
    pub fn with_oracle(mut self) -> Self {
        self.telemetry.oracle = true;
        self
    }

    /// Sets the whole telemetry specification at once (the `[telemetry]`
    /// spec-file section lands here).
    pub fn with_telemetry(mut self, t: TelemetrySpec) -> Self {
        self.telemetry = t;
        self
    }

    /// Enables the per-window slowdown trace with the given window length
    /// (also records the reference run's window series so the trace
    /// normalizes window-by-window).
    pub fn record_slowdown(mut self, window_us: f64) -> Self {
        self.telemetry.slowdown = true;
        self.telemetry.window_us = Some(window_us);
        self
    }

    /// Normalizes against an attacker-inclusive insecure baseline (isolates
    /// the tracker's own overhead; the DAPPER-figure normalization).
    pub fn isolating(mut self) -> Self {
        self.isolate_tracker_overhead = true;
        self
    }

    /// Selects the simulation engine (default: [`Engine::EventDriven`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the attacker-pipeline configuration (knowledge level, recon
    /// budget, attacker seed). Interpreted by the `attackpipe` crate;
    /// inert for plain [`Experiment::run`].
    pub fn attacker(mut self, a: AttackerConfig) -> Self {
        self.attacker = Some(a);
        self
    }

    /// Arms a fault plan on every system this experiment builds (chaos
    /// tests only). Recovery is bit-identical by construction, so results
    /// — and the run-cache cell key — are unchanged by arming.
    pub fn fault_plan(mut self, plan: sim_core::fault::FaultPlan) -> Self {
        self.faults = Some(plan.arm());
        self
    }

    fn build_traces(
        &self,
        attack: Option<Attack>,
        reference: bool,
    ) -> (Vec<Box<dyn TraceSource>>, Vec<bool>) {
        let spec = spec_by_name(&self.workload)
            .unwrap_or_else(|| panic!("unknown workload '{}'", self.workload));
        let cores = self.cfg.cpu.cores as usize;
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cores);
        let mut bypass = vec![false; cores];
        let has_attacker = attack.is_some() || self.custom_attack.is_some();
        for (core, bypass_slot) in bypass.iter_mut().enumerate() {
            let is_attacker_slot = has_attacker && core == cores - 1;
            if is_attacker_slot {
                if reference && !self.isolate_tracker_overhead {
                    traces.push(Box::new(IdleTrace { next: 0 }));
                } else if let Some(custom) = &self.custom_attack {
                    traces.push(custom.build(self.cfg.geometry, self.cfg.seed));
                    *bypass_slot = custom.bypasses_llc();
                } else {
                    let a = attack.expect("attacker slot implies attack");
                    traces.push(Box::new(a.trace(self.cfg.geometry, self.cfg.seed)));
                    *bypass_slot = a.bypasses_llc();
                }
            } else {
                traces.push(Box::new(SyntheticTrace::new(spec, core, self.cfg.seed)));
            }
        }
        (traces, bypass)
    }

    /// Builds the system under test (`reference = false`) or the insecure,
    /// attack-free reference machine (`reference = true`).
    ///
    /// The system under test carries the probes the [`TelemetrySpec`]
    /// asks for (except the [`SlowdownTrace`], which needs the reference
    /// and is attached by [`Experiment::run_against`]); the reference
    /// machine gets a [`TimeSeriesRecorder`] when a slowdown trace will
    /// need per-window reference IPC.
    pub fn build_system(&self, reference: bool) -> System {
        let attack = self.attack.resolve(&self.tracker);
        let (traces, bypass) = self.build_traces(attack, reference);
        let mut cfg = self.cfg.clone();
        if !reference && self.tracker.reserves_llc() {
            cfg.llc.reserved_ways = cfg.llc.ways / 2;
        }
        let trackers: Vec<Box<dyn RowHammerTracker>> = (0..cfg.geometry.channels)
            .map(|ch| {
                if reference {
                    Box::new(NullTracker) as Box<dyn RowHammerTracker>
                } else {
                    self.tracker.build(cfg.nrh, cfg.geometry, ch, cfg.seed ^ (ch as u64) << 8)
                }
            })
            .collect();
        let t = &self.telemetry;
        let mut telemetry = Telemetry::none();
        if let Some(w) = t.window_cycles() {
            telemetry = telemetry.window_len(w);
        }
        if reference {
            if t.slowdown {
                telemetry = telemetry.probe(TimeSeriesRecorder::new());
            }
        } else {
            telemetry = telemetry.oracle(t.oracle);
            if t.time_series {
                telemetry = telemetry.probe(TimeSeriesRecorder::new());
            }
            if t.mitigation_log {
                telemetry = telemetry.probe(MitigationLog::new());
            }
        }
        let mut sys = System::new(cfg, traces, bypass, trackers, telemetry);
        if let Some(faults) = &self.faults {
            sys.arm_faults(std::sync::Arc::clone(faults));
        }
        sys
    }

    /// The benign core indices for this experiment.
    pub fn benign_cores(&self) -> Vec<usize> {
        let cores = self.cfg.cpu.cores as usize;
        if self.custom_attack.is_none() && self.attack == AttackChoice::None {
            (0..cores).collect()
        } else {
            (0..cores - 1).collect()
        }
    }

    /// Runs the experiment and its reference, returning normalized
    /// performance (the paper's metric).
    pub fn run(self) -> ExperimentResult {
        let mut ref_sys = self.build_system(true);
        let reference = ref_sys.run_engine(self.engine);
        let reference_windows = take_recorder::<TimeSeriesRecorder>(&mut ref_sys.take_probes())
            .map(TimeSeriesRecorder::into_samples)
            .unwrap_or_default();
        self.run_with_reference(&reference, reference_windows)
    }

    /// Runs only the system under test, normalizing against a pre-computed
    /// reference (sweeps share one reference per workload). A slowdown
    /// trace requested through the [`TelemetrySpec`] normalizes against
    /// the reference's **end-of-run** per-core IPC here — per-window
    /// reference samples are only available through [`Experiment::run`],
    /// which owns the reference simulation.
    pub fn run_against(self, reference: &RunStats) -> ExperimentResult {
        self.run_with_reference(reference, Vec::new())
    }

    fn run_with_reference(
        self,
        reference: &RunStats,
        reference_windows: Vec<WindowSample>,
    ) -> ExperimentResult {
        let benign = self.benign_cores();
        let mut sys = self.build_system(false);
        if self.telemetry.slowdown {
            let trace = if reference_windows.is_empty() {
                let flat = (0..self.cfg.cpu.cores as usize).map(|i| reference.ipc(i)).collect();
                SlowdownTrace::flat(flat, benign.clone())
            } else {
                SlowdownTrace::per_window(reference_windows.clone(), benign.clone())
            };
            sys.attach_probe(Box::new(trace));
        }
        let run = sys.run_engine(self.engine);
        let telemetry = self.telemetry.recorders_wanted().then(|| {
            let mut probes = sys.take_probes();
            RunTelemetry {
                window_len: self
                    .telemetry
                    .window_cycles()
                    .unwrap_or(dram::TimingParams::ddr5_6400().t_refw),
                windows: take_recorder::<TimeSeriesRecorder>(&mut probes)
                    .map(TimeSeriesRecorder::into_samples)
                    .unwrap_or_default(),
                reference_windows,
                slowdown: take_recorder::<SlowdownTrace>(&mut probes),
                mitigations: take_recorder::<MitigationLog>(&mut probes)
                    .map(|log| log.records().to_vec())
                    .unwrap_or_default(),
            }
        });
        let attack_name = match (&self.custom_attack, self.attack.resolve(&self.tracker)) {
            (Some(c), _) => c.name().to_string(),
            (None, Some(a)) => a.name().to_string(),
            (None, None) => "benign".to_string(),
        };
        ExperimentResult {
            normalized_performance: normalized_performance(&run, reference, &benign),
            workload: self.workload,
            tracker_name: self.tracker.name().to_string(),
            attack_name,
            run,
            reference: reference.clone(),
            telemetry,
        }
    }
}

/// Pulls the first probe of concrete type `T` out of a finished run's
/// probe list.
fn take_recorder<T: Probe>(probes: &mut Vec<Box<dyn Probe>>) -> Option<T> {
    let idx = probes.iter().position(|p| p.as_any().is::<T>())?;
    let boxed = probes.remove(idx);
    // Probe: Any, so the box downcasts through Box<dyn Any>.
    let any: Box<dyn std::any::Any> = boxed.into_any();
    any.downcast::<T>().ok().map(|b| *b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_dapper_h_is_near_baseline() {
        let r = Experiment::quick("gcc_like").tracker("dapper-h").run();
        assert!(r.normalized_performance > 0.9, "DAPPER-H benign: {}", r.normalized_performance);
        assert_eq!(r.tracker_name, "DAPPER-H");
        assert_eq!(r.attack_name, "benign");
    }

    #[test]
    fn tailored_attack_names_resolve() {
        let e = Experiment::quick("gcc_like").tracker("hydra").attack(AttackChoice::Tailored);
        assert_eq!(e.attack.resolve(&e.tracker), Some(Attack::HydraRccThrash));
    }

    #[test]
    fn tracker_params_ride_the_selection() {
        let e = Experiment::quick("gcc_like").tracker("hydra").tracker_param("rcc_entries", 512);
        assert_eq!(e.tracker.key(), "hydra");
        assert_eq!(e.tracker.params()["rcc_entries"], ParamValue::Int(512));
    }

    #[test]
    #[should_panic(expected = "unknown tracker")]
    fn unknown_tracker_key_panics_with_known_list() {
        let _ = Experiment::quick("gcc_like").tracker("tracktor");
    }

    #[test]
    #[should_panic(expected = "rcc_entriez")]
    fn unknown_tracker_param_panics_with_the_key() {
        let _ = Experiment::quick("gcc_like").tracker("hydra").tracker_param("rcc_entriez", 1);
    }

    #[test]
    fn attacker_occupies_last_core() {
        let e = Experiment::quick("gcc_like").attack(AttackChoice::CacheThrash);
        assert_eq!(e.benign_cores(), vec![0, 1, 2]);
        let e2 = Experiment::quick("gcc_like");
        assert_eq!(e2.benign_cores(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = Experiment::quick("not_a_workload").run();
    }

    #[test]
    #[allow(deprecated)]
    fn tracker_names_parse_with_any_spelling() {
        assert_eq!(TrackerChoice::parse("dapper-h"), Some(TrackerChoice::DapperH));
        assert_eq!(TrackerChoice::parse("DAPPER_S"), Some(TrackerChoice::DapperS));
        assert_eq!(TrackerChoice::parse("hydra"), Some(TrackerChoice::Hydra));
        assert_eq!(TrackerChoice::parse("CoMeT"), Some(TrackerChoice::Comet));
        assert_eq!(TrackerChoice::parse("blockhammer"), Some(TrackerChoice::BlockHammer));
        assert_eq!(TrackerChoice::parse("what"), None);
        // Registry aliases resolve through the same single lookup path.
        assert_eq!(TrackerChoice::parse("qprac"), Some(TrackerChoice::Prac));
        assert_eq!(TrackerChoice::parse("dapper"), Some(TrackerChoice::DapperH));
        assert_eq!(TrackerChoice::parse("insecure"), Some(TrackerChoice::None));
        for t in TrackerChoice::all() {
            assert_eq!(TrackerChoice::parse(t.name()), Some(t), "{} must round-trip", t.name());
        }
    }

    #[test]
    fn custom_attack_replays_the_legacy_pattern_identically() {
        // A custom factory wrapping the legacy streaming trace must produce
        // the exact run the built-in enum produces: same traces, same seed,
        // same system.
        let legacy = Experiment::quick("gcc_like")
            .tracker("dapper-s")
            .attack(AttackChoice::Specific(Attack::Streaming))
            .window_us(100.0)
            .run();
        let custom = Experiment::quick("gcc_like")
            .tracker("dapper-s")
            .custom(CustomAttack::new("streaming-custom", true, |geom, seed| {
                Box::new(Attack::Streaming.trace(geom, seed))
            }))
            .window_us(100.0)
            .run();
        assert_eq!(custom.attack_name, "streaming-custom");
        assert!(
            (legacy.normalized_performance - custom.normalized_performance).abs() < 1e-12,
            "{} vs {}",
            legacy.normalized_performance,
            custom.normalized_performance
        );
        assert_eq!(legacy.run.mem.activations, custom.run.mem.activations);
    }

    #[test]
    fn custom_attack_occupies_the_last_core() {
        let e = Experiment::quick("gcc_like").custom(CustomAttack::new("x", true, |geom, seed| {
            Box::new(Attack::Streaming.trace(geom, seed))
        }));
        assert_eq!(e.benign_cores(), vec![0, 1, 2]);
    }

    #[test]
    fn telemetry_rides_the_experiment() {
        let r = Experiment::quick("gcc_like")
            .tracker("hydra")
            .attack(AttackChoice::CacheThrash)
            .window_us(150.0)
            .with_telemetry(TelemetrySpec::all_recorders(25.0))
            .run();
        let t = r.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(t.windows.len(), 6, "150 us run / 25 us windows");
        assert_eq!(t.reference_windows.len(), 6, "reference recorded per-window");
        let trace = t.slowdown.as_ref().expect("slowdown recorder on");
        assert_eq!(trace.points().len(), 6);
        assert!(trace.points().iter().all(|p| p.normalized_ipc.is_finite()));
        assert!(t.time_to_max_slowdown_us().is_some());
        let total: u64 = t.windows.iter().map(|w| w.mem.activations).sum();
        assert_eq!(total, r.run.mem.activations, "window deltas must sum to the run total");
    }

    #[test]
    fn telemetry_does_not_change_the_metrics() {
        let base = || {
            Experiment::quick("gcc_like")
                .tracker("para")
                .attack(AttackChoice::Tailored)
                .window_us(120.0)
        };
        let plain = base().run();
        let probed = base().with_telemetry(TelemetrySpec::all_recorders(20.0)).run();
        assert_eq!(plain.run, probed.run, "recorders must not perturb the run");
        assert_eq!(plain.reference, probed.reference);
        assert!((plain.normalized_performance - probed.normalized_performance).abs() < 1e-15);
        assert!(plain.telemetry.is_none());
        assert!(probed.telemetry.is_some());
    }

    #[test]
    fn run_against_falls_back_to_a_flat_reference() {
        let base = || {
            Experiment::quick("povray_like").tracker("para").window_us(150.0).record_slowdown(30.0)
        };
        let reference = base().build_system(true).run();
        let r = base().run_against(&reference);
        let t = r.telemetry.expect("slowdown recorder on");
        assert!(t.reference_windows.is_empty(), "shared references have no window series");
        let trace = t.slowdown.expect("trace recorded");
        assert_eq!(trace.points().len(), 5);
        assert!(trace.points().iter().all(|p| p.normalized_ipc > 0.0));
    }

    #[test]
    fn reference_reuse_matches_fresh_run() {
        let e1 = Experiment::quick("povray_like").tracker("para");
        let reference = e1.build_system(true).run();
        let a = e1.clone().run_against(&reference);
        let b = Experiment::quick("povray_like").tracker("para").run();
        assert!((a.normalized_performance - b.normalized_performance).abs() < 1e-9);
    }
}
