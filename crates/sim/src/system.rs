//! The assembled system: cores + LLC + controllers + tracker + oracle.
//!
//! Two execution engines share the same component models:
//!
//! * [`Engine::Dense`] ticks every component on every bus cycle — the
//!   reference semantics.
//! * [`Engine::EventDriven`] (the default) advances time straight to the
//!   next *interesting* cycle whenever it can prove the jump is exact:
//!   every controller reports a lower bound on its next actionable cycle
//!   through [`sim_core::sched::NextEvent`], and every core reports how far
//!   it can be fast-forwarded in closed form ([`cpu::Quiescence`]). The two
//!   engines produce **bit-identical** [`RunStats`] by construction; the
//!   cross-engine equivalence suite (`tests/engine_equivalence.rs`) holds
//!   that line.
//!
//! Each bus cycle splits into a **memory phase** — every channel's
//! [`memctrl::ChannelShard`] advances through the cycle, collecting due
//! completions into its private buffer — and a **core phase** — the
//! coordinator drains those buffers *in channel-index order*, delivers
//! them, and steps the cores, which inject new requests into the shards.
//! Shards share nothing, and the lookahead bound
//! ([`sim_core::sched::NextEvent::min_inject_latency`]) guarantees
//! nothing injected during the core phase of cycle `t` can complete at or
//! before `t`, so the memory phase may run the shards concurrently
//! ([`sim_core::config::Threads`]) with results **bit-identical** to
//! sequential execution: the merge order is fixed by construction, not by
//! thread scheduling. Telemetry window boundaries remain the hard global
//! barrier — samples are taken only between cycles, with every shard home.
//!
//! Observation rides the [`sim_core::telemetry`] probe API: a
//! [`Telemetry`] configuration attaches any number of probes to a run —
//! event sinks (the ground-truth oracle is one such client), per-window
//! counter samplers, run-lifecycle hooks. Probes only read: `RunStats`
//! stays bit-identical with and without them (`tests/telemetry_equivalence.rs`),
//! and the event engine keeps skipping — it merely caps each jump at the
//! next window boundary so samples land exactly where the dense loop
//! would take them.

use analysis::OracleProbe;
use cpu::{ClockRatio, Core, MemoryPort, PortResponse, Quiescence, TraceSource};
use dram::{DramChannel, TimingParams};
use llcache::{Llc, LookupResult};
use memctrl::{ChannelController, ChannelShard, CtrlConfig};
use sim_core::addr::PhysAddr;
use sim_core::config::SystemConfig;
use sim_core::json::Json;
use sim_core::req::{AccessKind, MemRequest, SourceId};
use sim_core::sched::NextEvent;
use sim_core::stats::MemStats;
use sim_core::telemetry::{Probe, RunMeta, Telemetry, WindowSample};
use sim_core::time::Cycle;
use sim_core::tracker::RowHammerTracker;

use crate::metrics::RunStats;
use crate::pool::{ShardOutcome, ShardPool};

/// Which simulation loop drives the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Tick every component on every bus cycle (reference semantics).
    Dense,
    /// Skip quiet stretches; falls back to dense ticking whenever any
    /// component might act. Bit-identical results, multi-x faster on
    /// idle-heavy workloads.
    #[default]
    EventDriven,
}

/// Execution-engine diagnostics ([`System::engine_stats`]): where the
/// simulated bus cycles went. `dense_steps` / `skipped_cycles` / `skips`
/// describe the whole-system time-skipping engine; `shard_ticks` /
/// `shard_idle_skips` attribute the *dense* residue per channel — on each
/// densely-stepped cycle, every shard either ticked its controller or
/// proved the cycle a no-op in O(1) and skipped it.
///
/// Purely diagnostic: none of these numbers feed back into simulation, and
/// they are identical across sequential and sharded execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Bus cycles executed densely (one [`System::step`] each).
    pub dense_steps: u64,
    /// Bus cycles elided by whole-system exact time jumps.
    pub skipped_cycles: u64,
    /// Number of successful jumps (`skipped_cycles` spread over this many).
    pub skips: u64,
    /// Per-channel: memory-phase calls that ticked the controller.
    pub shard_ticks: Vec<u64>,
    /// Per-channel: memory-phase calls elided by the shard's decision bound.
    pub shard_idle_skips: Vec<u64>,
}

impl EngineStats {
    /// Fraction of simulated bus cycles stepped densely (0 when nothing
    /// has run).
    pub fn dense_fraction(&self) -> f64 {
        let total = self.dense_steps + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.dense_steps as f64 / total as f64
        }
    }

    /// Fraction of channel `ch`'s memory-phase calls that actually ticked
    /// (0 when the channel never entered a memory phase).
    pub fn shard_step_fraction(&self, ch: usize) -> f64 {
        let total = self.shard_ticks[ch] + self.shard_idle_skips[ch];
        if total == 0 {
            0.0
        } else {
            self.shard_ticks[ch] as f64 / total as f64
        }
    }

    /// Canonical JSON rendering (one key per field — the field-drift guard
    /// test holds that line, so bench snapshots can never silently lose a
    /// counter).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("dense_steps", Json::count(self.dense_steps)),
            ("skipped_cycles", Json::count(self.skipped_cycles)),
            ("skips", Json::count(self.skips)),
            ("shard_ticks", Json::Arr(self.shard_ticks.iter().map(|&t| Json::count(t)).collect())),
            (
                "shard_idle_skips",
                Json::Arr(self.shard_idle_skips.iter().map(|&t| Json::count(t)).collect()),
            ),
        ])
    }
}

/// Maximum dense steps between failed skip attempts (exponential backoff
/// cap): bounds the overhead of probing for skips on saturated workloads
/// while keeping reaction to reopening quiet windows prompt (a DRAM miss
/// keeps the bus busy for some tens of cycles; the cap must not dwarf it).
const MAX_SKIP_BACKOFF: u32 = 16;

/// LLC hit latency in core cycles (tag + data array of a large shared LLC).
const LLC_HIT_LATENCY: u32 = 30;

/// A core frozen mid-run: parked behind a memory port that provably keeps
/// answering Busy. Its dense evolution from `since` on is pure
/// retire-plus-refused-retry, replayable in closed form at any later
/// cycle, so the engine stops simulating it per cycle and remembers only
/// where it stopped and which queue(s) must stay full.
#[derive(Debug, Clone, Copy)]
struct Frozen {
    /// Bus cycle the core was frozen at (its state is "before `since`").
    since: Cycle,
    /// Standing condition: `Some((channel, is_write, bypass))` for a
    /// port-blocked core, whose parked access must keep being refused by
    /// that channel's queue(s) — re-checked each cycle, O(1). `None` for a
    /// fully-stalled core (window full behind a pending head): nothing but
    /// a completion can touch it, and completions unfreeze on delivery.
    check: Option<(usize, bool, bool)>,
}

/// The memory hierarchy below the cores (split off so cores and hierarchy
/// can be borrowed simultaneously).
///
/// Each channel lives in its own [`ChannelShard`] slot. A slot is `None`
/// only *inside* the memory phase, while the sharded executor has moved
/// that box to a worker thread; every other line of code in this crate may
/// assume the shard is home ([`Hierarchy::shard`] /
/// [`Hierarchy::shard_mut`] encode that assumption).
struct Hierarchy {
    cfg: SystemConfig,
    llc: Llc,
    shards: Vec<Option<Box<ChannelShard>>>,
    /// Per-core: skip the LLC (clflush-style attacker access).
    bypass_llc: Vec<bool>,
    next_req: u64,
    now: Cycle,
}

impl Hierarchy {
    fn channels(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, ch: usize) -> &ChannelShard {
        self.shards[ch].as_deref().expect("shard home outside the memory phase")
    }

    fn shard_mut(&mut self, ch: usize) -> &mut ChannelShard {
        self.shards[ch].as_deref_mut().expect("shard home outside the memory phase")
    }

    fn enqueue_dram(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> Option<u64> {
        let dram_addr = self.cfg.geometry.decode(addr);
        let ch = dram_addr.channel as usize;
        let id = self.next_req;
        let req = MemRequest::new(id, source, kind, addr, dram_addr, self.now);
        let ok = match kind {
            AccessKind::Read => self.shard(ch).controller().can_accept_read(),
            AccessKind::Write => self.shard(ch).controller().can_accept_write(),
        } && self.shard_mut(ch).inject(req);
        if ok {
            self.next_req += 1;
            Some(id)
        } else {
            None
        }
    }

    fn channel_of(&self, addr: PhysAddr) -> usize {
        self.cfg.geometry.decode(addr).channel as usize
    }

    /// The queue coordinates `(channel, is_write, bypass)` that decide
    /// whether [`MemoryPort::access`] refuses this request — precomputed
    /// once so a standing freeze proof can re-check refusal in O(1).
    fn stall_cond(&self, source: SourceId, addr: PhysAddr, is_write: bool) -> (usize, bool, bool) {
        let bypass = self.bypass_llc.get(source.0 as usize).copied().unwrap_or(false);
        (self.channel_of(addr), is_write, bypass)
    }

    /// True when [`MemoryPort::access`] for a request with these
    /// coordinates is guaranteed to answer [`PortResponse::Busy`] — and to
    /// keep answering Busy for as long as no controller issues a command
    /// or accepts an enqueue (queue occupancy is the only input). This is
    /// the proof obligation behind skipping or freezing a
    /// [`Quiescence::PortBlocked`] core: its parked retries are no-ops
    /// while this holds, and it can only stop holding at a controller
    /// decision point. **This predicate must mirror the Busy pre-checks in
    /// [`MemoryPort::access`] below exactly** — it is the single copy
    /// every freeze/skip path consults.
    fn queue_full_for(&self, (ch, is_write, bypass): (usize, bool, bool)) -> bool {
        let ctrl = self.shard(ch).controller();
        if is_write {
            // Bypass and LLC write paths both refuse on a full write queue
            // (a write-allocate miss also charges its writeback there).
            !ctrl.can_accept_write()
        } else if bypass {
            !ctrl.can_accept_read()
        } else {
            // An LLC read miss needs a read slot plus a writeback slot.
            !ctrl.can_accept_read() || !ctrl.can_accept_write()
        }
    }
}

impl MemoryPort for Hierarchy {
    fn access(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> PortResponse {
        let bypass = self.bypass_llc.get(source.0 as usize).copied().unwrap_or(false);
        if bypass {
            // Attacker path: straight to DRAM (clflush / conflict eviction).
            return match self.enqueue_dram(source, addr, kind) {
                Some(id) if kind == AccessKind::Read => PortResponse::Pending { req_id: id },
                Some(_) => PortResponse::Done { latency: 1 },
                None => PortResponse::Busy,
            };
        }

        // Capacity pre-check: a miss may need a read slot plus a writeback
        // slot; refuse before mutating the LLC so state stays consistent.
        let ch = self.channel_of(addr);
        let ctrl = self.shard(ch).controller();
        match kind {
            AccessKind::Read => {
                if !ctrl.can_accept_read() || !ctrl.can_accept_write() {
                    return PortResponse::Busy;
                }
            }
            AccessKind::Write => {
                if !ctrl.can_accept_write() {
                    return PortResponse::Busy;
                }
            }
        }

        match self.llc.access(addr.0, kind == AccessKind::Write) {
            LookupResult::Hit => PortResponse::Done { latency: LLC_HIT_LATENCY },
            LookupResult::Miss { writeback } => {
                if let Some(victim_line) = writeback {
                    // Victim writeback goes to the victim's own channel; if
                    // that queue is full the writeback is dropped (counted
                    // nowhere) — rare, and keeps the port non-blocking.
                    let victim_addr = PhysAddr(victim_line << 6);
                    let _ = self.enqueue_dram(source, victim_addr, AccessKind::Write);
                }
                match kind {
                    AccessKind::Read => match self.enqueue_dram(source, addr, AccessKind::Read) {
                        Some(id) => PortResponse::Pending { req_id: id },
                        None => PortResponse::Busy,
                    },
                    AccessKind::Write => {
                        // Write-allocate with immediate-writeback accounting:
                        // the dirtied line is charged one DRAM write now.
                        let _ = self.enqueue_dram(source, addr, AccessKind::Write);
                        PortResponse::Done { latency: LLC_HIT_LATENCY }
                    }
                }
            }
        }
    }
}

/// A complete simulated machine.
pub struct System {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    ratio: ClockRatio,
    /// The sharded memory-phase executor, created lazily by
    /// [`System::run_engine`] when [`sim_core::config::Threads`] resolves
    /// to more than one lane. `None` means every memory phase runs inline
    /// on the coordinator (sequential execution — same results either way).
    pool: Option<ShardPool>,
    /// Armed fault injector handed to the pool at creation (chaos tests
    /// only; `None` in production).
    faults: Option<std::sync::Arc<sim_core::fault::Injector>>,
    /// Scratch: channel indices with work this cycle (reused across the
    /// memory phases of a pooled run).
    active_shards: Vec<usize>,
    /// Attached observers (the ground-truth oracle rides here as an
    /// ordinary event probe). Probes only read; `RunStats` is bit-identical
    /// with and without them, on both engines.
    probes: Vec<Box<dyn Probe>>,
    /// Indices into `probes` of event subscribers.
    event_probes: Vec<usize>,
    /// Indices into `probes` of window subscribers.
    window_probes: Vec<usize>,
    /// Window length in bus cycles (default: one tREFW).
    window_len: Cycle,
    /// Next window boundary (only meaningful while `window_probes` is
    /// non-empty).
    next_window: Cycle,
    /// Start cycle of the in-flight window.
    window_start: Cycle,
    /// Index of the in-flight window.
    window_index: u64,
    /// Per-core retired count at the last window boundary.
    win_prev_retired: Vec<u64>,
    /// Per-core core-cycle count at the last window boundary.
    win_prev_core_cycles: Vec<u64>,
    /// Merged memory counters at the last window boundary.
    win_prev_mem: MemStats,
    /// Set once `on_run_end` has fired.
    run_ended: bool,
    completions_buf: Vec<u64>,
    /// Issuing core per request id, indexed by `id - 1`: demand ids are
    /// allocated densely from 1 by `Hierarchy::enqueue_dram`, so a flat
    /// slab replaces the former per-request HashMap on the hot path
    /// (tracker metadata ids live in a disjoint high range and never
    /// complete back to a core).
    core_of_req: Vec<u8>,
    /// Scratch: which cores the in-flight advance replays with
    /// [`cpu::Core::port_blocked_forward`] (reused across attempts).
    port_blocked: Vec<bool>,
    /// Per-core freeze state (event engine only): a core parked behind a
    /// provably-Busy port leaves the per-cycle loop entirely and is
    /// replayed in closed form when something it can observe happens.
    frozen: Vec<Option<Frozen>>,
    /// Whether `step_cores` may freeze cores (event engine, no
    /// instruction budget — a frozen core's retire counter lags reality).
    freezing: bool,
    /// Bus cycles of per-core execution elided by freezing (diagnostics).
    frozen_core_cycles: u64,
    /// Dense steps to run before the next skip attempt (failed-probe
    /// backoff; purely a performance heuristic, never affects results).
    skip_cooldown: u32,
    /// Current backoff width, doubled on each failed probe up to
    /// [`MAX_SKIP_BACKOFF`], reset by a successful skip.
    skip_backoff: u32,
    /// Bus cycles executed densely (diagnostics).
    dense_steps: u64,
    /// Bus cycles elided by skips (diagnostics).
    skipped_cycles: u64,
    /// Number of successful skips (diagnostics).
    skips: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.hierarchy.now)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system.
    ///
    /// * `traces` — one trace source per core.
    /// * `bypass_llc` — per-core LLC bypass (attacker cores).
    /// * `trackers` — one tracker per channel.
    /// * `telemetry` — the attached probes ([`Telemetry::none`] for the
    ///   zero-overhead fast path; [`Telemetry::oracle`] requests the
    ///   ground-truth auditor as an event-sink probe).
    ///
    /// # Panics
    ///
    /// Panics if `traces`/`bypass_llc` lengths disagree with the config's
    /// core count or `trackers` with the channel count.
    pub fn new(
        cfg: SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        bypass_llc: Vec<bool>,
        trackers: Vec<Box<dyn RowHammerTracker>>,
        telemetry: Telemetry,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cpu.cores as usize, "one trace per core");
        assert_eq!(bypass_llc.len(), traces.len(), "one bypass flag per core");
        assert_eq!(trackers.len(), cfg.geometry.channels as usize, "one tracker per channel");
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                Core::new(SourceId(i as u8), cfg.cpu.width as u32, cfg.cpu.rob_entries as usize, t)
            })
            .collect();
        let timing = TimingParams::ddr5_6400();
        let ctrl_cfg = CtrlConfig::new(cfg.nrh, cfg.blast_radius, cfg.mitigation);
        let shards: Vec<Option<Box<ChannelShard>>> = trackers
            .into_iter()
            .enumerate()
            .map(|(ch, tr)| {
                Some(Box::new(ChannelShard::new(ChannelController::new(
                    ch as u8,
                    DramChannel::new(cfg.geometry, timing),
                    tr,
                    ctrl_cfg,
                ))))
            })
            .collect();
        let ncores = cores.len();
        let oracle = telemetry
            .oracle_requested()
            .then(|| Box::new(OracleProbe::new(cfg.nrh, cfg.blast_radius, cfg.geometry)));
        let window_len = telemetry.window_len_override().unwrap_or(timing.t_refw);
        let llc = Llc::new(cfg.llc, cfg.seed ^ 0x11C);
        let mut sys = Self {
            cores,
            hierarchy: Hierarchy { cfg, llc, shards, bypass_llc, next_req: 1, now: 0 },
            ratio: ClockRatio::core_over_bus(),
            pool: None,
            faults: None,
            active_shards: Vec::new(),
            probes: Vec::new(),
            event_probes: Vec::new(),
            window_probes: Vec::new(),
            window_len,
            next_window: window_len,
            window_start: 0,
            window_index: 0,
            win_prev_retired: vec![0; ncores],
            win_prev_core_cycles: vec![0; ncores],
            win_prev_mem: MemStats::default(),
            run_ended: false,
            completions_buf: Vec::new(),
            core_of_req: Vec::new(),
            port_blocked: Vec::new(),
            frozen: vec![None; ncores],
            freezing: false,
            frozen_core_cycles: 0,
            skip_cooldown: 0,
            skip_backoff: 1,
            dense_steps: 0,
            skipped_cycles: 0,
            skips: 0,
        };
        if let Some(oracle) = oracle {
            sys.attach_probe(oracle);
        }
        for probe in telemetry.into_probes() {
            sys.attach_probe(probe);
        }
        sys
    }

    /// Current bus cycle.
    pub fn cycle(&self) -> Cycle {
        self.hierarchy.now
    }

    /// Arms a fault [`sim_core::fault::Injector`] on this system's shard
    /// pool (chaos tests only). Must be called before the run starts so
    /// the lazily-created pool picks it up. Injected worker deaths are
    /// recovered bit-identically: the dying worker hands its shard back
    /// untouched, the coordinator advances it inline, and the lane is
    /// respawned.
    pub fn arm_faults(&mut self, injector: std::sync::Arc<sim_core::fault::Injector>) {
        assert!(self.pool.is_none(), "arm faults before the pool exists");
        self.faults = Some(injector);
    }

    /// How many shard-pool worker lanes have been respawned after
    /// (injected) deaths. Zero in production runs.
    pub fn worker_respawns(&self) -> u64 {
        self.pool.as_ref().map_or(0, ShardPool::respawns)
    }

    /// Switches every channel controller between the indexed production
    /// scheduler (default) and the retained naive-scan oracle — same
    /// FR-FCFS semantics, re-derived from scratch every tick. The
    /// differential suite runs whole workloads both ways and requires
    /// bit-identical [`RunStats`].
    pub fn set_naive_scan(&mut self, naive: bool) {
        for ch in 0..self.hierarchy.channels() {
            self.hierarchy.shard_mut(ch).controller_mut().set_naive_scan(naive);
        }
    }

    /// Immutable facts delivered to probes at attach time.
    fn run_meta(&self) -> RunMeta {
        RunMeta {
            tracker: self.hierarchy.shard(0).controller().tracker().name().to_string(),
            cores: self.cores.len(),
            channels: self.hierarchy.channels(),
            window_len: self.window_len,
        }
    }

    /// Attaches one more probe; its subscriptions take effect immediately
    /// (event capture in the controllers, window bookkeeping in the
    /// engines).
    ///
    /// # Panics
    ///
    /// Panics if the run has already started — mid-run attachment would
    /// see a partial stream and (for window probes) a torn first sample.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        assert_eq!(self.hierarchy.now, 0, "attach probes before the run starts");
        let idx = self.probes.len();
        if probe.wants_events() {
            self.event_probes.push(idx);
            for ch in 0..self.hierarchy.channels() {
                self.hierarchy.shard_mut(ch).controller_mut().set_event_capture(true);
            }
        }
        if probe.wants_windows() {
            self.window_probes.push(idx);
        }
        self.probes.push(probe);
        let meta = self.run_meta();
        self.probes[idx].on_run_start(&meta);
    }

    /// Removes and returns every attached probe (for recorder readout
    /// after the run; [`System::stats`] must be taken first if the
    /// oracle's verdict is wanted in the `RunStats`).
    pub fn take_probes(&mut self) -> Vec<Box<dyn Probe>> {
        self.event_probes.clear();
        self.window_probes.clear();
        // No drainer remains: stop the controllers buffering events, or
        // further `step` calls would grow the buffers unboundedly.
        for ch in 0..self.hierarchy.channels() {
            self.hierarchy.shard_mut(ch).controller_mut().set_event_capture(false);
        }
        std::mem::take(&mut self.probes)
    }

    /// Advances the machine one bus cycle.
    pub fn step(&mut self) {
        let now = self.hierarchy.now;
        self.step_memory(now);
        self.step_cores();
        self.hierarchy.now += 1;
    }

    /// The memory half of a bus cycle: the memory phase (every shard
    /// advances through `now`, concurrently when a pool is attached), then
    /// the deterministic merge (completion delivery in channel-index
    /// order), then event fan-out.
    fn step_memory(&mut self, now: Cycle) {
        self.mem_phase(now);
        self.deliver_completions(now);
        self.fan_out_events();
    }

    /// Memory phase of bus cycle `now`: every shard advances through the
    /// cycle, collecting its due completions into its private buffer.
    ///
    /// Shards share nothing, so the order they advance in — and the thread
    /// they advance on — is invisible to results; with a [`ShardPool`]
    /// attached, active shards are handed out to workers and the
    /// coordinator advances its own share (plus the idle shards, an O(1)
    /// bump each) while they run. The phase ends only when every shard is
    /// home: the rendezvous is per cycle.
    fn mem_phase(&mut self, now: Cycle) {
        if self.pool.is_none() {
            for slot in self.hierarchy.shards.iter_mut() {
                slot.as_deref_mut().expect("shard home outside the memory phase").advance_to(now);
            }
            return;
        }
        let pool = self.pool.as_mut().expect("checked above");
        let shards = &mut self.hierarchy.shards;
        let active = &mut self.active_shards;
        active.clear();
        for (ch, slot) in shards.iter_mut().enumerate() {
            let shard = slot.as_deref_mut().expect("shard home outside the memory phase");
            if NextEvent::next_event(shard, now) <= now {
                active.push(ch);
            } else {
                // Idle: the advance is a counted O(1) no-op; not worth a
                // thread handoff.
                shard.advance_to(now);
            }
        }
        if active.len() < 2 {
            // Nothing to overlap; skip the rendezvous entirely.
            for &ch in active.iter() {
                shards[ch].as_deref_mut().expect("classified above").advance_to(now);
            }
            return;
        }
        // The coordinator keeps the first active shard for itself and
        // deals the rest out round-robin.
        let mine = active[0];
        let mut dispatched = 0;
        for (i, &ch) in active[1..].iter().enumerate() {
            let shard = shards[ch].take().expect("classified above");
            pool.dispatch(i % pool.workers(), ch, shard, now);
            dispatched += 1;
        }
        shards[mine].as_deref_mut().expect("classified above").advance_to(now);
        for _ in 0..dispatched {
            let (lane, ch, outcome) = pool.collect();
            match outcome {
                ShardOutcome::Advanced(shard) => shards[ch] = Some(shard),
                ShardOutcome::Died(mut shard) => {
                    // The worker died before touching the shard: advance
                    // it inline (same cycle, same result) and replace the
                    // lane. Recovery is invisible to simulation state.
                    shard.advance_to(now);
                    shards[ch] = Some(shard);
                    pool.respawn(lane);
                }
                ShardOutcome::Panicked(message) => {
                    panic!("channel {ch} shard worker panicked: {message}")
                }
            }
        }
    }

    /// Delivers every completion the memory phase collected, draining the
    /// shard buffers **in channel-index order** (within a shard,
    /// completions pop in `(due cycle, id)` order). This fixed merge order
    /// is what makes sequential and sharded execution bit-identical.
    fn deliver_completions(&mut self, now: Cycle) {
        for ch in 0..self.hierarchy.channels() {
            self.completions_buf.clear();
            self.hierarchy.shard_mut(ch).drain_completions_into(&mut self.completions_buf);
            for i in 0..self.completions_buf.len() {
                let id = self.completions_buf[i];
                let core = self.core_of_req[(id - 1) as usize] as usize;
                // A frozen core must observe the completion from its exact
                // dense state: replay it up to this cycle first.
                self.unfreeze(core, now);
                self.cores[core].complete(id);
            }
        }
    }

    /// Replays a frozen core's elided cycles (closed form) so its state is
    /// exactly the dense state "before bus cycle `now`". No-op when the
    /// core is not frozen.
    fn unfreeze(&mut self, core: usize, now: Cycle) {
        let Some(f) = self.frozen[core].take() else { return };
        // The span's core-cycle total is path-independent
        // ([`ClockRatio::cumulative_core_cycles`]), so per-core timelines
        // need no shared ratio state.
        let cc =
            ClockRatio::cumulative_core_cycles(now) - ClockRatio::cumulative_core_cycles(f.since);
        if cc > 0 {
            self.cores[core].port_blocked_forward(cc);
        }
        self.frozen_core_cycles += now - f.since;
    }

    /// Replays every frozen core up to `now` (window boundaries, run end,
    /// anything that observes core counters).
    fn unfreeze_all(&mut self, now: Cycle) {
        for i in 0..self.cores.len() {
            self.unfreeze(i, now);
        }
    }

    /// Fans the event stream out to every subscribed probe (the oracle
    /// among them). No subscribers means the controllers buffered nothing
    /// and this is a no-op.
    fn fan_out_events(&mut self) {
        if self.event_probes.is_empty() {
            return;
        }
        let probes = &mut self.probes;
        let event_probes = &self.event_probes;
        for (ch, slot) in self.hierarchy.shards.iter_mut().enumerate() {
            let ctrl = slot.as_deref_mut().expect("shard home outside the memory phase");
            ctrl.controller_mut().drain_events(&mut |ev| {
                for &i in event_probes {
                    probes[i].on_event(ch as u8, ev);
                }
            });
        }
    }

    /// The core half of a bus cycle: cores run in their own clock domain
    /// (5 core cycles : 4 bus cycles). Under the event engine, a core
    /// parked behind a provably-Busy port freezes instead of stepping:
    /// queue occupancy can only shrink at a controller tick, so one O(1)
    /// re-check per cycle keeps the proof current, and the core is
    /// replayed in closed form the moment its queue opens.
    fn step_cores(&mut self) {
        let now = self.hierarchy.now;
        if self.freezing {
            for i in 0..self.cores.len() {
                if let Some(f) = self.frozen[i] {
                    match f.check {
                        // Fully stalled: only a completion (which unfreezes
                        // on delivery) can touch this core.
                        None => continue,
                        Some(cond) if self.hierarchy.queue_full_for(cond) => continue,
                        // The queue opened this cycle: the retry may
                        // succeed, so the core rejoins dense stepping now.
                        Some(_) => self.unfreeze(i, now),
                    }
                } else if self.cores[i].is_fully_stalled() {
                    self.frozen[i] = Some(Frozen { since: now, check: None });
                } else if self.cores[i].is_port_blocked() {
                    let (addr, is_write) = self.cores[i].blocked_access().expect("parked access");
                    let cond = self.hierarchy.stall_cond(self.cores[i].id(), addr, is_write);
                    if self.hierarchy.queue_full_for(cond) {
                        // Queues only grow during the core phase, so the
                        // whole bus cycle is provably refused retries.
                        self.frozen[i] = Some(Frozen { since: now, check: Some(cond) });
                    }
                }
            }
        }
        let n = self.ratio.core_cycles_for_bus_cycle();
        for _ in 0..n {
            for i in 0..self.cores.len() {
                if self.frozen[i].is_some() {
                    continue;
                }
                let core = &mut self.cores[i];
                let before = self.hierarchy.next_req;
                core.cycle(&mut self.hierarchy);
                // Register any requests this core just issued. Ids are
                // allocated densely, so the slab stays push-only.
                debug_assert_eq!(self.core_of_req.len() as u64, before - 1);
                for _ in before..self.hierarchy.next_req {
                    self.core_of_req.push(core.id().0);
                }
            }
        }
    }

    /// Runs until the window closes or every core reaches `max_instructions`,
    /// using the default [`Engine::EventDriven`] loop.
    pub fn run(&mut self) -> RunStats {
        self.run_engine(Engine::EventDriven)
    }

    /// Runs with the reference dense-tick loop (one [`System::step`] per bus
    /// cycle). Kept as the semantic baseline for the equivalence suite.
    pub fn run_dense(&mut self) -> RunStats {
        self.run_engine(Engine::Dense)
    }

    /// Runs under the chosen engine.
    ///
    /// When the config's [`sim_core::config::Threads`] resolves to more
    /// than one lane for this channel count, the memory phase runs on a
    /// worker-lane shard pool — an execution detail: results are
    /// bit-identical to [`Threads::Seq`](sim_core::config::Threads::Seq)
    /// on either engine.
    pub fn run_engine(&mut self, engine: Engine) -> RunStats {
        let lanes = self.hierarchy.cfg.threads.worker_count(self.hierarchy.channels());
        if lanes >= 2 && self.pool.is_none() {
            // The coordinator is a lane of its own; it advances its share
            // of the active shards while the workers run theirs.
            self.pool = Some(ShardPool::new(lanes - 1, self.faults.clone()));
        }
        let window = self.hierarchy.cfg.window_cycles;
        let max_inst = self.hierarchy.cfg.max_instructions;
        // Freezing defers per-core retire accounting, so it is off under
        // an instruction budget (the run-loop break reads retired counts
        // every iteration) and under the dense reference engine.
        self.freezing = engine == Engine::EventDriven && max_inst == u64::MAX;
        while self.hierarchy.now < window {
            if engine == Engine::Dense || !self.try_advance() {
                self.step();
                self.dense_steps += 1;
            }
            if !self.window_probes.is_empty() {
                self.pump_windows();
            }
            if max_inst != u64::MAX && self.cores.iter().all(|c| c.retired() >= max_inst) {
                break;
            }
        }
        self.finish_run();
        self.stats()
    }

    /// Emits a [`WindowSample`] for every boundary `now` has reached.
    /// Both engines pass through every boundary cycle (the skip engine
    /// caps its horizon at the next boundary while window probes are
    /// attached), so the samples are bit-identical across engines.
    fn pump_windows(&mut self) {
        while self.hierarchy.now >= self.next_window {
            let end = self.next_window;
            self.emit_window(end);
            self.next_window += self.window_len;
        }
    }

    /// Closes the in-flight window at `end` and hands the delta sample to
    /// every window probe.
    fn emit_window(&mut self, end: Cycle) {
        // The sample reads core counters, so every frozen core must be at
        // its exact dense state for the boundary (`end` is always the
        // current cycle: jumps cap at the boundary and steps land on it).
        debug_assert_eq!(end, self.hierarchy.now);
        self.unfreeze_all(end);
        let mut mem = MemStats::default();
        for ch in 0..self.hierarchy.channels() {
            mem.merge(&self.hierarchy.shard(ch).controller().stats);
        }
        let sample = WindowSample {
            index: self.window_index,
            start: self.window_start,
            end,
            retired: self
                .cores
                .iter()
                .zip(&self.win_prev_retired)
                .map(|(c, prev)| c.retired() - prev)
                .collect(),
            core_cycles: self
                .cores
                .iter()
                .zip(&self.win_prev_core_cycles)
                .map(|(c, prev)| c.cycles() - prev)
                .collect(),
            mem: mem.delta_since(&self.win_prev_mem),
        };
        for &i in &self.window_probes {
            self.probes[i].on_window(&sample);
        }
        for (slot, core) in self.win_prev_retired.iter_mut().zip(&self.cores) {
            *slot = core.retired();
        }
        for (slot, core) in self.win_prev_core_cycles.iter_mut().zip(&self.cores) {
            *slot = core.cycles();
        }
        self.win_prev_mem = mem;
        self.window_start = end;
        self.window_index += 1;
    }

    /// Flushes the final (possibly partial) window and fires every
    /// probe's `on_run_end` exactly once.
    fn finish_run(&mut self) {
        if self.run_ended {
            return;
        }
        self.run_ended = true;
        let now = self.hierarchy.now;
        self.unfreeze_all(now);
        self.freezing = false;
        if !self.window_probes.is_empty() && now > self.window_start {
            self.emit_window(now);
        }
        for p in &mut self.probes {
            p.on_run_end(now);
        }
    }

    /// Execution-engine diagnostics so far: how much simulated time the
    /// event engine elided, and how much of the dense residue each channel
    /// shard elided on its own.
    pub fn engine_stats(&self) -> EngineStats {
        let mut shard_ticks = Vec::with_capacity(self.hierarchy.channels());
        let mut shard_idle_skips = Vec::with_capacity(self.hierarchy.channels());
        for ch in 0..self.hierarchy.channels() {
            let (ticks, idles) = self.hierarchy.shard(ch).step_counts();
            shard_ticks.push(ticks);
            shard_idle_skips.push(idles);
        }
        EngineStats {
            dense_steps: self.dense_steps,
            skipped_cycles: self.skipped_cycles,
            skips: self.skips,
            shard_ticks,
            shard_idle_skips,
        }
    }

    /// Per-channel memory counters (the `RunStats::mem` merge, unmerged):
    /// `channel_stats()[ch]` is channel `ch`'s own [`MemStats`], and their
    /// merge equals the run-level aggregate exactly.
    pub fn channel_stats(&self) -> Vec<MemStats> {
        (0..self.hierarchy.channels())
            .map(|ch| self.hierarchy.shard(ch).controller().stats)
            .collect()
    }

    /// Bus cycles of per-core execution elided by freezing parked cores —
    /// cycles the machine stepped densely for the memory side while one or
    /// more cores were replayed in closed form later (diagnostics).
    pub fn frozen_core_cycles(&self) -> u64 {
        self.frozen_core_cycles
    }

    /// Attempts one exact time jump; returns false when the coming cycle
    /// must be simulated (the caller then steps densely — cheaply, if the
    /// cores are frozen and only a controller has work).
    ///
    /// A jump of `k >= 1` bus cycles is performed only when no controller
    /// reports a decision point before `now + k`
    /// ([`memctrl::ChannelController::next_event`], an O(1) probe — which
    /// is what makes probing every cycle affordable) and every *running*
    /// core can absorb the corresponding core-cycle total in closed form:
    /// streaming/stalled cores via [`cpu::Quiescence`] /
    /// [`cpu::Core::fast_forward`], port-blocked cores via
    /// [`cpu::Core::port_blocked_forward`] when the hierarchy proves their
    /// parked access keeps answering Busy. Frozen cores need nothing at
    /// all: their standing proof only depends on queue occupancy, which
    /// cannot change across a controller-quiet stretch.
    ///
    /// The jump replays exactly what dense stepping would have done, so
    /// dense and event-driven execution produce identical [`RunStats`].
    fn try_advance(&mut self) -> bool {
        if self.skip_cooldown > 0 {
            self.skip_cooldown -= 1;
            return false;
        }
        let now = self.hierarchy.now;
        let mut horizon = self.hierarchy.cfg.window_cycles;
        if !self.window_probes.is_empty() {
            // Window samples must be taken exactly at boundary cycles, so
            // a skip may reach but never cross the next boundary. Splitting
            // a would-be longer skip in two is still an exact no-op, so
            // `RunStats` stays bit-identical with probes attached.
            horizon = horizon.min(self.next_window);
        }
        let mut decision = horizon;
        for slot in &self.hierarchy.shards {
            let shard = slot.as_deref().expect("shard home outside the memory phase");
            decision = decision.min(NextEvent::next_event(shard, now));
        }
        if decision <= now {
            // A controller has work this very cycle. That is a fact, not a
            // failed guess — step densely once (cheap when the cores are
            // frozen) and probe again next cycle, with no backoff.
            return false;
        }
        // Classify the running cores (frozen ones need no attention).
        let max_inst = self.hierarchy.cfg.max_instructions;
        let mut budget = u64::MAX;
        self.port_blocked.clear();
        self.port_blocked.resize(self.cores.len(), false);
        for (i, core) in self.cores.iter().enumerate() {
            if self.frozen[i].is_some() {
                continue;
            }
            match core.quiescence() {
                Quiescence::Busy => return self.skip_failed(),
                Quiescence::PortBlocked => {
                    let (addr, is_write) =
                        core.blocked_access().expect("PortBlocked implies a parked access");
                    let cond = self.hierarchy.stall_cond(core.id(), addr, is_write);
                    if self.hierarchy.queue_full_for(cond) {
                        self.port_blocked[i] = true;
                    } else {
                        // The parked access could be accepted: the core may
                        // still stream/stall up to its next dispatch chance.
                        match core.quiescence_unparked() {
                            Quiescence::Busy => return self.skip_failed(),
                            Quiescence::Stalled => {}
                            Quiescence::Streaming { cycles } => budget = budget.min(cycles),
                            Quiescence::PortBlocked => unreachable!("unparked never port-blocks"),
                        }
                    }
                }
                Quiescence::Stalled => {}
                Quiescence::Streaming { cycles } => budget = budget.min(cycles),
            }
            if max_inst != u64::MAX && core.retired() < max_inst {
                // Stop the advance no later than the first cycle this core
                // could cross its instruction budget (retire rate is at
                // most `width` per core cycle), so the run-loop break
                // fires on the same step as under dense execution.
                let width = self.hierarchy.cfg.cpu.width as u64;
                budget = budget.min((max_inst - core.retired()).div_ceil(width));
            }
        }
        let k = self.ratio.max_bus_cycles_within(budget).min(decision - now);
        if k == 0 {
            return self.skip_failed();
        }
        let core_cycles = self.ratio.advance_bus_cycles(k);
        if core_cycles > 0 {
            for (i, core) in self.cores.iter_mut().enumerate() {
                if self.frozen[i].is_some() {
                    continue;
                }
                if self.port_blocked[i] {
                    core.port_blocked_forward(core_cycles);
                } else {
                    core.fast_forward(core_cycles);
                }
            }
        }
        self.hierarchy.now += k;
        self.skipped_cycles += k;
        self.skips += 1;
        self.skip_backoff = 1;
        true
    }

    fn skip_failed(&mut self) -> bool {
        self.skip_cooldown = self.skip_backoff;
        self.skip_backoff = (self.skip_backoff * 2).min(MAX_SKIP_BACKOFF);
        false
    }

    /// Snapshot of the metrics so far.
    pub fn stats(&self) -> RunStats {
        let mut mem = sim_core::stats::MemStats::default();
        let mut energy = 0.0;
        for ch in 0..self.hierarchy.channels() {
            let ctrl = self.hierarchy.shard(ch).controller();
            mem.merge(&ctrl.stats);
            energy += ctrl
                .dram()
                .energy
                .total_mj(self.hierarchy.now, self.hierarchy.cfg.geometry.ranks as u32);
        }
        // The oracle is an ordinary probe; find it among the clients.
        let oracle = self.probes.iter().find_map(|p| {
            p.as_any().downcast_ref::<OracleProbe>().map(|o| (o.max_damage(), o.violations()))
        });
        RunStats {
            tracker: self.hierarchy.shard(0).controller().tracker().name().to_string(),
            cycles: self.hierarchy.now,
            retired: self.cores.iter().map(|c| c.retired()).collect(),
            core_cycles: self.cores.iter().map(|c| c.cycles()).collect(),
            mem,
            llc_hit_rate: self.hierarchy.llc.hit_rate(),
            energy_mj: energy,
            oracle,
        }
    }

    /// Mitigation-queue / metadata backlog across channels (introspection).
    pub fn pending_mitigations(&self) -> usize {
        (0..self.hierarchy.channels())
            .map(|ch| self.hierarchy.shard(ch).controller().pending_mitigations())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::TraceEntry;
    use sim_core::tracker::NullTracker;

    /// A fixed-stride read stream.
    struct Stride {
        next: u64,
        step: u64,
        bubbles: u32,
    }
    impl TraceSource for Stride {
        fn next_entry(&mut self) -> TraceEntry {
            let a = self.next;
            self.next += self.step;
            TraceEntry { bubbles: self.bubbles, addr: PhysAddr(a), is_write: false }
        }
    }

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.window_cycles = 60_000;
        cfg
    }

    fn build(cfg: SystemConfig, bubbles: u32, collect: bool) -> System {
        let cores = cfg.cpu.cores as usize;
        let traces: Vec<Box<dyn TraceSource>> = (0..cores)
            .map(|i| {
                Box::new(Stride { next: i as u64 * (16 << 30), step: 64, bubbles })
                    as Box<dyn TraceSource>
            })
            .collect();
        let trackers: Vec<Box<dyn RowHammerTracker>> = (0..cfg.geometry.channels)
            .map(|_| Box::new(NullTracker) as Box<dyn RowHammerTracker>)
            .collect();
        System::new(cfg, traces, vec![false; cores], trackers, Telemetry::none().oracle(collect))
    }

    #[test]
    fn cores_make_progress_and_hit_llc() {
        let mut sys = build(small_cfg(), 10, false);
        let stats = sys.run();
        for i in 0..4 {
            assert!(stats.retired[i] > 10_000, "core {i}: {}", stats.retired[i]);
            assert!(stats.ipc(i) > 0.1);
        }
        // Sequential lines: second half of each row's lines hit the LLC...
        // actually every line is cold (stride 64), so hit rate ~ 0.
        assert!(stats.mem.reads > 0);
    }

    #[test]
    fn memory_bound_cores_are_slower() {
        let mut fast = build(small_cfg(), 1000, false);
        let mut slow = build(small_cfg(), 0, false);
        let f = fast.run();
        let s = slow.run();
        assert!(s.ipc(0) < f.ipc(0) / 2.0, "{} vs {}", s.ipc(0), f.ipc(0));
    }

    #[test]
    fn oracle_attaches_and_counts_activations() {
        let mut sys = build(small_cfg(), 50, true);
        let stats = sys.run();
        let (max_damage, violations) = stats.oracle.expect("oracle enabled");
        assert_eq!(violations, 0, "strided benign traffic cannot hammer");
        // Cores share banks, so a row can re-activate once per line (128
        // columns) under conflicts — far below N_RH = 500.
        assert!(max_damage < 300, "{max_damage}");
        assert!(stats.mem.activations > 0);
    }

    #[test]
    fn instruction_budget_stops_early() {
        let mut cfg = small_cfg();
        cfg.window_cycles = 10_000_000;
        cfg.max_instructions = 5_000;
        let mut sys = build(cfg, 100, false);
        let stats = sys.run();
        assert!(stats.cycles < 10_000_000, "stopped at {}", stats.cycles);
        for i in 0..4 {
            assert!(stats.retired[i] >= 5_000);
        }
    }

    #[test]
    fn engines_agree_bit_for_bit_on_strided_traffic() {
        for bubbles in [0, 10, 500, 40_000] {
            let dense = build(small_cfg(), bubbles, true).run_dense();
            let event = build(small_cfg(), bubbles, true).run();
            assert_eq!(dense, event, "bubbles={bubbles}");
        }
    }

    #[test]
    fn engines_agree_under_instruction_budget() {
        let mut cfg = small_cfg();
        cfg.window_cycles = 10_000_000;
        cfg.max_instructions = 50_000;
        let dense = build(cfg.clone(), 200, false).run_dense();
        let event = build(cfg, 200, false).run();
        assert_eq!(dense, event, "early-stop cycle must match exactly");
        assert!(dense.cycles < 10_000_000);
    }

    #[test]
    fn idle_workload_actually_skips() {
        // Bubble-heavy cores leave the bus idle almost always; the event
        // engine must do far fewer dense steps than there are bus cycles.
        // (Indirect check: the run completes with identical stats; the
        // wall-clock benefit is measured in crates/bench.)
        let mut cfg = small_cfg();
        cfg.window_cycles = 200_000;
        let dense = build(cfg.clone(), 20_000, false).run_dense();
        let event = build(cfg, 20_000, false).run();
        assert_eq!(dense, event);
        assert_eq!(event.cycles, 200_000);
    }

    fn build_with_telemetry(cfg: SystemConfig, bubbles: u32, t: Telemetry) -> System {
        let cores = cfg.cpu.cores as usize;
        let traces: Vec<Box<dyn TraceSource>> = (0..cores)
            .map(|i| {
                Box::new(Stride { next: i as u64 * (16 << 30), step: 64, bubbles })
                    as Box<dyn TraceSource>
            })
            .collect();
        let trackers: Vec<Box<dyn RowHammerTracker>> = (0..cfg.geometry.channels)
            .map(|_| Box::new(NullTracker) as Box<dyn RowHammerTracker>)
            .collect();
        System::new(cfg, traces, vec![false; cores], trackers, t)
    }

    #[test]
    fn window_probes_sample_every_boundary_plus_final_partial() {
        use sim_core::telemetry::TimeSeriesRecorder;
        let mut cfg = small_cfg(); // 60_000-cycle run
        cfg.window_cycles = 60_000;
        let t = Telemetry::none().probe(TimeSeriesRecorder::new()).window_len(25_000);
        let mut sys = build_with_telemetry(cfg, 10, t);
        let stats = sys.run();
        let probes = sys.take_probes();
        let rec = probes[0].as_any().downcast_ref::<TimeSeriesRecorder>().unwrap();
        let samples = rec.samples();
        assert_eq!(samples.len(), 3, "two full windows + one partial");
        assert_eq!((samples[0].start, samples[0].end), (0, 25_000));
        assert_eq!((samples[1].start, samples[1].end), (25_000, 50_000));
        assert_eq!((samples[2].start, samples[2].end), (50_000, 60_000));
        // Deltas must sum back to the run totals.
        let retired: u64 = samples.iter().map(|s| s.retired[0]).sum();
        assert_eq!(retired, stats.retired[0]);
        let acts: u64 = samples.iter().map(|s| s.mem.activations).sum();
        assert_eq!(acts, stats.mem.activations);
        assert!(samples.iter().all(|s| s.ipc(0) > 0.0));
        assert_eq!(rec.meta().unwrap().window_len, 25_000);
    }

    #[test]
    fn window_samples_are_engine_identical() {
        use sim_core::telemetry::TimeSeriesRecorder;
        for bubbles in [5, 2_000] {
            let run = |engine: Engine| {
                let t = Telemetry::none().probe(TimeSeriesRecorder::new()).window_len(10_000);
                let mut sys = build_with_telemetry(small_cfg(), bubbles, t);
                let stats = sys.run_engine(engine);
                let probes = sys.take_probes();
                let rec = probes[0].as_any().downcast_ref::<TimeSeriesRecorder>().unwrap().clone();
                (stats, rec.into_samples())
            };
            let (dense_stats, dense_windows) = run(Engine::Dense);
            let (event_stats, event_windows) = run(Engine::EventDriven);
            assert_eq!(dense_stats, event_stats, "bubbles={bubbles}");
            assert_eq!(dense_windows, event_windows, "bubbles={bubbles}");
            assert_eq!(dense_windows.len(), 6);
        }
    }

    #[test]
    fn probes_do_not_perturb_runstats() {
        use sim_core::telemetry::{MitigationLog, NullProbe, TimeSeriesRecorder};
        let plain = build(small_cfg(), 100, false).run();
        let t = Telemetry::none()
            .probe(TimeSeriesRecorder::new())
            .probe(MitigationLog::new())
            .probe(NullProbe)
            .window_len(7_001);
        let probed = build_with_telemetry(small_cfg(), 100, t).run();
        assert_eq!(plain, probed, "attaching probes must not change results");
    }

    #[test]
    fn idle_runs_still_skip_with_window_probes_attached() {
        use sim_core::telemetry::TimeSeriesRecorder;
        let mut cfg = small_cfg();
        cfg.window_cycles = 200_000;
        let t = Telemetry::none().probe(TimeSeriesRecorder::new()).window_len(50_000);
        let mut sys = build_with_telemetry(cfg, 20_000, t);
        let _ = sys.run();
        let es = sys.engine_stats();
        assert!(
            es.skipped_cycles > es.dense_steps,
            "windows must cap skips, not forbid them: {} vs {}",
            es.dense_steps,
            es.skipped_cycles
        );
    }

    #[test]
    #[should_panic(expected = "attach probes before the run starts")]
    fn mid_run_probe_attachment_is_rejected() {
        let mut sys = build(small_cfg(), 100, false);
        sys.step();
        sys.attach_probe(Box::new(sim_core::telemetry::NullProbe));
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_sequential() {
        use sim_core::config::Threads;
        for engine in [Engine::Dense, Engine::EventDriven] {
            let mut seq_sys = build(small_cfg(), 20, true);
            let seq = seq_sys.run_engine(engine);
            let mut cfg = small_cfg();
            cfg.threads = Threads::N(2);
            let mut sharded_sys = build(cfg, 20, true);
            let sharded = sharded_sys.run_engine(engine);
            assert_eq!(seq, sharded, "{engine:?}: results must not depend on the executor");
            assert_eq!(
                seq_sys.engine_stats(),
                sharded_sys.engine_stats(),
                "{engine:?}: the executor may not change what was simulated"
            );
        }
    }

    #[test]
    fn per_channel_stats_merge_to_the_run_aggregate() {
        let mut sys = build(small_cfg(), 10, false);
        let stats = sys.run();
        let per = sys.channel_stats();
        assert_eq!(per.len(), 2, "one MemStats per channel");
        let mut merged = MemStats::default();
        for s in &per {
            merged.merge(s);
        }
        assert_eq!(merged, stats.mem, "per-channel counters must sum to the aggregate");
        assert!(per.iter().all(|s| s.reads > 0), "strided traffic stripes across both channels");
    }

    #[test]
    fn engine_stats_json_covers_every_field() {
        // Distinct non-zero values per field, single-element vectors so the
        // Debug rendering splits cleanly on ", ".
        let es = EngineStats {
            dense_steps: 1,
            skipped_cycles: 2,
            skips: 3,
            shard_ticks: vec![4],
            shard_idle_skips: vec![5],
        };
        let json = es.to_json();
        let debug = format!("{es:?}");
        let body = debug
            .strip_prefix("EngineStats { ")
            .and_then(|d| d.strip_suffix(" }"))
            .expect("derived Debug shape");
        let mut fields = 0;
        for field in body.split(", ") {
            let name = field.split(':').next().expect("field: value");
            assert!(json.get(name).is_some(), "EngineStats::to_json dropped field `{name}`");
            fields += 1;
        }
        assert_eq!(fields, 5, "new EngineStats fields must be added to to_json");
        assert!((es.dense_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((es.shard_step_fraction(0) - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn shard_step_fractions_reflect_channel_activity() {
        let mut sys = build(small_cfg(), 10, false);
        let _ = sys.run_dense();
        let es = sys.engine_stats();
        assert_eq!(es.shard_ticks.len(), 2);
        for ch in 0..2 {
            let total = es.shard_ticks[ch] + es.shard_idle_skips[ch];
            assert_eq!(total, 60_000, "every dense cycle enters the memory phase once");
            let f = es.shard_step_fraction(ch);
            assert!(f > 0.0 && f < 1.0, "busy-but-not-saturated channel: {f}");
        }
    }

    #[test]
    fn energy_is_positive_and_grows_with_traffic() {
        let mut idle = build(small_cfg(), 40_000, false);
        let mut busy = build(small_cfg(), 0, false);
        let ei = idle.run().energy_mj;
        let eb = busy.run().energy_mj;
        assert!(ei > 0.0);
        assert!(eb > ei);
    }
}
