//! The assembled system: cores + LLC + controllers + tracker + oracle.
//!
//! Two execution engines share the same component models:
//!
//! * [`Engine::Dense`] ticks every component on every bus cycle — the
//!   reference semantics.
//! * [`Engine::EventDriven`] (the default) advances time straight to the
//!   next *interesting* cycle whenever it can prove the jump is exact:
//!   every controller reports a lower bound on its next actionable cycle
//!   through [`sim_core::sched::NextEvent`], and every core reports how far
//!   it can be fast-forwarded in closed form ([`cpu::Quiescence`]). The two
//!   engines produce **bit-identical** [`RunStats`] by construction; the
//!   cross-engine equivalence suite (`tests/engine_equivalence.rs`) holds
//!   that line.

use analysis::Oracle;
use cpu::{ClockRatio, Core, MemoryPort, PortResponse, Quiescence, TraceSource};
use dram::{DramChannel, TimingParams};
use llcache::{Llc, LookupResult};
use memctrl::{ChannelController, CtrlConfig};
use sim_core::addr::PhysAddr;
use sim_core::config::SystemConfig;
use sim_core::req::{AccessKind, MemRequest, SourceId};
use sim_core::sched::NextEvent;
use sim_core::time::Cycle;
use sim_core::tracker::RowHammerTracker;

use crate::metrics::RunStats;

/// Which simulation loop drives the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Tick every component on every bus cycle (reference semantics).
    Dense,
    /// Skip quiet stretches; falls back to dense ticking whenever any
    /// component might act. Bit-identical results, multi-x faster on
    /// idle-heavy workloads.
    #[default]
    EventDriven,
}

/// Maximum dense steps between failed skip attempts (exponential backoff
/// cap): bounds the overhead of probing for skips on saturated workloads
/// while keeping reaction to reopening quiet windows prompt (a DRAM miss
/// keeps the bus busy for some tens of cycles; the cap must not dwarf it).
const MAX_SKIP_BACKOFF: u32 = 16;

/// LLC hit latency in core cycles (tag + data array of a large shared LLC).
const LLC_HIT_LATENCY: u32 = 30;

/// The memory hierarchy below the cores (split off so cores and hierarchy
/// can be borrowed simultaneously).
struct Hierarchy {
    cfg: SystemConfig,
    llc: Llc,
    ctrls: Vec<ChannelController>,
    /// Per-core: skip the LLC (clflush-style attacker access).
    bypass_llc: Vec<bool>,
    next_req: u64,
    now: Cycle,
}

impl Hierarchy {
    fn enqueue_dram(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> Option<u64> {
        let dram_addr = self.cfg.geometry.decode(addr);
        let ch = dram_addr.channel as usize;
        let id = self.next_req;
        let req = MemRequest::new(id, source, kind, addr, dram_addr, self.now);
        let ok = match kind {
            AccessKind::Read => self.ctrls[ch].can_accept_read() && self.ctrls[ch].enqueue(req),
            AccessKind::Write => self.ctrls[ch].can_accept_write() && self.ctrls[ch].enqueue(req),
        };
        if ok {
            self.next_req += 1;
            Some(id)
        } else {
            None
        }
    }

    fn channel_of(&self, addr: PhysAddr) -> usize {
        self.cfg.geometry.decode(addr).channel as usize
    }
}

impl MemoryPort for Hierarchy {
    fn access(&mut self, source: SourceId, addr: PhysAddr, kind: AccessKind) -> PortResponse {
        let bypass = self.bypass_llc.get(source.0 as usize).copied().unwrap_or(false);
        if bypass {
            // Attacker path: straight to DRAM (clflush / conflict eviction).
            return match self.enqueue_dram(source, addr, kind) {
                Some(id) if kind == AccessKind::Read => PortResponse::Pending { req_id: id },
                Some(_) => PortResponse::Done { latency: 1 },
                None => PortResponse::Busy,
            };
        }

        // Capacity pre-check: a miss may need a read slot plus a writeback
        // slot; refuse before mutating the LLC so state stays consistent.
        let ch = self.channel_of(addr);
        match kind {
            AccessKind::Read => {
                if !self.ctrls[ch].can_accept_read() || !self.ctrls[ch].can_accept_write() {
                    return PortResponse::Busy;
                }
            }
            AccessKind::Write => {
                if !self.ctrls[ch].can_accept_write() {
                    return PortResponse::Busy;
                }
            }
        }

        match self.llc.access(addr.0, kind == AccessKind::Write) {
            LookupResult::Hit => PortResponse::Done { latency: LLC_HIT_LATENCY },
            LookupResult::Miss { writeback } => {
                if let Some(victim_line) = writeback {
                    // Victim writeback goes to the victim's own channel; if
                    // that queue is full the writeback is dropped (counted
                    // nowhere) — rare, and keeps the port non-blocking.
                    let victim_addr = PhysAddr(victim_line << 6);
                    let _ = self.enqueue_dram(source, victim_addr, AccessKind::Write);
                }
                match kind {
                    AccessKind::Read => match self.enqueue_dram(source, addr, AccessKind::Read) {
                        Some(id) => PortResponse::Pending { req_id: id },
                        None => PortResponse::Busy,
                    },
                    AccessKind::Write => {
                        // Write-allocate with immediate-writeback accounting:
                        // the dirtied line is charged one DRAM write now.
                        let _ = self.enqueue_dram(source, addr, AccessKind::Write);
                        PortResponse::Done { latency: LLC_HIT_LATENCY }
                    }
                }
            }
        }
    }
}

/// A complete simulated machine.
pub struct System {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    ratio: ClockRatio,
    oracles: Option<Vec<Oracle>>,
    completions_buf: Vec<u64>,
    /// Issuing core per request id, indexed by `id - 1`: demand ids are
    /// allocated densely from 1 by `Hierarchy::enqueue_dram`, so a flat
    /// slab replaces the former per-request HashMap on the hot path
    /// (tracker metadata ids live in a disjoint high range and never
    /// complete back to a core).
    core_of_req: Vec<u8>,
    /// Dense steps to run before the next skip attempt (failed-probe
    /// backoff; purely a performance heuristic, never affects results).
    skip_cooldown: u32,
    /// Current backoff width, doubled on each failed probe up to
    /// [`MAX_SKIP_BACKOFF`], reset by a successful skip.
    skip_backoff: u32,
    /// Bus cycles executed densely (diagnostics).
    dense_steps: u64,
    /// Bus cycles elided by skips (diagnostics).
    skipped_cycles: u64,
    /// Number of successful skips (diagnostics).
    skips: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.hierarchy.now)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system.
    ///
    /// * `traces` — one trace source per core.
    /// * `bypass_llc` — per-core LLC bypass (attacker cores).
    /// * `trackers` — one tracker per channel.
    /// * `collect_events` — enable the ground-truth oracle.
    ///
    /// # Panics
    ///
    /// Panics if `traces`/`bypass_llc` lengths disagree with the config's
    /// core count or `trackers` with the channel count.
    pub fn new(
        cfg: SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        bypass_llc: Vec<bool>,
        trackers: Vec<Box<dyn RowHammerTracker>>,
        collect_events: bool,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cpu.cores as usize, "one trace per core");
        assert_eq!(bypass_llc.len(), traces.len(), "one bypass flag per core");
        assert_eq!(trackers.len(), cfg.geometry.channels as usize, "one tracker per channel");
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                Core::new(SourceId(i as u8), cfg.cpu.width as u32, cfg.cpu.rob_entries as usize, t)
            })
            .collect();
        let timing = TimingParams::ddr5_6400();
        let mut ctrl_cfg = CtrlConfig::new(cfg.nrh, cfg.blast_radius, cfg.mitigation);
        ctrl_cfg.collect_events = collect_events;
        let ctrls: Vec<ChannelController> = trackers
            .into_iter()
            .enumerate()
            .map(|(ch, tr)| {
                ChannelController::new(
                    ch as u8,
                    DramChannel::new(cfg.geometry, timing),
                    tr,
                    ctrl_cfg,
                )
            })
            .collect();
        let oracles = collect_events.then(|| {
            (0..cfg.geometry.channels)
                .map(|_| Oracle::new(cfg.nrh, cfg.blast_radius, cfg.geometry))
                .collect()
        });
        let llc = Llc::new(cfg.llc, cfg.seed ^ 0x11C);
        Self {
            cores,
            hierarchy: Hierarchy { cfg, llc, ctrls, bypass_llc, next_req: 1, now: 0 },
            ratio: ClockRatio::core_over_bus(),
            oracles,
            completions_buf: Vec::new(),
            core_of_req: Vec::new(),
            skip_cooldown: 0,
            skip_backoff: 1,
            dense_steps: 0,
            skipped_cycles: 0,
            skips: 0,
        }
    }

    /// Current bus cycle.
    pub fn cycle(&self) -> Cycle {
        self.hierarchy.now
    }

    /// Advances the machine one bus cycle.
    pub fn step(&mut self) {
        let now = self.hierarchy.now;

        // Memory controllers first: issue commands, surface completions.
        for ctrl in &mut self.hierarchy.ctrls {
            ctrl.tick(now);
            self.completions_buf.clear();
            ctrl.pop_completions(now, &mut self.completions_buf);
            for &id in &self.completions_buf {
                let core = self.core_of_req[(id - 1) as usize] as usize;
                self.cores[core].complete(id);
            }
        }

        // Oracle consumes the event log.
        if let Some(oracles) = &mut self.oracles {
            for (ch, ctrl) in self.hierarchy.ctrls.iter_mut().enumerate() {
                for ev in ctrl.events.drain(..) {
                    oracles[ch].observe(&ev);
                }
            }
        }

        // Cores run in their own clock domain (5 core cycles : 4 bus cycles).
        let n = self.ratio.core_cycles_for_bus_cycle();
        for _ in 0..n {
            for core in &mut self.cores {
                let before = self.hierarchy.next_req;
                core.cycle(&mut self.hierarchy);
                // Register any requests this core just issued. Ids are
                // allocated densely, so the slab stays push-only.
                debug_assert_eq!(self.core_of_req.len() as u64, before - 1);
                for _ in before..self.hierarchy.next_req {
                    self.core_of_req.push(core.id().0);
                }
            }
        }

        self.hierarchy.now += 1;
    }

    /// Runs until the window closes or every core reaches `max_instructions`,
    /// using the default [`Engine::EventDriven`] loop.
    pub fn run(&mut self) -> RunStats {
        self.run_engine(Engine::EventDriven)
    }

    /// Runs with the reference dense-tick loop (one [`System::step`] per bus
    /// cycle). Kept as the semantic baseline for the equivalence suite.
    pub fn run_dense(&mut self) -> RunStats {
        self.run_engine(Engine::Dense)
    }

    /// Runs under the chosen engine.
    pub fn run_engine(&mut self, engine: Engine) -> RunStats {
        let window = self.hierarchy.cfg.window_cycles;
        let max_inst = self.hierarchy.cfg.max_instructions;
        while self.hierarchy.now < window {
            if engine == Engine::Dense || !self.try_skip() {
                self.step();
                self.dense_steps += 1;
            }
            if max_inst != u64::MAX && self.cores.iter().all(|c| c.retired() >= max_inst) {
                break;
            }
        }
        self.stats()
    }

    /// `(dense bus cycles, skipped bus cycles, skips)` executed so far —
    /// how much of the simulated time the event engine actually elided and
    /// in how many jumps.
    pub fn engine_stats(&self) -> (u64, u64, u64) {
        (self.dense_steps, self.skipped_cycles, self.skips)
    }

    /// Attempts one exact time skip; returns false when any component might
    /// act within the next bus cycle (the caller then steps densely).
    ///
    /// A skip of `k` bus cycles is performed only when:
    ///
    /// * no controller reports an event before `now + k` (REF/hook
    ///   deadlines, completions, schedulable requests — see
    ///   [`memctrl::ChannelController::next_event`]), and
    /// * every core can be advanced the corresponding core-cycle total in
    ///   closed form ([`cpu::Quiescence`]), without crossing the
    ///   instruction budget of a still-running core.
    ///
    /// Under those conditions the skipped cycles are provably no-ops for
    /// the memory system and exactly summarizable for the cores, so dense
    /// and skipped execution produce identical [`RunStats`].
    fn try_skip(&mut self) -> bool {
        if self.skip_cooldown > 0 {
            self.skip_cooldown -= 1;
            return false;
        }
        let now = self.hierarchy.now;
        let mut horizon = self.hierarchy.cfg.window_cycles;
        for ctrl in &self.hierarchy.ctrls {
            horizon = horizon.min(NextEvent::next_event(ctrl, now));
            if horizon <= now + 1 {
                return self.skip_failed();
            }
        }
        // Core-side budget, in core cycles.
        let max_inst = self.hierarchy.cfg.max_instructions;
        let mut budget = u64::MAX;
        for core in &self.cores {
            match core.quiescence() {
                Quiescence::Busy => return self.skip_failed(),
                Quiescence::Stalled => {}
                Quiescence::Streaming { cycles } => budget = budget.min(cycles),
            }
            if max_inst != u64::MAX && core.retired() < max_inst {
                // Stop the skip no later than the first cycle this core
                // could cross its instruction budget (retire rate is at
                // most `width` per core cycle), so the run-loop break
                // fires on the same step as under dense execution.
                let width = self.hierarchy.cfg.cpu.width as u64;
                budget = budget.min((max_inst - core.retired()).div_ceil(width));
            }
        }
        let k = self.ratio.max_bus_cycles_within(budget).min(horizon - now);
        if k < 2 {
            return self.skip_failed();
        }
        let core_cycles = self.ratio.advance_bus_cycles(k);
        for core in &mut self.cores {
            core.fast_forward(core_cycles);
        }
        self.hierarchy.now += k;
        self.skipped_cycles += k;
        self.skips += 1;
        self.skip_backoff = 1;
        true
    }

    fn skip_failed(&mut self) -> bool {
        self.skip_cooldown = self.skip_backoff;
        self.skip_backoff = (self.skip_backoff * 2).min(MAX_SKIP_BACKOFF);
        false
    }

    /// Snapshot of the metrics so far.
    pub fn stats(&self) -> RunStats {
        let mut mem = sim_core::stats::MemStats::default();
        let mut energy = 0.0;
        for ctrl in &self.hierarchy.ctrls {
            mem.merge(&ctrl.stats);
            energy += ctrl
                .dram()
                .energy
                .total_mj(self.hierarchy.now, self.hierarchy.cfg.geometry.ranks as u32);
        }
        let oracle = self.oracles.as_ref().map(|os| {
            let max = os.iter().map(|o| o.max_damage()).max().unwrap_or(0);
            let v: u64 = os.iter().map(|o| o.violations()).sum();
            (max, v)
        });
        RunStats {
            tracker: self.hierarchy.ctrls[0].tracker().name().to_string(),
            cycles: self.hierarchy.now,
            retired: self.cores.iter().map(|c| c.retired()).collect(),
            core_cycles: self.cores.iter().map(|c| c.cycles()).collect(),
            mem,
            llc_hit_rate: self.hierarchy.llc.hit_rate(),
            energy_mj: energy,
            oracle,
        }
    }

    /// Mitigation-queue / metadata backlog across channels (introspection).
    pub fn pending_mitigations(&self) -> usize {
        self.hierarchy.ctrls.iter().map(|c| c.pending_mitigations()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::TraceEntry;
    use sim_core::tracker::NullTracker;

    /// A fixed-stride read stream.
    struct Stride {
        next: u64,
        step: u64,
        bubbles: u32,
    }
    impl TraceSource for Stride {
        fn next_entry(&mut self) -> TraceEntry {
            let a = self.next;
            self.next += self.step;
            TraceEntry { bubbles: self.bubbles, addr: PhysAddr(a), is_write: false }
        }
    }

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.window_cycles = 60_000;
        cfg
    }

    fn build(cfg: SystemConfig, bubbles: u32, collect: bool) -> System {
        let cores = cfg.cpu.cores as usize;
        let traces: Vec<Box<dyn TraceSource>> = (0..cores)
            .map(|i| {
                Box::new(Stride { next: i as u64 * (16 << 30), step: 64, bubbles })
                    as Box<dyn TraceSource>
            })
            .collect();
        let trackers: Vec<Box<dyn RowHammerTracker>> = (0..cfg.geometry.channels)
            .map(|_| Box::new(NullTracker) as Box<dyn RowHammerTracker>)
            .collect();
        System::new(cfg, traces, vec![false; cores], trackers, collect)
    }

    #[test]
    fn cores_make_progress_and_hit_llc() {
        let mut sys = build(small_cfg(), 10, false);
        let stats = sys.run();
        for i in 0..4 {
            assert!(stats.retired[i] > 10_000, "core {i}: {}", stats.retired[i]);
            assert!(stats.ipc(i) > 0.1);
        }
        // Sequential lines: second half of each row's lines hit the LLC...
        // actually every line is cold (stride 64), so hit rate ~ 0.
        assert!(stats.mem.reads > 0);
    }

    #[test]
    fn memory_bound_cores_are_slower() {
        let mut fast = build(small_cfg(), 1000, false);
        let mut slow = build(small_cfg(), 0, false);
        let f = fast.run();
        let s = slow.run();
        assert!(s.ipc(0) < f.ipc(0) / 2.0, "{} vs {}", s.ipc(0), f.ipc(0));
    }

    #[test]
    fn oracle_attaches_and_counts_activations() {
        let mut sys = build(small_cfg(), 50, true);
        let stats = sys.run();
        let (max_damage, violations) = stats.oracle.expect("oracle enabled");
        assert_eq!(violations, 0, "strided benign traffic cannot hammer");
        // Cores share banks, so a row can re-activate once per line (128
        // columns) under conflicts — far below N_RH = 500.
        assert!(max_damage < 300, "{max_damage}");
        assert!(stats.mem.activations > 0);
    }

    #[test]
    fn instruction_budget_stops_early() {
        let mut cfg = small_cfg();
        cfg.window_cycles = 10_000_000;
        cfg.max_instructions = 5_000;
        let mut sys = build(cfg, 100, false);
        let stats = sys.run();
        assert!(stats.cycles < 10_000_000, "stopped at {}", stats.cycles);
        for i in 0..4 {
            assert!(stats.retired[i] >= 5_000);
        }
    }

    #[test]
    fn engines_agree_bit_for_bit_on_strided_traffic() {
        for bubbles in [0, 10, 500, 40_000] {
            let dense = build(small_cfg(), bubbles, true).run_dense();
            let event = build(small_cfg(), bubbles, true).run();
            assert_eq!(dense, event, "bubbles={bubbles}");
        }
    }

    #[test]
    fn engines_agree_under_instruction_budget() {
        let mut cfg = small_cfg();
        cfg.window_cycles = 10_000_000;
        cfg.max_instructions = 50_000;
        let dense = build(cfg.clone(), 200, false).run_dense();
        let event = build(cfg, 200, false).run();
        assert_eq!(dense, event, "early-stop cycle must match exactly");
        assert!(dense.cycles < 10_000_000);
    }

    #[test]
    fn idle_workload_actually_skips() {
        // Bubble-heavy cores leave the bus idle almost always; the event
        // engine must do far fewer dense steps than there are bus cycles.
        // (Indirect check: the run completes with identical stats; the
        // wall-clock benefit is measured in crates/bench.)
        let mut cfg = small_cfg();
        cfg.window_cycles = 200_000;
        let dense = build(cfg.clone(), 20_000, false).run_dense();
        let event = build(cfg, 20_000, false).run();
        assert_eq!(dense, event);
        assert_eq!(event.cycles, 200_000);
    }

    #[test]
    fn energy_is_positive_and_grows_with_traffic() {
        let mut idle = build(small_cfg(), 40_000, false);
        let mut busy = build(small_cfg(), 0, false);
        let ei = idle.run().energy_mj;
        let eb = busy.run().energy_mj;
        assert!(ei > 0.0);
        assert!(eb > ei);
    }
}
