//! Declarative experiment specs: TOML/JSON descriptions of experiments and
//! sweeps that expand into [`Experiment`]s through the tracker registry.
//!
//! A [`SweepSpec`] names trackers by registry key (with per-tracker
//! parameter overrides like `hydra.rcc_entries = 512`), workloads from the
//! catalog (or the `@quick` / `@all` tokens), and attacks by name; it
//! expands into the full cross product for
//! [`crate::runner::try_run_parallel`] and round-trips results to JSON.
//! An [`ExperimentSpec`] is the single-cell form. Both serialize to TOML
//! and JSON and parse back losslessly; every validation failure names the
//! offending key.
//!
//! ```toml
//! # A paper-figure matrix, declaratively:
//! name = "fig09-quick"
//! workloads = ["@quick"]
//! trackers = ["dapper-s"]
//! attacks = ["streaming", "refresh"]
//! isolate = true
//!
//! [params.dapper-s]
//! group_size = 256
//! ```

use crate::experiment::{
    AttackChoice, AttackerConfig, AttackerKnowledge, Experiment, ExperimentResult, TelemetrySpec,
    TrackerSel,
};
use crate::runner::{try_run_parallel, SweepError};
use crate::system::Engine;
use crate::toml::{self, TomlError, TomlValue};
use sim_core::config::Threads;
use sim_core::json::{Json, JsonError};
use sim_core::registry::{ParamValue, RegistryError};
use std::collections::BTreeMap;
use workloads::Attack;

/// What went wrong turning a spec into experiments. Every variant names
/// the offending key/name so the user can fix the exact line.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The TOML text did not parse.
    Toml(TomlError),
    /// The JSON text did not parse.
    Json(JsonError),
    /// A tracker name or parameter the registry rejected.
    Registry(RegistryError),
    /// A workload name the catalog does not know.
    UnknownWorkload {
        /// The offending name.
        name: String,
    },
    /// An attack name outside the known set.
    UnknownAttack {
        /// The offending name.
        name: String,
        /// The names that would have worked.
        known: Vec<String>,
    },
    /// A malformed or missing field.
    Field {
        /// The offending key.
        key: String,
        /// What is wrong with it.
        message: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Toml(e) => e.fmt(f),
            SpecError::Json(e) => e.fmt(f),
            SpecError::Registry(e) => e.fmt(f),
            SpecError::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            SpecError::UnknownAttack { name, known } => {
                write!(f, "unknown attack '{name}'; known: {}", known.join(", "))
            }
            SpecError::Field { key, message } => write!(f, "spec field '{key}': {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError::Toml(e)
    }
}
impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}
impl From<RegistryError> for SpecError {
    fn from(e: RegistryError) -> Self {
        SpecError::Registry(e)
    }
}

fn field_err(key: &str, message: impl Into<String>) -> SpecError {
    SpecError::Field { key: key.to_string(), message: message.into() }
}

/// The attack names the spec layer accepts: the three experiment-level
/// modes plus every specific pattern.
pub fn known_attacks() -> Vec<String> {
    let mut known = vec!["none".to_string(), "tailored".to_string()];
    known.extend(Attack::all().map(|a| a.name().to_string()));
    known
}

/// Parses an attack name into an [`AttackChoice`]. `"none"`/`"benign"`
/// select no attacker, `"tailored"` the tracker-specific pattern, anything
/// else a specific [`Attack`] by its display name.
pub fn parse_attack(name: &str) -> Result<AttackChoice, SpecError> {
    let norm = sim_core::registry::normalize_key(name);
    match norm.as_str() {
        "none" | "benign" => return Ok(AttackChoice::None),
        "tailored" => return Ok(AttackChoice::Tailored),
        _ => {}
    }
    Attack::all()
        .into_iter()
        .find(|a| {
            let n = sim_core::registry::normalize_key(a.name());
            n == norm || norm == format!("{n}attack")
        })
        .map(AttackChoice::Specific)
        .ok_or_else(|| SpecError::UnknownAttack { name: name.to_string(), known: known_attacks() })
}

// ---------------------------------------------------------------------------
// Tree helpers shared by the TOML and JSON front-ends.
// ---------------------------------------------------------------------------

fn json_to_toml(j: &Json, key: &str) -> Result<TomlValue, SpecError> {
    Ok(match j {
        Json::Null => return Err(field_err(key, "null is not a spec value")),
        Json::Bool(b) => TomlValue::Bool(*b),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                TomlValue::Int(*n as i64)
            } else {
                TomlValue::Float(*n)
            }
        }
        Json::Str(s) => TomlValue::Str(s.clone()),
        Json::Arr(items) => {
            TomlValue::Arr(items.iter().map(|i| json_to_toml(i, key)).collect::<Result<_, _>>()?)
        }
        Json::Obj(pairs) => {
            let mut t = BTreeMap::new();
            for (k, v) in pairs {
                t.insert(k.clone(), json_to_toml(v, k)?);
            }
            TomlValue::Table(t)
        }
    })
}

fn toml_to_json(v: &TomlValue) -> Json {
    match v {
        TomlValue::Str(s) => Json::Str(s.clone()),
        TomlValue::Int(i) => Json::Num(*i as f64),
        TomlValue::Float(f) => Json::Num(*f),
        TomlValue::Bool(b) => Json::Bool(*b),
        TomlValue::Arr(items) => Json::Arr(items.iter().map(toml_to_json).collect()),
        TomlValue::Table(t) => {
            Json::Obj(t.iter().map(|(k, v)| (k.clone(), toml_to_json(v))).collect())
        }
    }
}

fn param_from_toml(key: &str, v: &TomlValue) -> Result<ParamValue, SpecError> {
    Ok(match v {
        TomlValue::Int(i) => ParamValue::Int(*i),
        TomlValue::Float(f) => ParamValue::Float(*f),
        TomlValue::Bool(b) => ParamValue::Bool(*b),
        TomlValue::Str(s) => ParamValue::Str(s.clone()),
        other => {
            return Err(field_err(key, format!("a {} is not a parameter value", other.kind())))
        }
    })
}

fn param_to_toml(v: &ParamValue) -> TomlValue {
    match v {
        ParamValue::Int(i) => TomlValue::Int(*i),
        ParamValue::Float(f) => TomlValue::Float(*f),
        ParamValue::Bool(b) => TomlValue::Bool(*b),
        ParamValue::Str(s) => TomlValue::Str(s.clone()),
    }
}

fn param_table(t: &TomlValue, key: &str) -> Result<BTreeMap<String, ParamValue>, SpecError> {
    match t {
        TomlValue::Table(entries) => {
            let mut out = BTreeMap::new();
            for (k, v) in entries {
                out.insert(k.clone(), param_from_toml(&format!("{key}.{k}"), v)?);
            }
            Ok(out)
        }
        other => Err(field_err(key, format!("expected a table, got {}", other.kind()))),
    }
}

struct Fields<'a> {
    table: &'a BTreeMap<String, TomlValue>,
}

impl<'a> Fields<'a> {
    fn opt_str(&self, key: &str) -> Result<Option<String>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(field_err(key, format!("expected a string, got {}", other.kind()))),
        }
    }

    fn req_str(&self, key: &str) -> Result<String, SpecError> {
        self.opt_str(key)?.ok_or_else(|| field_err(key, "required"))
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
            // Values above i64::MAX (e.g. full-width seeds) serialize as
            // hex strings; accept them back.
            Some(TomlValue::Str(s)) => {
                let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse::<u64>(),
                };
                parsed.map(Some).map_err(|_| {
                    field_err(key, format!("cannot parse '{s}' as an unsigned integer"))
                })
            }
            Some(other) => {
                Err(field_err(key, format!("expected a non-negative integer, got {other:?}")))
            }
        }
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, SpecError> {
        match self.opt_u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v)
                .map(Some)
                .map_err(|_| field_err(key, format!("{v} does not fit in 32 bits"))),
        }
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Float(f)) => Ok(Some(*f)),
            Some(TomlValue::Int(i)) => Ok(Some(*i as f64)),
            Some(other) => Err(field_err(key, format!("expected a number, got {}", other.kind()))),
        }
    }

    fn opt_bool(&self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Bool(b)) => Ok(Some(*b)),
            Some(other) => Err(field_err(key, format!("expected a boolean, got {}", other.kind()))),
        }
    }

    fn str_list(&self, key: &str) -> Result<Option<Vec<String>>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Arr(items)) => {
                let mut out = Vec::new();
                for item in items {
                    match item {
                        TomlValue::Str(s) => out.push(s.clone()),
                        other => {
                            return Err(field_err(
                                key,
                                format!("expected strings, got a {}", other.kind()),
                            ))
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(TomlValue::Str(s)) => Ok(Some(vec![s.clone()])),
            Some(other) => {
                Err(field_err(key, format!("expected an array of strings, got {}", other.kind())))
            }
        }
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for key in self.table.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(field_err(
                    key,
                    format!("unknown spec field; allowed: {}", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }
}

fn parse_engine(name: &str) -> Result<Engine, SpecError> {
    match name {
        "dense" => Ok(Engine::Dense),
        "event-driven" | "event_driven" => Ok(Engine::EventDriven),
        other => Err(field_err("engine", format!("'{other}' is not 'dense' or 'event-driven'"))),
    }
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Dense => "dense",
        Engine::EventDriven => "event-driven",
    }
}

/// Shared system-level knobs of a spec (every field optional; the
/// [`Experiment`] defaults apply when absent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecOptions {
    /// RowHammer threshold N_RH.
    pub nrh: Option<u32>,
    /// Simulation window, microseconds.
    pub window_us: Option<f64>,
    /// RNG seed.
    pub seed: Option<u64>,
    /// Normalize against an attacker-inclusive baseline (the DAPPER-figure
    /// normalization).
    pub isolate: Option<bool>,
    /// Simulation engine (`dense` / `event-driven`).
    pub engine: Option<Engine>,
}

impl SpecOptions {
    const KEYS: [&'static str; 5] = ["nrh", "window_us", "seed", "isolate", "engine"];

    fn from_fields(f: &Fields) -> Result<Self, SpecError> {
        Ok(Self {
            nrh: f.opt_u32("nrh")?,
            window_us: f.opt_f64("window_us")?,
            seed: f.opt_u64("seed")?,
            isolate: f.opt_bool("isolate")?,
            engine: match f.opt_str("engine")? {
                None => None,
                Some(name) => Some(parse_engine(&name)?),
            },
        })
    }

    fn write(&self, t: &mut BTreeMap<String, TomlValue>) {
        if let Some(nrh) = self.nrh {
            t.insert("nrh".into(), TomlValue::Int(nrh as i64));
        }
        if let Some(w) = self.window_us {
            t.insert("window_us".into(), TomlValue::Float(w));
        }
        if let Some(s) = self.seed {
            // Seeds past i64::MAX cannot be a TOML integer; hex strings
            // round-trip exactly (opt_u64 accepts them back).
            let v = match i64::try_from(s) {
                Ok(i) => TomlValue::Int(i),
                Err(_) => TomlValue::Str(format!("{s:#x}")),
            };
            t.insert("seed".into(), v);
        }
        if let Some(i) = self.isolate {
            t.insert("isolate".into(), TomlValue::Bool(i));
        }
        if let Some(e) = self.engine {
            t.insert("engine".into(), TomlValue::Str(engine_name(e).into()));
        }
    }

    fn apply(&self, mut e: Experiment) -> Experiment {
        if let Some(nrh) = self.nrh {
            e = e.nrh(nrh);
        }
        if let Some(w) = self.window_us {
            e = e.window_us(w);
        }
        if let Some(s) = self.seed {
            e = e.seed(s);
        }
        if self.isolate == Some(true) {
            e = e.isolating();
        }
        if let Some(engine) = self.engine {
            e = e.engine(engine);
        }
        e
    }
}

/// The `[telemetry]` spec section: which recorders to attach, the window
/// length, and an optional export stem.
///
/// ```toml
/// [telemetry]
/// window_us = 25.0
/// recorders = ["time-series", "slowdown"]   # or ["all"]
/// oracle = false
/// out = "transient"                         # export stem under out/
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryOptions {
    /// Recorder selection and window length (applied to every cell).
    pub spec: TelemetrySpec,
    /// Export stem: when set, the runner writes `<stem>_telemetry.json`
    /// beside the sweep results.
    pub out: Option<String>,
}

/// The recorder names `[telemetry] recorders = [...]` accepts.
pub const KNOWN_RECORDERS: [&str; 4] = ["time-series", "slowdown", "mitigation-log", "all"];

impl TelemetryOptions {
    fn from_value(v: &TomlValue) -> Result<Self, SpecError> {
        let TomlValue::Table(table) = v else {
            return Err(field_err("telemetry", format!("expected a table, got {}", v.kind())));
        };
        let f = Fields { table };
        f.reject_unknown(&["window_us", "recorders", "oracle", "out"])?;
        let window_us = f.opt_f64("window_us")?;
        if let Some(w) = window_us {
            // Catch it here with the key named, not as a per-job panic
            // when the engine asserts a nonzero window length.
            if !(w.is_finite() && w > 0.0) {
                return Err(field_err(
                    "telemetry.window_us",
                    format!("must be a positive number of microseconds, got {w}"),
                ));
            }
        }
        let mut spec = TelemetrySpec { window_us, ..Default::default() };
        spec.oracle = f.opt_bool("oracle")?.unwrap_or(false);
        for name in f.str_list("recorders")?.unwrap_or_default() {
            match sim_core::registry::normalize_key(&name).as_str() {
                "timeseries" => spec.time_series = true,
                "slowdown" => spec.slowdown = true,
                "mitigationlog" => spec.mitigation_log = true,
                "all" => {
                    spec.time_series = true;
                    spec.slowdown = true;
                    spec.mitigation_log = true;
                }
                _ => {
                    return Err(field_err(
                        "telemetry.recorders",
                        format!("unknown recorder '{name}'; known: {}", KNOWN_RECORDERS.join(", ")),
                    ))
                }
            }
        }
        Ok(Self { spec, out: f.opt_str("out")? })
    }

    fn to_value(&self) -> TomlValue {
        let mut t = BTreeMap::new();
        if let Some(w) = self.spec.window_us {
            t.insert("window_us".into(), TomlValue::Float(w));
        }
        let mut recorders = Vec::new();
        if self.spec.time_series && self.spec.slowdown && self.spec.mitigation_log {
            recorders.push("all");
        } else {
            if self.spec.time_series {
                recorders.push("time-series");
            }
            if self.spec.slowdown {
                recorders.push("slowdown");
            }
            if self.spec.mitigation_log {
                recorders.push("mitigation-log");
            }
        }
        if !recorders.is_empty() {
            t.insert(
                "recorders".into(),
                TomlValue::Arr(recorders.into_iter().map(|r| TomlValue::Str(r.into())).collect()),
            );
        }
        if self.spec.oracle {
            t.insert("oracle".into(), TomlValue::Bool(true));
        }
        if let Some(out) = &self.out {
            t.insert("out".into(), TomlValue::Str(out.clone()));
        }
        TomlValue::Table(t)
    }

    fn apply(&self, e: Experiment) -> Experiment {
        e.with_telemetry(self.spec)
    }
}

/// The `[cache]` spec section: where (and whether) to read results
/// through the content-addressed run cache
/// ([`crate::cache::RunCache`]).
///
/// ```toml
/// [cache]
/// dir = "run_cache"   # relative paths resolve against the working dir
/// enabled = true      # default; set false to keep the section but opt out
/// ```
///
/// Runners honour the section when expanding the sweep through
/// [`SweepSpec::run_cached`]; `spec_run`'s `--cache-dir`/`--no-cache`
/// flags override it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheOptions {
    /// Cache directory.
    pub dir: Option<String>,
    /// Explicit opt-out that survives round-trips (`Some(false)` keeps
    /// the directory configured but disables reads and writes).
    pub enabled: Option<bool>,
}

impl CacheOptions {
    fn from_value(v: &TomlValue) -> Result<Self, SpecError> {
        let TomlValue::Table(table) = v else {
            return Err(field_err("cache", format!("expected a table, got {}", v.kind())));
        };
        let f = Fields { table };
        f.reject_unknown(&["dir", "enabled"])?;
        Ok(Self { dir: f.opt_str("dir")?, enabled: f.opt_bool("enabled")? })
    }

    fn to_value(&self) -> TomlValue {
        let mut t = BTreeMap::new();
        if let Some(dir) = &self.dir {
            t.insert("dir".into(), TomlValue::Str(dir.clone()));
        }
        if let Some(enabled) = self.enabled {
            t.insert("enabled".into(), TomlValue::Bool(enabled));
        }
        TomlValue::Table(t)
    }

    /// The configured directory, unless the section opts out with
    /// `enabled = false`.
    pub fn effective_dir(&self) -> Option<&str> {
        if self.enabled == Some(false) {
            return None;
        }
        self.dir.as_deref()
    }
}

/// The probe-family names `[profile] families = [...]` accepts (`"all"`
/// expands to every parametric family). The profiler crate's `Family`
/// enum must agree with this list; a unit test over there pins it.
pub const KNOWN_PROFILE_FAMILIES: [&str; 5] = ["hammer", "sweep", "diagonal", "thrash", "all"];

/// The `[profile]` spec section: run the profile → evaluate → attack
/// campaign workflow (the `profiler` crate) instead of a plain sweep.
///
/// ```toml
/// [profile]
/// bank_groups = 4        # bank-spread axis resolution (default 4)
/// row_groups = 4         # intensity axis resolution (default 4)
/// probe_window_us = 60.0 # short-horizon probe window (default 60)
/// families = ["hammer", "sweep"]  # default: all families
/// top_k = 5              # heatmap cells re-run at full fidelity
/// budget = 48            # attack-stage search budget (0 / absent: skip)
/// ```
///
/// Runners route specs carrying this section through the profiler
/// workflow per (tracker, workload) pair; the `[cache]` section (or
/// `--cache-dir`) makes warm profiles cost zero simulations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileOptions {
    /// Bank-spread buckets on the heatmap's first axis.
    pub bank_groups: Option<u32>,
    /// Intensity buckets (rows / span / footprint) on the second axis.
    pub row_groups: Option<u32>,
    /// Probe simulation window, microseconds.
    pub probe_window_us: Option<f64>,
    /// Probe pattern families (subset of [`KNOWN_PROFILE_FAMILIES`];
    /// empty means all).
    pub families: Vec<String>,
    /// Heatmap cells promoted to the full-fidelity evaluate stage.
    pub top_k: Option<u32>,
    /// Attack-stage search budget (`None` or `0`: profile + evaluate
    /// only).
    pub budget: Option<u32>,
}

impl ProfileOptions {
    fn from_value(v: &TomlValue) -> Result<Self, SpecError> {
        let TomlValue::Table(table) = v else {
            return Err(field_err("profile", format!("expected a table, got {}", v.kind())));
        };
        let f = Fields { table };
        f.reject_unknown(&[
            "bank_groups",
            "row_groups",
            "probe_window_us",
            "families",
            "top_k",
            "budget",
        ])?;
        let families = f.str_list("families")?.unwrap_or_default();
        for fam in &families {
            if !KNOWN_PROFILE_FAMILIES.contains(&fam.as_str()) {
                return Err(field_err(
                    "profile.families",
                    format!(
                        "unknown family '{fam}' (known: {})",
                        KNOWN_PROFILE_FAMILIES.join(", ")
                    ),
                ));
            }
        }
        for key in ["bank_groups", "row_groups"] {
            if let Some(0) = f.opt_u32(key)? {
                return Err(field_err(&format!("profile.{key}"), "must be >= 1"));
            }
        }
        if let Some(w) = f.opt_f64("probe_window_us")? {
            if w.is_nan() || w <= 0.0 {
                return Err(field_err("profile.probe_window_us", "must be > 0"));
            }
        }
        Ok(Self {
            bank_groups: f.opt_u32("bank_groups")?,
            row_groups: f.opt_u32("row_groups")?,
            probe_window_us: f.opt_f64("probe_window_us")?,
            families,
            top_k: f.opt_u32("top_k")?,
            budget: f.opt_u32("budget")?,
        })
    }

    fn to_value(&self) -> TomlValue {
        let mut t = BTreeMap::new();
        if let Some(n) = self.bank_groups {
            t.insert("bank_groups".into(), TomlValue::Int(n as i64));
        }
        if let Some(n) = self.row_groups {
            t.insert("row_groups".into(), TomlValue::Int(n as i64));
        }
        if let Some(w) = self.probe_window_us {
            t.insert("probe_window_us".into(), TomlValue::Float(w));
        }
        if !self.families.is_empty() {
            t.insert(
                "families".into(),
                TomlValue::Arr(self.families.iter().cloned().map(TomlValue::Str).collect()),
            );
        }
        if let Some(k) = self.top_k {
            t.insert("top_k".into(), TomlValue::Int(k as i64));
        }
        if let Some(b) = self.budget {
            t.insert("budget".into(), TomlValue::Int(b as i64));
        }
        TomlValue::Table(t)
    }
}

/// The `[system]` spec section: machine-level knobs that are neither
/// tracker parameters nor run options.
///
/// ```toml
/// [system]
/// geometry = "enlarged-8ch"   # or "paper-baseline" (default)
/// threads = "auto"            # "seq" (default), "auto", or a lane count
/// ```
///
/// `geometry` selects a DRAM preset ([`Geometry::paper_baseline`] /
/// [`Geometry::enlarged_8ch`]); the LLC stays at the baseline capacity
/// either way. `threads` picks the memory-phase executor
/// ([`sim_core::config::Threads`]) — an execution knob with bit-identical
/// results, so it is deliberately **excluded** from the run-cache cell
/// key, while `geometry` (which changes what is simulated) is part of it.
///
/// [`Geometry::paper_baseline`]: sim_core::addr::Geometry::paper_baseline
/// [`Geometry::enlarged_8ch`]: sim_core::addr::Geometry::enlarged_8ch
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemOptions {
    /// Canonical geometry preset name (`paper-baseline` / `enlarged-8ch`).
    pub geometry: Option<String>,
    /// Memory-phase execution lanes.
    pub threads: Option<Threads>,
}

/// The geometry preset names `[system] geometry = "..."` accepts.
pub const KNOWN_GEOMETRIES: [&str; 2] = ["paper-baseline", "enlarged-8ch"];

impl SystemOptions {
    fn from_value(v: &TomlValue) -> Result<Self, SpecError> {
        let TomlValue::Table(table) = v else {
            return Err(field_err("system", format!("expected a table, got {}", v.kind())));
        };
        let f = Fields { table };
        f.reject_unknown(&["geometry", "threads"])?;
        let geometry = match f.opt_str("geometry")? {
            None => None,
            Some(name) => Some(parse_geometry(&name)?.to_string()),
        };
        let threads = match table.get("threads") {
            None => None,
            Some(TomlValue::Str(s)) => {
                Some(Threads::parse(s).map_err(|m| field_err("system.threads", m))?)
            }
            Some(TomlValue::Int(i)) => {
                let n = usize::try_from(*i).ok().filter(|&n| n >= 1).ok_or_else(|| {
                    field_err("system.threads", format!("lane count must be >= 1, got {i}"))
                })?;
                Some(Threads::N(n))
            }
            Some(other) => {
                return Err(field_err(
                    "system.threads",
                    format!("expected \"seq\", \"auto\", or a lane count, got {}", other.kind()),
                ))
            }
        };
        Ok(Self { geometry, threads })
    }

    fn to_value(&self) -> TomlValue {
        let mut t = BTreeMap::new();
        if let Some(geometry) = &self.geometry {
            t.insert("geometry".into(), TomlValue::Str(geometry.clone()));
        }
        match self.threads {
            None => {}
            Some(Threads::N(n)) => {
                t.insert("threads".into(), TomlValue::Int(n as i64));
            }
            Some(t_) => {
                t.insert("threads".into(), TomlValue::Str(t_.to_string()));
            }
        }
        TomlValue::Table(t)
    }

    fn apply(&self, mut e: Experiment) -> Experiment {
        if self.geometry.as_deref() == Some("enlarged-8ch") {
            // Baseline per-core LLC share (2 MiB x 4 cores = the 8 MiB
            // baseline): geometry changes the memory system only.
            e = e.eight_channel(2);
        }
        if let Some(threads) = self.threads {
            e = e.threads(threads);
        }
        e
    }
}

/// Resolves a geometry preset name to its canonical spelling.
fn parse_geometry(name: &str) -> Result<&'static str, SpecError> {
    match sim_core::registry::normalize_key(name).as_str() {
        "paperbaseline" | "baseline" => Ok("paper-baseline"),
        "enlarged8ch" | "eightchannel" | "8ch" => Ok("enlarged-8ch"),
        _ => Err(field_err(
            "system.geometry",
            format!("unknown geometry '{name}'; known: {}", KNOWN_GEOMETRIES.join(", ")),
        )),
    }
}

/// The `[attacker]` spec section: the attacker-realism axis run by the
/// `attackpipe` pipeline (recon → hammer → victim adjudication).
///
/// ```toml
/// [attacker]
/// knowledge = ["omniscient", "timing-recon", "blind"]  # or one string
/// recon_budget = 4096    # probe accesses for timing-recon
/// seed = 0xA77AC4        # attacker-side RNG (hex string past i64::MAX)
/// ```
///
/// In a sweep the section multiplies the cross product: one cell per
/// knowledge level. Omitting `knowledge` sweeps all three levels (the
/// Fig-9-style leaderboard). A single-experiment spec must name exactly
/// one level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttackerOptions {
    /// Knowledge levels to run, deduplicated in spec order; empty means
    /// "all levels" ([`AttackerKnowledge::ALL`]).
    pub knowledge: Vec<AttackerKnowledge>,
    /// Recon budget in probe accesses
    /// ([`AttackerConfig::DEFAULT_RECON_BUDGET`] when absent).
    pub recon_budget: Option<u64>,
    /// Attacker-side RNG seed ([`AttackerConfig::DEFAULT_SEED`] when
    /// absent).
    pub seed: Option<u64>,
}

impl AttackerOptions {
    fn from_value(v: &TomlValue) -> Result<Self, SpecError> {
        let TomlValue::Table(table) = v else {
            return Err(field_err("attacker", format!("expected a table, got {}", v.kind())));
        };
        let f = Fields { table };
        f.reject_unknown(&["knowledge", "recon_budget", "seed"])?;
        let mut knowledge = Vec::new();
        for name in f.str_list("knowledge")?.unwrap_or_default() {
            let level =
                AttackerKnowledge::by_key(&name).map_err(|m| field_err("attacker.knowledge", m))?;
            if !knowledge.contains(&level) {
                knowledge.push(level);
            }
        }
        let recon_budget = f.opt_u64("recon_budget")?;
        if recon_budget == Some(0) {
            return Err(field_err("attacker.recon_budget", "must be at least one probe access"));
        }
        Ok(Self { knowledge, recon_budget, seed: f.opt_u64("seed")? })
    }

    fn to_value(&self) -> TomlValue {
        let mut t = BTreeMap::new();
        if !self.knowledge.is_empty() {
            t.insert(
                "knowledge".into(),
                TomlValue::Arr(
                    self.knowledge.iter().map(|k| TomlValue::Str(k.key().into())).collect(),
                ),
            );
        }
        if let Some(b) = self.recon_budget {
            t.insert("recon_budget".into(), TomlValue::Int(b as i64));
        }
        if let Some(s) = self.seed {
            // Same hex-string escape hatch as the top-level seed.
            let v = match i64::try_from(s) {
                Ok(i) => TomlValue::Int(i),
                Err(_) => TomlValue::Str(format!("{s:#x}")),
            };
            t.insert("seed".into(), v);
        }
        TomlValue::Table(t)
    }

    /// One [`AttackerConfig`] per selected knowledge level (all levels
    /// when the spec named none), in descending-knowledge order for the
    /// default.
    pub fn configs(&self) -> Vec<AttackerConfig> {
        let levels: Vec<AttackerKnowledge> = if self.knowledge.is_empty() {
            AttackerKnowledge::ALL.to_vec()
        } else {
            self.knowledge.clone()
        };
        levels
            .into_iter()
            .map(|knowledge| AttackerConfig {
                knowledge,
                recon_budget: self.recon_budget.unwrap_or(AttackerConfig::DEFAULT_RECON_BUDGET),
                seed: self.seed.unwrap_or(AttackerConfig::DEFAULT_SEED),
            })
            .collect()
    }

    /// Applies the section to a single experiment; errors unless exactly
    /// one knowledge level is selected (a sweep handles the multi-level
    /// cross product).
    fn apply_single(&self, e: Experiment) -> Result<Experiment, SpecError> {
        let mut configs = self.configs();
        if configs.len() != 1 {
            return Err(field_err(
                "attacker.knowledge",
                format!(
                    "a single experiment takes exactly one knowledge level, got {} \
                     (use a sweep spec to compare levels)",
                    configs.len()
                ),
            ));
        }
        Ok(e.attacker(configs.remove(0)))
    }
}

fn check_workload(name: &str) -> Result<(), SpecError> {
    if workloads::spec_by_name(name).is_none() {
        return Err(SpecError::UnknownWorkload { name: name.to_string() });
    }
    Ok(())
}

/// Expands a workload list, resolving the `@quick` (9-workload subset) and
/// `@all` (full 57-workload catalog) tokens and validating every name.
pub fn expand_workloads(names: &[String]) -> Result<Vec<String>, SpecError> {
    let mut out = Vec::new();
    for name in names {
        match name.as_str() {
            "@quick" => out.extend(workloads::quick_subset().iter().map(|w| w.name.to_string())),
            "@all" => out.extend(workloads::catalog().iter().map(|w| w.name.to_string())),
            other => {
                check_workload(other)?;
                out.push(other.to_string());
            }
        }
    }
    if out.is_empty() {
        return Err(field_err("workloads", "must name at least one workload"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// ExperimentSpec
// ---------------------------------------------------------------------------

/// Numeric-coercing parameter equality: JSON cannot distinguish `5` from
/// `5.0`, so a spec that round-trips through JSON may come back with
/// integral floats as ints. The tracker schema coerces them identically at
/// build time; spec equality must treat them as equal too.
fn param_value_eq(a: &ParamValue, b: &ParamValue) -> bool {
    match (a, b) {
        (ParamValue::Int(i), ParamValue::Float(f)) | (ParamValue::Float(f), ParamValue::Int(i)) => {
            *i as f64 == *f
        }
        _ => a == b,
    }
}

fn param_map_eq(a: &BTreeMap<String, ParamValue>, b: &BTreeMap<String, ParamValue>) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((ka, va), (kb, vb))| ka == kb && param_value_eq(va, vb))
}

/// A declarative description of one experiment cell.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Benign workload name.
    pub workload: String,
    /// Tracker registry key (or display name / alias).
    pub tracker: String,
    /// Tracker parameter overrides (`[params]` table).
    pub params: BTreeMap<String, ParamValue>,
    /// Attack name (default `none`).
    pub attack: String,
    /// System-level options.
    pub options: SpecOptions,
    /// Telemetry section (`[telemetry]`), if present.
    pub telemetry: Option<TelemetryOptions>,
    /// Machine section (`[system]`), if present.
    pub system: Option<SystemOptions>,
    /// Attacker section (`[attacker]`), if present.
    pub attacker: Option<AttackerOptions>,
}

impl ExperimentSpec {
    /// A benign spec for one workload/tracker pair.
    pub fn new(workload: &str, tracker: &str) -> Self {
        Self {
            workload: workload.to_string(),
            tracker: tracker.to_string(),
            params: BTreeMap::new(),
            attack: "none".to_string(),
            options: SpecOptions::default(),
            telemetry: None,
            system: None,
            attacker: None,
        }
    }

    fn from_table(table: &BTreeMap<String, TomlValue>) -> Result<Self, SpecError> {
        let f = Fields { table };
        let mut allowed =
            vec!["workload", "tracker", "params", "attack", "telemetry", "system", "attacker"];
        allowed.extend(SpecOptions::KEYS);
        f.reject_unknown(&allowed)?;
        let params = match table.get("params") {
            None => BTreeMap::new(),
            Some(t) => param_table(t, "params")?,
        };
        Ok(Self {
            workload: f.req_str("workload")?,
            tracker: f.req_str("tracker")?,
            params,
            attack: f.opt_str("attack")?.unwrap_or_else(|| "none".to_string()),
            options: SpecOptions::from_fields(&f)?,
            telemetry: table.get("telemetry").map(TelemetryOptions::from_value).transpose()?,
            system: table.get("system").map(SystemOptions::from_value).transpose()?,
            attacker: table.get("attacker").map(AttackerOptions::from_value).transpose()?,
        })
    }

    fn to_table(&self) -> BTreeMap<String, TomlValue> {
        let mut t = BTreeMap::new();
        t.insert("workload".into(), TomlValue::Str(self.workload.clone()));
        t.insert("tracker".into(), TomlValue::Str(self.tracker.clone()));
        t.insert("attack".into(), TomlValue::Str(self.attack.clone()));
        self.options.write(&mut t);
        if !self.params.is_empty() {
            let params = self.params.iter().map(|(k, v)| (k.clone(), param_to_toml(v))).collect();
            t.insert("params".into(), TomlValue::Table(params));
        }
        if let Some(telemetry) = &self.telemetry {
            t.insert("telemetry".into(), telemetry.to_value());
        }
        if let Some(system) = &self.system {
            t.insert("system".into(), system.to_value());
        }
        if let Some(attacker) = &self.attacker {
            t.insert("attacker".into(), attacker.to_value());
        }
        t
    }

    /// Parses a TOML spec.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        Self::from_table(&toml::parse(input)?)
    }

    /// Renders the spec as TOML (parses back to an equal spec).
    pub fn to_toml(&self) -> String {
        toml::render(&self.to_table())
    }

    /// Parses a JSON spec.
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        match json_to_toml(&Json::parse(input)?, "spec")? {
            TomlValue::Table(t) => Self::from_table(&t),
            other => Err(field_err("spec", format!("expected an object, got {}", other.kind()))),
        }
    }

    /// Renders the spec as JSON (parses back to an equal spec).
    pub fn to_json(&self) -> Json {
        toml_to_json(&TomlValue::Table(self.to_table()))
    }

    /// Resolves the spec into a runnable [`Experiment`]: registry lookup,
    /// parameter validation, workload and attack checks — all before any
    /// simulation starts.
    pub fn to_experiment(&self) -> Result<Experiment, SpecError> {
        check_workload(&self.workload)?;
        let tracker = TrackerSel::by_key(&self.tracker)?.with_params(self.params.clone())?;
        let attack = parse_attack(&self.attack)?;
        let mut e = Experiment::new(&self.workload).tracker(tracker).attack(attack);
        if let Some(telemetry) = &self.telemetry {
            e = telemetry.apply(e);
        }
        if let Some(system) = &self.system {
            e = system.apply(e);
        }
        if let Some(attacker) = &self.attacker {
            e = attacker.apply_single(e)?;
        }
        Ok(self.options.apply(e))
    }

    /// Expands and runs the single experiment.
    pub fn run(&self) -> Result<ExperimentResult, SpecError> {
        Ok(self.to_experiment()?.run())
    }
}

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

impl PartialEq for ExperimentSpec {
    fn eq(&self, other: &Self) -> bool {
        self.workload == other.workload
            && self.tracker == other.tracker
            && self.attack == other.attack
            && self.options == other.options
            && self.telemetry == other.telemetry
            && self.system == other.system
            && self.attacker == other.attacker
            && param_map_eq(&self.params, &other.params)
    }
}

/// A declarative tracker × workload × attack sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (used for output file naming).
    pub name: String,
    /// Workload names (may include `@quick` / `@all`).
    pub workloads: Vec<String>,
    /// Tracker registry keys.
    pub trackers: Vec<String>,
    /// Per-tracker parameter overrides, keyed by canonical tracker key
    /// (`[params.<tracker>]` tables).
    pub params: BTreeMap<String, BTreeMap<String, ParamValue>>,
    /// Attack names (default: just `none`).
    pub attacks: Vec<String>,
    /// System-level options applied to every cell.
    pub options: SpecOptions,
    /// Telemetry section (`[telemetry]`) applied to every cell.
    pub telemetry: Option<TelemetryOptions>,
    /// Machine section (`[system]`) applied to every cell.
    pub system: Option<SystemOptions>,
    /// Run-cache section (`[cache]`): where cache-aware runners read
    /// results through.
    pub cache: Option<CacheOptions>,
    /// Attacker section (`[attacker]`): one cell per knowledge level.
    pub attacker: Option<AttackerOptions>,
    /// Profile section (`[profile]`): route through the profiler's
    /// profile → evaluate → attack workflow.
    pub profile: Option<ProfileOptions>,
}

impl PartialEq for SweepSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.workloads == other.workloads
            && self.trackers == other.trackers
            && self.attacks == other.attacks
            && self.options == other.options
            && self.telemetry == other.telemetry
            && self.system == other.system
            && self.cache == other.cache
            && self.attacker == other.attacker
            && self.profile == other.profile
            && self.params.len() == other.params.len()
            && self
                .params
                .iter()
                .zip(other.params.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && param_map_eq(va, vb))
    }
}

impl SweepSpec {
    /// An empty benign sweep under a name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            workloads: Vec::new(),
            trackers: Vec::new(),
            params: BTreeMap::new(),
            attacks: vec!["none".to_string()],
            options: SpecOptions::default(),
            telemetry: None,
            system: None,
            cache: None,
            attacker: None,
            profile: None,
        }
    }

    fn from_table(table: &BTreeMap<String, TomlValue>) -> Result<Self, SpecError> {
        let f = Fields { table };
        let mut allowed = vec![
            "name",
            "workloads",
            "trackers",
            "params",
            "attacks",
            "telemetry",
            "system",
            "cache",
            "attacker",
            "profile",
        ];
        allowed.extend(SpecOptions::KEYS);
        f.reject_unknown(&allowed)?;
        let mut params = BTreeMap::new();
        if let Some(t) = table.get("params") {
            match t {
                TomlValue::Table(entries) => {
                    for (tracker, overrides) in entries {
                        params.insert(
                            tracker.clone(),
                            param_table(overrides, &format!("params.{tracker}"))?,
                        );
                    }
                }
                other => {
                    return Err(field_err(
                        "params",
                        format!("expected per-tracker tables, got {}", other.kind()),
                    ))
                }
            }
        }
        Ok(Self {
            name: f.opt_str("name")?.unwrap_or_else(|| "sweep".to_string()),
            workloads: f
                .str_list("workloads")?
                .ok_or_else(|| field_err("workloads", "required"))?,
            trackers: f.str_list("trackers")?.ok_or_else(|| field_err("trackers", "required"))?,
            params,
            attacks: f.str_list("attacks")?.unwrap_or_else(|| vec!["none".to_string()]),
            options: SpecOptions::from_fields(&f)?,
            telemetry: table.get("telemetry").map(TelemetryOptions::from_value).transpose()?,
            system: table.get("system").map(SystemOptions::from_value).transpose()?,
            cache: table.get("cache").map(CacheOptions::from_value).transpose()?,
            attacker: table.get("attacker").map(AttackerOptions::from_value).transpose()?,
            profile: table.get("profile").map(ProfileOptions::from_value).transpose()?,
        })
    }

    fn to_table(&self) -> BTreeMap<String, TomlValue> {
        let mut t = BTreeMap::new();
        t.insert("name".into(), TomlValue::Str(self.name.clone()));
        t.insert(
            "workloads".into(),
            TomlValue::Arr(self.workloads.iter().cloned().map(TomlValue::Str).collect()),
        );
        t.insert(
            "trackers".into(),
            TomlValue::Arr(self.trackers.iter().cloned().map(TomlValue::Str).collect()),
        );
        t.insert(
            "attacks".into(),
            TomlValue::Arr(self.attacks.iter().cloned().map(TomlValue::Str).collect()),
        );
        self.options.write(&mut t);
        if let Some(telemetry) = &self.telemetry {
            t.insert("telemetry".into(), telemetry.to_value());
        }
        if let Some(system) = &self.system {
            t.insert("system".into(), system.to_value());
        }
        if let Some(cache) = &self.cache {
            t.insert("cache".into(), cache.to_value());
        }
        if let Some(attacker) = &self.attacker {
            t.insert("attacker".into(), attacker.to_value());
        }
        if let Some(profile) = &self.profile {
            t.insert("profile".into(), profile.to_value());
        }
        if !self.params.is_empty() {
            let params = self
                .params
                .iter()
                .map(|(tracker, overrides)| {
                    (
                        tracker.clone(),
                        TomlValue::Table(
                            overrides.iter().map(|(k, v)| (k.clone(), param_to_toml(v))).collect(),
                        ),
                    )
                })
                .collect();
            t.insert("params".into(), TomlValue::Table(params));
        }
        t
    }

    /// Parses a TOML spec.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        Self::from_table(&toml::parse(input)?)
    }

    /// Renders the spec as TOML (parses back to an equal spec).
    pub fn to_toml(&self) -> String {
        toml::render(&self.to_table())
    }

    /// Parses a JSON spec.
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        match json_to_toml(&Json::parse(input)?, "spec")? {
            TomlValue::Table(t) => Self::from_table(&t),
            other => Err(field_err("spec", format!("expected an object, got {}", other.kind()))),
        }
    }

    /// Renders the spec as JSON (parses back to an equal spec).
    pub fn to_json(&self) -> Json {
        toml_to_json(&TomlValue::Table(self.to_table()))
    }

    /// The resolved tracker selections, with per-tracker overrides
    /// attached. Every `params.<tracker>` table must resolve to a tracker
    /// named in `trackers` (so a typo'd section errors instead of being
    /// silently ignored).
    pub fn resolve_trackers(&self) -> Result<Vec<TrackerSel>, SpecError> {
        let mut sels = Vec::new();
        for name in &self.trackers {
            let mut sel = TrackerSel::by_key(name)?;
            // Overrides may be keyed by any accepted spelling of the
            // tracker's name; match on the canonical key.
            for (param_key, overrides) in &self.params {
                let canonical = crate::registry::resolve(param_key)?.key().to_string();
                if canonical == sel.key() {
                    sel = sel.with_params(overrides.clone())?;
                }
            }
            sels.push(sel);
        }
        for param_key in self.params.keys() {
            let canonical = crate::registry::resolve(param_key)?.key().to_string();
            if !sels.iter().any(|s| s.key() == canonical) {
                return Err(field_err(
                    &format!("params.{param_key}"),
                    "does not match any tracker in 'trackers'",
                ));
            }
        }
        Ok(sels)
    }

    /// Expands the full workload × tracker × attack cross product into
    /// runnable experiments (attacks vary fastest, then trackers), after
    /// validating every name and parameter — including a probe build per
    /// tracker, so parameter *combinations* the flat schema cannot express
    /// (e.g. an RCC entry count that is not a multiple of the way count)
    /// fail here instead of panicking inside every sweep worker.
    pub fn expand(&self) -> Result<Vec<Experiment>, SpecError> {
        let workloads = expand_workloads(&self.workloads)?;
        let trackers = self.resolve_trackers()?;
        if trackers.is_empty() {
            return Err(field_err("trackers", "must name at least one tracker"));
        }
        let probe_cfg = sim_core::config::SystemConfig::paper_baseline();
        let nrh = self.options.nrh.unwrap_or(probe_cfg.nrh);
        for tracker in &trackers {
            let probe = sim_core::registry::TrackerParams::new(nrh, probe_cfg.geometry, 0, 0)
                .with_values(tracker.params().clone());
            tracker.spec().build(&probe)?;
        }
        let attacks: Vec<AttackChoice> =
            self.attacks.iter().map(|a| parse_attack(a)).collect::<Result<_, _>>()?;
        if attacks.is_empty() {
            return Err(field_err("attacks", "must name at least one attack"));
        }
        // The `[attacker]` section fans out one cell per knowledge level
        // (innermost axis); without it every cell stays attacker-free.
        let attacker_cfgs: Vec<Option<AttackerConfig>> = match &self.attacker {
            None => vec![None],
            Some(a) => a.configs().into_iter().map(Some).collect(),
        };
        let mut out = Vec::with_capacity(
            workloads.len() * trackers.len() * attacks.len() * attacker_cfgs.len(),
        );
        // Cells that canonicalize identically (an alias tracker name next
        // to its primary key, `tailored` next to the pattern it resolves
        // to) are one cell and run once; the first occurrence wins.
        let mut seen = std::collections::BTreeSet::new();
        for workload in &workloads {
            for tracker in &trackers {
                for attack in &attacks {
                    for cfg in &attacker_cfgs {
                        let mut e =
                            Experiment::new(workload).tracker(tracker.clone()).attack(*attack);
                        if let Some(telemetry) = &self.telemetry {
                            e = telemetry.apply(e);
                        }
                        if let Some(system) = &self.system {
                            e = system.apply(e);
                        }
                        if let Some(cfg) = cfg {
                            e = e.attacker(*cfg);
                        }
                        let e = self.options.apply(e);
                        if crate::cache::cell_identity(&e).is_none_or(|id| seen.insert(id)) {
                            out.push(e);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Expands and runs the sweep in parallel. Individual cell failures
    /// are collected, not fatal.
    pub fn run(&self) -> Result<SweepReport, SpecError> {
        let experiments = self.expand()?;
        let mut results = Vec::new();
        let mut failures = Vec::new();
        for outcome in try_run_parallel(experiments) {
            match outcome {
                Ok(r) => results.push(r),
                Err(e) => failures.push(e),
            }
        }
        Ok(SweepReport { name: self.name.clone(), spec: self.clone(), results, failures })
    }
}

/// Outcome of [`SweepSpec::run`].
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's name.
    pub name: String,
    /// The spec that produced this report.
    pub spec: SweepSpec,
    /// Successful cells, in expansion order.
    pub results: Vec<ExperimentResult>,
    /// Failed cells.
    pub failures: Vec<SweepError>,
}

impl SweepReport {
    /// Aggregated per-cell telemetry: one row per result that carried a
    /// [`crate::metrics::RunTelemetry`] bundle (i.e. when the spec had a
    /// `[telemetry]` section with recorders). `None` when no cell
    /// recorded anything.
    pub fn telemetry_json(&self) -> Option<Json> {
        let rows: Vec<Json> = self
            .results
            .iter()
            .filter_map(|r| {
                r.telemetry.as_ref().map(|t| {
                    Json::obj([
                        ("workload", Json::str(&r.workload)),
                        ("tracker", Json::str(&r.tracker_name)),
                        ("attack", Json::str(&r.attack_name)),
                        ("telemetry", t.to_json()),
                    ])
                })
            })
            .collect();
        if rows.is_empty() {
            return None;
        }
        Some(Json::obj([("name", Json::str(&self.name)), ("cells", Json::Arr(rows))]))
    }

    /// Serializes the report — spec and all result rows — as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("spec", self.spec.to_json()),
            ("results", Json::Arr(self.results.iter().map(result_to_json).collect())),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("index", Json::count(f.index as u64)),
                                ("cell", Json::str(&f.cell)),
                                ("message", Json::str(&f.message)),
                                ("attempts", Json::count(u64::from(f.attempts))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Serializes one experiment result as a JSON row (the sweep export
/// format: identity, the paper's metric, and the headline counters).
pub fn result_to_json(r: &ExperimentResult) -> Json {
    Json::obj([
        ("workload", Json::str(&r.workload)),
        ("tracker", Json::str(&r.tracker_name)),
        ("attack", Json::str(&r.attack_name)),
        ("normalized_performance", Json::num(r.normalized_performance)),
        ("cycles", Json::count(r.run.cycles)),
        ("activations", Json::count(r.run.mem.activations)),
        ("mitigations", Json::count(r.run.mem.vrr_commands + r.run.mem.rfm_commands)),
        ("counter_ops", Json::count(r.run.mem.counter_reads + r.run.mem.counter_writes)),
        ("reset_sweeps", Json::count(r.run.mem.reset_sweeps)),
        ("llc_hit_rate", Json::num(r.run.llc_hit_rate)),
        ("energy_mj", Json::num(r.run.energy_mj)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG_SPEC: &str = r#"
# Fig. 9 quick matrix: DAPPER-S under the mapping-agnostic attacks.
name = "fig09-quick"
workloads = ["gcc_like", "mcf_like"]
trackers = ["dapper-s"]
attacks = ["streaming", "refresh"]
window_us = 100.0
isolate = true

[params.dapper-s]
group_size = 256
"#;

    #[test]
    fn sweep_parses_and_expands_the_cross_product() {
        let spec = SweepSpec::from_toml_str(FIG_SPEC).unwrap();
        assert_eq!(spec.name, "fig09-quick");
        let experiments = spec.expand().unwrap();
        assert_eq!(experiments.len(), 4, "2 workloads x 1 tracker x 2 attacks");
        assert!(experiments.iter().all(|e| e.tracker.key() == "dapper-s"));
        assert!(experiments.iter().all(|e| e.isolate_tracker_overhead));
        assert_eq!(experiments[0].workload, "gcc_like");
        assert_eq!(experiments[0].attack, AttackChoice::Specific(Attack::Streaming));
        assert_eq!(experiments[1].attack, AttackChoice::Specific(Attack::RefreshAttack));
    }

    #[test]
    fn expand_dedupes_cells_that_canonicalize_identically() {
        // `DAPPER_S` is an accepted spelling of `dapper-s`, and `benign`
        // of `none`: all four nominal cells canonicalize to one, which
        // must run once (regression: aliases used to simulate twice).
        let doc = "name = \"dedupe\"\nworkloads = [\"mcf_like\"]\n\
                   trackers = [\"dapper-s\", \"DAPPER_S\"]\nattacks = [\"none\", \"benign\"]\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let experiments = spec.expand().unwrap();
        assert_eq!(experiments.len(), 1, "aliases are the same cell");
        assert_eq!(experiments[0].tracker.key(), "dapper-s");
    }

    #[test]
    fn cache_section_round_trips_and_resolves() {
        let doc = "name = \"cached\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
                   [cache]\ndir = \"run_cache\"\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let cache = spec.cache.as_ref().expect("[cache] section present");
        assert_eq!(cache.effective_dir(), Some("run_cache"));
        let toml_back = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(toml_back, spec);
        let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(json_back, spec);
        // An explicit opt-out disables the directory but survives
        // round-trips.
        let off =
            SweepSpec::from_toml_str(&doc.replace("[cache]", "[cache]\nenabled = false")).unwrap();
        assert_eq!(off.cache.as_ref().unwrap().effective_dir(), None);
        assert_eq!(SweepSpec::from_toml_str(&off.to_toml()).unwrap(), off);
        // Unknown keys in the section are rejected loudly.
        let err = SweepSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n[cache]\ndyr = \"d\"\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("dyr"), "{err}");
    }

    #[test]
    fn profile_section_round_trips_and_validates() {
        let doc = "name = \"profiled\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydra\"]\n\
                   [profile]\nbank_groups = 2\nrow_groups = 3\nprobe_window_us = 40.0\n\
                   families = [\"hammer\", \"sweep\"]\ntop_k = 4\nbudget = 24\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let profile = spec.profile.as_ref().expect("[profile] section present");
        assert_eq!(profile.bank_groups, Some(2));
        assert_eq!(profile.row_groups, Some(3));
        assert_eq!(profile.probe_window_us, Some(40.0));
        assert_eq!(profile.families, vec!["hammer", "sweep"]);
        assert_eq!(profile.top_k, Some(4));
        assert_eq!(profile.budget, Some(24));
        assert_eq!(SweepSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
        assert_eq!(SweepSpec::from_json_str(&spec.to_json().render()).unwrap(), spec);
        // An empty section is valid (all defaults) and survives round-trips.
        let bare = SweepSpec::from_toml_str(
            "name = \"p\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n[profile]\n",
        )
        .unwrap();
        assert_eq!(bare.profile, Some(ProfileOptions::default()));
        assert_eq!(SweepSpec::from_toml_str(&bare.to_toml()).unwrap(), bare);
        // Unknown families and keys are rejected by name.
        let err = SweepSpec::from_toml_str(&doc.replace("\"sweep\"", "\"warp\"")).unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");
        let err = SweepSpec::from_toml_str(&doc.replace("top_k", "topk")).unwrap_err();
        assert!(err.to_string().contains("topk"), "{err}");
        // Degenerate grids are rejected.
        let err = SweepSpec::from_toml_str(&doc.replace("bank_groups = 2", "bank_groups = 0"))
            .unwrap_err();
        assert!(err.to_string().contains("bank_groups"), "{err}");
    }

    #[test]
    fn system_section_round_trips_and_applies() {
        let doc = "name = \"sharded\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
                   [system]\ngeometry = \"enlarged-8ch\"\nthreads = \"auto\"\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let system = spec.system.as_ref().expect("[system] section present");
        assert_eq!(system.geometry.as_deref(), Some("enlarged-8ch"));
        assert_eq!(system.threads, Some(Threads::Auto));
        assert_eq!(SweepSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
        assert_eq!(SweepSpec::from_json_str(&spec.to_json().render()).unwrap(), spec);
        let cells = spec.expand().unwrap();
        assert_eq!(cells[0].cfg.geometry.channels, 8, "preset reaches the cell config");
        assert_eq!(cells[0].cfg.threads, Threads::Auto);

        // Integer lane counts and alias geometry spellings parse; both
        // forms survive the round-trip.
        let doc = "workload = \"gcc_like\"\ntracker = \"none\"\n\
                   [system]\ngeometry = \"8ch\"\nthreads = 4\n";
        let spec = ExperimentSpec::from_toml_str(doc).unwrap();
        let system = spec.system.as_ref().unwrap();
        assert_eq!(system.geometry.as_deref(), Some("enlarged-8ch"), "canonical spelling");
        assert_eq!(system.threads, Some(Threads::N(4)));
        assert_eq!(ExperimentSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
        let e = spec.to_experiment().unwrap();
        assert_eq!(e.cfg.geometry.channels, 8);
        assert_eq!(e.cfg.threads, Threads::N(4));

        // Unknown keys and bad values are rejected with the key named.
        let err = ExperimentSpec::from_toml_str(
            "workload = \"gcc_like\"\ntracker = \"none\"\n[system]\nthreds = 2\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("threds"), "{err}");
        let err = ExperimentSpec::from_toml_str(
            "workload = \"gcc_like\"\ntracker = \"none\"\n[system]\ngeometry = \"16ch\"\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("enlarged-8ch"), "must list known presets: {err}");
        let err = ExperimentSpec::from_toml_str(
            "workload = \"gcc_like\"\ntracker = \"none\"\n[system]\nthreads = 0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("system.threads"), "{err}");
    }

    #[test]
    fn attacker_section_round_trips_and_expands() {
        let doc = "name = \"realism\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"dapper-s\"]\n\
                   attacks = [\"streaming\"]\n\
                   [attacker]\nknowledge = [\"omniscient\", \"TIMING_RECON\", \"blind\"]\n\
                   recon_budget = 2048\nseed = \"0xffffffffffffffff\"\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let attacker = spec.attacker.as_ref().expect("[attacker] section present");
        assert_eq!(
            attacker.knowledge,
            vec![
                AttackerKnowledge::Omniscient,
                AttackerKnowledge::TimingRecon,
                AttackerKnowledge::Blind
            ],
            "spellings normalize like registry keys"
        );
        assert_eq!(attacker.seed, Some(u64::MAX), "hex seeds past i64::MAX parse");
        assert_eq!(SweepSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
        assert_eq!(SweepSpec::from_json_str(&spec.to_json().render()).unwrap(), spec);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 3, "one cell per knowledge level");
        let cfg = cells[1].attacker.expect("attacker config reaches the cell");
        assert_eq!(cfg.knowledge, AttackerKnowledge::TimingRecon);
        assert_eq!(cfg.recon_budget, 2048);
        assert_eq!(cfg.seed, u64::MAX);

        // Omitting `knowledge` sweeps all three levels with defaults.
        let doc = "name = \"realism\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"dapper-s\"]\n\
                   [attacker]\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].attacker.unwrap().recon_budget, AttackerConfig::DEFAULT_RECON_BUDGET);

        // A single experiment takes exactly one level, and a string works
        // where a one-element list would.
        let doc = "workload = \"gcc_like\"\ntracker = \"dapper-s\"\nattack = \"streaming\"\n\
                   [attacker]\nknowledge = \"timing-recon\"\n";
        let spec = ExperimentSpec::from_toml_str(doc).unwrap();
        assert_eq!(ExperimentSpec::from_toml_str(&spec.to_toml()).unwrap(), spec);
        let e = spec.to_experiment().unwrap();
        assert_eq!(e.attacker.unwrap().knowledge, AttackerKnowledge::TimingRecon);
        let err = ExperimentSpec::from_toml_str(
            "workload = \"gcc_like\"\ntracker = \"dapper-s\"\n[attacker]\n",
        )
        .unwrap()
        .to_experiment()
        .unwrap_err();
        assert!(err.to_string().contains("exactly one knowledge level"), "{err}");
    }

    #[test]
    fn attacker_section_rejects_bad_fields() {
        // Unknown nested keys are named in the error.
        let err = SweepSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
             [attacker]\nrecon_buget = 100\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("recon_buget"), "{err}");
        // So are unknown knowledge levels and a zero budget.
        let err = SweepSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
             [attacker]\nknowledge = [\"clairvoyant\"]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("clairvoyant"), "{err}");
        let err = SweepSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
             [attacker]\nrecon_budget = 0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("recon_budget"), "{err}");
    }

    #[test]
    fn sweep_round_trips_through_toml_and_json() {
        let spec = SweepSpec::from_toml_str(FIG_SPEC).unwrap();
        let toml_back = SweepSpec::from_toml_str(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{e}\n---\n{}", spec.to_toml()));
        assert_eq!(toml_back, spec);
        let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(json_back, spec);
    }

    #[test]
    fn experiment_spec_round_trips_and_resolves() {
        let mut spec = ExperimentSpec::new("gcc_like", "hydra");
        spec.attack = "tailored".to_string();
        spec.params.insert("rcc_entries".to_string(), ParamValue::Int(512));
        spec.options.nrh = Some(250);
        spec.options.window_us = Some(100.0);
        spec.options.seed = Some(0xDA99E5);
        spec.options.engine = Some(Engine::Dense);
        let toml_back = ExperimentSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(toml_back, spec);
        let json_back = ExperimentSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(json_back, spec);
        let e = spec.to_experiment().unwrap();
        assert_eq!(e.tracker.key(), "hydra");
        assert_eq!(e.tracker.params()["rcc_entries"], ParamValue::Int(512));
        assert_eq!(e.cfg.nrh, 250);
        assert_eq!(e.engine, Engine::Dense);
    }

    #[test]
    fn unknown_tracker_key_errors_name_it() {
        let spec = SweepSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydrra\"]\n",
        )
        .unwrap();
        let err = spec.expand().unwrap_err();
        assert!(err.to_string().contains("'hydrra'"), "{err}");
        assert!(err.to_string().contains("hydra"), "must list known keys: {err}");
    }

    #[test]
    fn out_of_range_param_errors_name_the_key() {
        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"comet\"]\n\
                   [params.comet]\nmiss_rate_reset = 3.5\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert!(err.to_string().contains("'comet.miss_rate_reset'"), "{err}");
    }

    #[test]
    fn unknown_param_key_errors_name_it() {
        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydra\"]\n\
                   [params.hydra]\nrcc_entriez = 512\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert!(err.to_string().contains("'rcc_entriez'"), "{err}");
    }

    #[test]
    fn bad_param_combination_fails_at_expand_not_at_run() {
        // rcc_entries = 1000 is in schema range but not a multiple of the
        // default 32 ways: only the factory can reject it, and the probe
        // build in expand() must surface that before any worker panics.
        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydra\"]\n\
                   [params.hydra]\nrcc_entries = 1000\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert!(err.to_string().contains("'hydra.rcc_entries'"), "{err}");
        assert!(err.to_string().contains("rcc_ways"), "{err}");
    }

    #[test]
    fn integral_float_params_survive_the_json_round_trip() {
        // JSON cannot distinguish 5 from 5.0; the round-tripped spec must
        // still compare equal (schema coercion makes them build-identical).
        let mut spec = ExperimentSpec::new("gcc_like", "prac");
        spec.params.insert("rmw_tax_ns".to_string(), ParamValue::Float(5.0));
        let back = ExperimentSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(back, spec);
        let e = back.to_experiment().unwrap();
        assert_eq!(e.tracker.key(), "prac");
    }

    #[test]
    fn full_width_seeds_round_trip() {
        let mut spec = SweepSpec::new("seeds");
        spec.workloads = vec!["gcc_like".to_string()];
        spec.trackers = vec!["none".to_string()];
        spec.options.seed = Some(u64::MAX);
        let toml_text = spec.to_toml();
        let back = SweepSpec::from_toml_str(&toml_text)
            .unwrap_or_else(|e| panic!("{e}\n---\n{toml_text}"));
        assert_eq!(back.options.seed, Some(u64::MAX));
        let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(json_back.options.seed, Some(u64::MAX));
    }

    #[test]
    fn params_for_absent_tracker_error() {
        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydra\"]\n\
                   [params.comet]\nrat_entries = 64\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert!(err.to_string().contains("params.comet"), "{err}");
    }

    #[test]
    fn params_match_via_aliases() {
        // `[params.dapper]` (alias) attaches to the `dapper-h` tracker.
        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"dapper-h\"]\n\
                   [params.dapper]\ngroup_size = 128\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let experiments = spec.expand().unwrap();
        assert_eq!(experiments[0].tracker.params()["group_size"], ParamValue::Int(128));
    }

    #[test]
    fn unknown_workload_and_attack_error() {
        let doc =
            "name = \"x\"\nworkloads = [\"gcc_like\", \"not_a_workload\"]\ntrackers = [\"none\"]\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert_eq!(err, SpecError::UnknownWorkload { name: "not_a_workload".into() });

        let doc = "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\nattacks = [\"ddos\"]\n";
        let err = SweepSpec::from_toml_str(doc).unwrap().expand().unwrap_err();
        assert!(err.to_string().contains("'ddos'"), "{err}");
    }

    #[test]
    fn unknown_spec_fields_are_rejected() {
        let doc =
            "name = \"x\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\nwidnow_us = 5.0\n";
        let err = SweepSpec::from_toml_str(doc).unwrap_err();
        assert!(err.to_string().contains("widnow_us"), "{err}");
    }

    #[test]
    fn telemetry_section_round_trips_and_applies() {
        let doc = "name = \"t\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"hydra\"]\n\
                   attacks = [\"cache-thrash\"]\nwindow_us = 100.0\n\
                   [telemetry]\nwindow_us = 20.0\nrecorders = [\"time-series\", \"slowdown\"]\n\
                   out = \"transient\"\n";
        let spec = SweepSpec::from_toml_str(doc).unwrap();
        let t = spec.telemetry.as_ref().expect("telemetry section parsed");
        assert!(t.spec.time_series && t.spec.slowdown && !t.spec.mitigation_log);
        assert_eq!(t.spec.window_us, Some(20.0));
        assert_eq!(t.out.as_deref(), Some("transient"));
        // Round trip through TOML and JSON.
        let back = SweepSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(back, spec);
        let json_back = SweepSpec::from_json_str(&spec.to_json().render()).unwrap();
        assert_eq!(json_back, spec);
        // The section lands on every expanded experiment.
        let experiments = spec.expand().unwrap();
        assert!(experiments.iter().all(|e| e.telemetry.slowdown));
        assert!(experiments.iter().all(|e| e.telemetry.window_us == Some(20.0)));
    }

    #[test]
    fn telemetry_window_must_be_positive_at_parse_time() {
        // Regression: window_us = 0 used to pass --validate and panic
        // inside every sweep worker at build time.
        for bad in ["0.0", "-5.0"] {
            let doc = format!(
                "name = \"t\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
                 [telemetry]\nwindow_us = {bad}\nrecorders = [\"slowdown\"]\n"
            );
            let err = SweepSpec::from_toml_str(&doc).unwrap_err();
            assert!(err.to_string().contains("telemetry.window_us"), "{bad}: {err}");
        }
    }

    #[test]
    fn telemetry_section_rejects_unknown_recorders_and_fields() {
        let doc = "name = \"t\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
                   [telemetry]\nrecorders = [\"sloowdown\"]\n";
        let err = SweepSpec::from_toml_str(doc).unwrap_err();
        assert!(err.to_string().contains("sloowdown"), "{err}");
        assert!(err.to_string().contains("slowdown"), "must list known recorders: {err}");
        let doc = "name = \"t\"\nworkloads = [\"gcc_like\"]\ntrackers = [\"none\"]\n\
                   [telemetry]\nwidnow_us = 5.0\n";
        let err = SweepSpec::from_toml_str(doc).unwrap_err();
        assert!(err.to_string().contains("widnow_us"), "{err}");
    }

    #[test]
    fn telemetry_sweep_produces_per_cell_series() {
        let doc = "name = \"tiny-telemetry\"\nworkloads = [\"povray_like\"]\n\
                   trackers = [\"none\", \"para\"]\nwindow_us = 90.0\n\
                   [telemetry]\nwindow_us = 30.0\nrecorders = [\"all\"]\n";
        let report = SweepSpec::from_toml_str(doc).unwrap().run().unwrap();
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            let t = r.telemetry.as_ref().expect("every cell records");
            assert_eq!(t.windows.len(), 3, "90 us / 30 us windows");
            assert!(t.slowdown.is_some());
        }
        let telemetry = report.telemetry_json().expect("telemetry export present");
        let rendered = telemetry.render();
        assert!(rendered.contains("\"cells\""));
        assert!(Json::parse(&rendered).is_ok());
        // A recorder-free sweep exports nothing.
        let plain = SweepSpec::from_toml_str(
            "name = \"p\"\nworkloads = [\"povray_like\"]\ntrackers = [\"none\"]\nwindow_us = 60.0\n",
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(plain.telemetry_json().is_none());
    }

    #[test]
    fn workload_tokens_expand() {
        let quick = expand_workloads(&["@quick".to_string()]).unwrap();
        assert_eq!(quick.len(), workloads::quick_subset().len());
        let all = expand_workloads(&["@all".to_string()]).unwrap();
        assert_eq!(all.len(), workloads::catalog().len());
    }

    #[test]
    fn attack_names_parse() {
        assert_eq!(parse_attack("none").unwrap(), AttackChoice::None);
        assert_eq!(parse_attack("benign").unwrap(), AttackChoice::None);
        assert_eq!(parse_attack("tailored").unwrap(), AttackChoice::Tailored);
        assert_eq!(
            parse_attack("cache-thrash").unwrap(),
            AttackChoice::Specific(Attack::CacheThrash)
        );
        assert_eq!(parse_attack("refresh").unwrap(), AttackChoice::Specific(Attack::RefreshAttack));
        assert!(parse_attack("nope").is_err());
    }

    #[test]
    fn tiny_sweep_runs_end_to_end() {
        let doc =
            "name = \"tiny\"\nworkloads = [\"povray_like\"]\ntrackers = [\"none\", \"para\"]\n\
                   window_us = 60.0\n";
        let report = SweepSpec::from_toml_str(doc).unwrap().run().unwrap();
        assert_eq!(report.results.len(), 2);
        assert!(report.failures.is_empty());
        let json = report.to_json().render();
        assert!(json.contains("\"results\""));
        assert!(json.contains("povray_like"));
        // The export parses back as JSON.
        assert!(Json::parse(&json).is_ok());
    }
}
