//! Run-level metrics.

use serde::{Deserialize, Serialize};
use sim_core::stats::MemStats;
use sim_core::time::Cycle;

/// Everything measured in one simulation run.
///
/// `PartialEq` compares every field exactly (including the float-valued
/// ones): the dense and event-driven engines are required to agree
/// bit-for-bit, and the equivalence suite leans on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Tracker under test.
    pub tracker: String,
    /// Bus cycles simulated.
    pub cycles: Cycle,
    /// Per-core instructions retired.
    pub retired: Vec<u64>,
    /// Per-core core-clock cycles.
    pub core_cycles: Vec<u64>,
    /// Merged memory-system statistics across channels.
    pub mem: MemStats,
    /// LLC demand hit rate.
    pub llc_hit_rate: f64,
    /// Total DRAM energy in millijoules.
    pub energy_mj: f64,
    /// Ground-truth oracle outcome, if events were collected:
    /// (max victim disturbance, violations).
    pub oracle: Option<(u32, u64)>,
}

impl RunStats {
    /// IPC of core `i`.
    pub fn ipc(&self, i: usize) -> f64 {
        if self.core_cycles[i] == 0 {
            0.0
        } else {
            self.retired[i] as f64 / self.core_cycles[i] as f64
        }
    }

    /// Mean IPC over the given cores.
    pub fn mean_ipc(&self, cores: &[usize]) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        cores.iter().map(|&i| self.ipc(i)).sum::<f64>() / cores.len() as f64
    }
}

/// Normalized performance: mean over `benign` of IPC ratio vs. a reference
/// run (the paper's metric — performance of benign applications normalized
/// to the insecure baseline).
///
/// Cores whose reference IPC is zero carry no signal (the ratio is
/// undefined), so they are excluded from **both** the numerator and the
/// denominator; counting them only in the denominator would silently
/// deflate the metric. Returns 0.0 when no core has a usable reference.
pub fn normalized_performance(run: &RunStats, reference: &RunStats, benign: &[usize]) -> f64 {
    let mut sum = 0.0;
    let mut counted = 0u32;
    for &i in benign {
        let r = reference.ipc(i);
        if r > 0.0 {
            sum += run.ipc(i) / r;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / f64::from(counted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(retired: Vec<u64>, cycles: Vec<u64>) -> RunStats {
        RunStats {
            tracker: "t".into(),
            cycles: 1000,
            retired,
            core_cycles: cycles,
            mem: MemStats::default(),
            llc_hit_rate: 0.0,
            energy_mj: 0.0,
            oracle: None,
        }
    }

    #[test]
    fn ipc_and_normalization() {
        let run = stats(vec![500, 1000], vec![1000, 1000]);
        let reference = stats(vec![1000, 1000], vec![1000, 1000]);
        assert_eq!(run.ipc(0), 0.5);
        let norm = normalized_performance(&run, &reference, &[0, 1]);
        assert!((norm - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_benign_set_is_zero() {
        let run = stats(vec![1], vec![1]);
        assert_eq!(normalized_performance(&run, &run, &[]), 0.0);
    }

    #[test]
    fn zero_reference_ipc_cores_are_excluded_from_both_sides() {
        // Core 1 never retired in the reference: its ratio is undefined and
        // must not deflate the mean (regression: it used to stay in the
        // denominator while being skipped in the numerator).
        let run = stats(vec![500, 999], vec![1000, 1000]);
        let reference = stats(vec![1000, 0], vec![1000, 1000]);
        let norm = normalized_performance(&run, &reference, &[0, 1]);
        assert!((norm - 0.5).abs() < 1e-12, "got {norm}, want core 0's ratio alone");
        // All-zero reference: no usable core at all.
        let dead = stats(vec![0, 0], vec![1000, 1000]);
        assert_eq!(normalized_performance(&run, &dead, &[0, 1]), 0.0);
    }

    #[test]
    fn mean_ipc_subsets() {
        let run = stats(vec![100, 300, 500, 0], vec![1000, 1000, 1000, 1000]);
        assert!((run.mean_ipc(&[0, 1, 2]) - 0.3).abs() < 1e-12);
    }
}
