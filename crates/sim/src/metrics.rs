//! Run-level metrics and per-run telemetry bundles.

use serde::{Deserialize, Serialize};
use sim_core::json::Json;
use sim_core::stats::MemStats;
use sim_core::telemetry::{MitigationRecord, SlowdownTrace, WindowSample};
use sim_core::time::{cycles_to_us, Cycle};

/// Everything measured in one simulation run.
///
/// `PartialEq` compares every field exactly (including the float-valued
/// ones): the dense and event-driven engines are required to agree
/// bit-for-bit, and the equivalence suite leans on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Tracker under test.
    pub tracker: String,
    /// Bus cycles simulated.
    pub cycles: Cycle,
    /// Per-core instructions retired.
    pub retired: Vec<u64>,
    /// Per-core core-clock cycles.
    pub core_cycles: Vec<u64>,
    /// Merged memory-system statistics across channels.
    pub mem: MemStats,
    /// LLC demand hit rate.
    pub llc_hit_rate: f64,
    /// Total DRAM energy in millijoules.
    pub energy_mj: f64,
    /// Ground-truth oracle outcome, if events were collected:
    /// (max victim disturbance, violations).
    pub oracle: Option<(u32, u64)>,
}

impl RunStats {
    /// IPC of core `i`; 0.0 for an idle core **or an out-of-range index**
    /// (hand-written specs can easily name a core the config does not
    /// have; that must not panic deep inside a sweep worker).
    pub fn ipc(&self, i: usize) -> f64 {
        match (self.retired.get(i), self.core_cycles.get(i)) {
            (Some(&r), Some(&c)) if c > 0 => r as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// Mean IPC over the given cores.
    pub fn mean_ipc(&self, cores: &[usize]) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        cores.iter().map(|&i| self.ipc(i)).sum::<f64>() / cores.len() as f64
    }
}

/// Normalized performance: mean over `benign` of IPC ratio vs. a reference
/// run (the paper's metric — performance of benign applications normalized
/// to the insecure baseline).
///
/// Cores whose reference IPC is zero carry no signal (the ratio is
/// undefined), so they are excluded from **both** the numerator and the
/// denominator; counting them only in the denominator would silently
/// deflate the metric. Returns 0.0 when no core has a usable reference.
pub fn normalized_performance(run: &RunStats, reference: &RunStats, benign: &[usize]) -> f64 {
    let mut sum = 0.0;
    let mut counted = 0u32;
    for &i in benign {
        let r = reference.ipc(i);
        if r > 0.0 {
            sum += run.ipc(i) / r;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / f64::from(counted)
    }
}

/// Time-series observations collected alongside one run's [`RunStats`]
/// (present on an [`crate::experiment::ExperimentResult`] when the
/// experiment's [`crate::experiment::TelemetrySpec`] enabled recorders).
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Window length in bus cycles.
    pub window_len: Cycle,
    /// Per-window counter deltas (when the time-series recorder was on).
    pub windows: Vec<WindowSample>,
    /// Reference-run windows (when a per-window reference was available).
    pub reference_windows: Vec<WindowSample>,
    /// Per-window benign slowdown trace (when the slowdown recorder was
    /// on).
    pub slowdown: Option<SlowdownTrace>,
    /// Mitigation timeline (when the mitigation log was on).
    pub mitigations: Vec<MitigationRecord>,
}

impl RunTelemetry {
    /// Microseconds from run start until the attack's full effect (the
    /// worst slowdown window), if a slowdown trace was recorded.
    pub fn time_to_max_slowdown_us(&self) -> Option<f64> {
        self.slowdown.as_ref()?.time_to_max_slowdown().map(cycles_to_us)
    }

    /// Microseconds from the worst window until benign IPC recovers above
    /// `threshold` of the reference; `None` without a trace or without
    /// recovery.
    pub fn recovery_us(&self, threshold: f64) -> Option<f64> {
        self.slowdown.as_ref()?.recovery_window(threshold).map(cycles_to_us)
    }

    /// Serializes the bundle as a JSON object (window series, slowdown
    /// points, mitigation timeline — whatever was recorded).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("window_len_cycles", Json::count(self.window_len))];
        if !self.windows.is_empty() {
            pairs.push(("windows", Json::Arr(self.windows.iter().map(|w| w.to_json()).collect())));
        }
        if let Some(trace) = &self.slowdown {
            pairs.push(("slowdown", trace.to_json()));
            if let Some(t) = self.time_to_max_slowdown_us() {
                pairs.push(("time_to_max_slowdown_us", Json::num(t)));
            }
            match self.recovery_us(RECOVERY_THRESHOLD) {
                Some(r) => pairs.push(("recovery_us", Json::num(r))),
                None => pairs.push(("recovery_us", Json::Null)),
            }
        }
        if !self.mitigations.is_empty() {
            pairs.push((
                "mitigations",
                Json::Arr(self.mitigations.iter().map(MitigationRecord::to_json).collect()),
            ));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// The benign-IPC fraction of the reference above which a window counts
/// as "recovered" for [`RunTelemetry::recovery_us`] and the campaign
/// scoring columns.
pub const RECOVERY_THRESHOLD: f64 = 0.9;

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(retired: Vec<u64>, cycles: Vec<u64>) -> RunStats {
        RunStats {
            tracker: "t".into(),
            cycles: 1000,
            retired,
            core_cycles: cycles,
            mem: MemStats::default(),
            llc_hit_rate: 0.0,
            energy_mj: 0.0,
            oracle: None,
        }
    }

    #[test]
    fn ipc_and_normalization() {
        let run = stats(vec![500, 1000], vec![1000, 1000]);
        let reference = stats(vec![1000, 1000], vec![1000, 1000]);
        assert_eq!(run.ipc(0), 0.5);
        let norm = normalized_performance(&run, &reference, &[0, 1]);
        assert!((norm - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_benign_set_is_zero() {
        let run = stats(vec![1], vec![1]);
        assert_eq!(normalized_performance(&run, &run, &[]), 0.0);
    }

    #[test]
    fn zero_reference_ipc_cores_are_excluded_from_both_sides() {
        // Core 1 never retired in the reference: its ratio is undefined and
        // must not deflate the mean (regression: it used to stay in the
        // denominator while being skipped in the numerator).
        let run = stats(vec![500, 999], vec![1000, 1000]);
        let reference = stats(vec![1000, 0], vec![1000, 1000]);
        let norm = normalized_performance(&run, &reference, &[0, 1]);
        assert!((norm - 0.5).abs() < 1e-12, "got {norm}, want core 0's ratio alone");
        // All-zero reference: no usable core at all.
        let dead = stats(vec![0, 0], vec![1000, 1000]);
        assert_eq!(normalized_performance(&run, &dead, &[0, 1]), 0.0);
    }

    #[test]
    fn mean_ipc_subsets() {
        let run = stats(vec![100, 300, 500, 0], vec![1000, 1000, 1000, 1000]);
        assert!((run.mean_ipc(&[0, 1, 2]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_core_indices_read_as_zero() {
        // Regression: `ipc`/`mean_ipc` used to index `core_cycles[i]`
        // unchecked and panic on a core index past the config's count —
        // trivially reachable from a hand-written spec. They must read as
        // 0.0 instead.
        let run = stats(vec![500, 1000], vec![1000, 1000]);
        assert_eq!(run.ipc(2), 0.0);
        assert_eq!(run.ipc(usize::MAX), 0.0);
        assert!((run.mean_ipc(&[0, 7]) - 0.25).abs() < 1e-12, "absent core contributes 0");
        // Mismatched vector lengths (torn snapshots) are also safe.
        let torn = stats(vec![500, 1000, 9], vec![1000]);
        assert_eq!(torn.ipc(1), 0.0);
        // normalized_performance rides ipc(), so it inherits the guard.
        let reference = stats(vec![1000, 1000], vec![1000, 1000]);
        assert_eq!(normalized_performance(&run, &reference, &[5]), 0.0);
    }

    #[test]
    fn run_telemetry_scoring_and_export() {
        use sim_core::telemetry::Probe;
        let window = |index: u64, start, end, retired: u64| WindowSample {
            index,
            start,
            end,
            retired: vec![retired],
            core_cycles: vec![1000],
            mem: MemStats::default(),
        };
        let mut trace = SlowdownTrace::flat(vec![1.0], vec![0]);
        trace.on_window(&window(0, 0, 3200, 900)); // 0.9
        trace.on_window(&window(1, 3200, 6400, 400)); // 0.4 — the worst
        trace.on_window(&window(2, 6400, 9600, 950)); // recovered
        let t = RunTelemetry {
            window_len: 3200,
            windows: vec![window(0, 0, 3200, 900)],
            reference_windows: Vec::new(),
            slowdown: Some(trace),
            mitigations: Vec::new(),
        };
        // 6400 cycles at 3.2 GHz = 2 us to max slowdown, 1 us to recover.
        assert!((t.time_to_max_slowdown_us().unwrap() - 2.0).abs() < 1e-9);
        assert!((t.recovery_us(RECOVERY_THRESHOLD).unwrap() - 1.0).abs() < 1e-9);
        let json = t.to_json().render();
        assert!(json.contains("\"slowdown\""));
        assert!(json.contains("\"windows\""));
        assert!(sim_core::json::Json::parse(&json).is_ok());
    }
}
