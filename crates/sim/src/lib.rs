//! Full-system simulator for the DAPPER reproduction.
//!
//! Assembles the substrates — trace-driven cores (`cpu`), the shared LLC
//! (`llcache`), per-channel memory controllers (`memctrl`) over the DDR5
//! model (`dram`) — around a pluggable RowHammer tracker (`dapper` or
//! `trackers`), and provides the experiment runner every bench binary and
//! figure harness uses.
//!
//! Trackers are resolved through the open [`registry`]: every defense —
//! built-in or third-party — is constructible by string key plus a
//! parameter map, and the declarative [`spec`] layer turns TOML/JSON
//! experiment descriptions into parallel sweeps.
//!
//! # Quickstart
//!
//! ```no_run
//! use sim::experiment::{AttackChoice, Experiment};
//!
//! let summary = Experiment::quick("mcf_like")
//!     .tracker("dapper-h")
//!     .attack(AttackChoice::Tailored)
//!     .run();
//! println!(
//!     "{} under attack: {:.3} of baseline",
//!     summary.tracker_name, summary.normalized_performance
//! );
//! ```
//!
//! Parameter overrides ride the tracker selection (here: a quarter-size
//! row counter cache for a Hydra sensitivity point):
//!
//! ```no_run
//! use sim::Experiment;
//!
//! let r = Experiment::quick("mcf_like")
//!     .tracker("hydra")
//!     .tracker_param("rcc_entries", 1024)
//!     .run();
//! # let _ = r;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod journal;
pub mod metrics;
mod pool;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod system;
pub mod toml;

pub use cache::{cell_key, cell_key_with_attack_id, CacheRunSummary, CellKey, RunCache};
#[allow(deprecated)]
pub use experiment::TrackerChoice;
pub use experiment::{
    AttackChoice, AttackerConfig, AttackerKnowledge, CustomAttack, Experiment, ExperimentResult,
    TelemetrySpec, TrackerSel,
};
pub use journal::{JournalState, SweepJournal, SweepProgress};
pub use metrics::{normalized_performance, RunStats, RunTelemetry, RECOVERY_THRESHOLD};
pub use registry::{register_tracker, tracker_keys, with_registry};
pub use runner::{
    cell_label, parallel_map, run_parallel, try_run_parallel, try_run_parallel_cfg,
    try_run_parallel_observed, RetryPolicy, RunnerConfig, SweepError,
};
pub use sim_core::config::Threads;
pub use spec::{
    AttackerOptions, CacheOptions, ExperimentSpec, ProfileOptions, SpecError, SweepSpec,
    SystemOptions, TelemetryOptions, KNOWN_PROFILE_FAMILIES,
};
pub use system::{Engine, EngineStats, System};
