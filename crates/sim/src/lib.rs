//! Full-system simulator for the DAPPER reproduction.
//!
//! Assembles the substrates — trace-driven cores (`cpu`), the shared LLC
//! (`llcache`), per-channel memory controllers (`memctrl`) over the DDR5
//! model (`dram`) — around a pluggable RowHammer tracker (`dapper` or
//! `trackers`), and provides the experiment runner every bench binary and
//! figure harness uses.
//!
//! # Quickstart
//!
//! ```no_run
//! use sim::experiment::{AttackChoice, Experiment, TrackerChoice};
//!
//! let summary = Experiment::quick("mcf_like")
//!     .tracker(TrackerChoice::DapperH)
//!     .attack(AttackChoice::Tailored)
//!     .run();
//! println!(
//!     "{} under attack: {:.3} of baseline",
//!     summary.tracker_name, summary.normalized_performance
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod metrics;
pub mod runner;
pub mod system;

pub use experiment::{AttackChoice, CustomAttack, Experiment, ExperimentResult, TrackerChoice};
pub use metrics::RunStats;
pub use runner::{parallel_map, run_parallel, try_run_parallel, SweepError};
pub use system::{Engine, System};
