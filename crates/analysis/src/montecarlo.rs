//! Monte-Carlo validation of the analytical models against the real
//! DAPPER-H group mappings.

use dapper::{DapperConfig, DapperH};
use sim_core::rng::Xoshiro256;

/// Estimates the per-trial Mapping-Capturing success probability of
/// DAPPER-H empirically: draw a target row and two probe rows per trial and
/// test whether the probes cover both of the target's groups (the Eq. 6
/// event), using the actual LLBC mappings.
///
/// Returns `(hits, trials)`. With the baseline's 8K groups the true rate is
/// ~6e-8, so callers should use a reduced `group_size`/geometry or a large
/// trial count.
pub fn h_capture_trials(cfg: DapperConfig, trials: u64, seed: u64) -> (u64, u64) {
    let tracker = DapperH::new(cfg);
    let rows = cfg.geometry.rows_per_rank();
    let mut rng = Xoshiro256::seed_from(seed);
    let mut hits = 0;
    for _ in 0..trials {
        let target = rng.gen_range(rows);
        let (tg1, tg2) = tracker.groups_of(0, target);
        // Probing the target itself reveals nothing (it just re-primes the
        // counters); the attacker draws probes from the other rows.
        let mut draw = || loop {
            let r = rng.gen_range(rows);
            if r != target {
                break r;
            }
        };
        let p1 = draw();
        let p2 = draw();
        let (a1, a2) = tracker.groups_of(0, p1);
        let (b1, b2) = tracker.groups_of(0, p2);
        let table1_hit = a1 == tg1 || b1 == tg1;
        let table2_hit = a2 == tg2 || b2 == tg2;
        if table1_hit && table2_hit {
            hits += 1;
        }
    }
    (hits, trials)
}

/// Estimates the probability that a probe row shares a target's *single*
/// group for DAPPER-S (the Eq. 3 event), using real LLBC mappings.
pub fn s_capture_trials(cfg: DapperConfig, trials: u64, seed: u64) -> (u64, u64) {
    let tracker = dapper::DapperS::new(cfg);
    let rows = cfg.geometry.rows_per_rank();
    let mut rng = Xoshiro256::seed_from(seed);
    let mut hits = 0;
    for _ in 0..trials {
        let target = rng.gen_range(rows);
        let probe = loop {
            let r = rng.gen_range(rows);
            if r != target {
                break r;
            }
        };
        if tracker.group_of(0, target) == tracker.group_of(0, probe) {
            hits += 1;
        }
    }
    (hits, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::{dapper_h_success, dapper_s_capture};
    use sim_core::addr::Geometry;

    /// A small geometry (64K rows per rank) keeps probabilities measurable.
    fn small_cfg() -> DapperConfig {
        let mut cfg = DapperConfig::baseline(500, 0, 99);
        cfg.geometry = Geometry {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 16 * 1024,
            row_bytes: 8192,
        };
        cfg
    }

    #[test]
    fn s_hit_rate_matches_one_over_groups() {
        let cfg = small_cfg(); // 64K rows / 256 = 256 groups
        let (hits, trials) = s_capture_trials(cfg, 200_000, 1);
        let rate = hits as f64 / trials as f64;
        let expect = 1.0 / cfg.groups_per_rank() as f64;
        assert!((rate - expect).abs() < expect * 0.2, "rate {rate:.6} expect {expect:.6}");
    }

    #[test]
    fn h_hit_rate_matches_equation_six() {
        let cfg = small_cfg();
        let n = cfg.groups_per_rank(); // 256
        let (hits, trials) = h_capture_trials(cfg, 2_000_000, 2);
        let rate = hits as f64 / trials as f64;
        let nf = n as f64;
        let expect = {
            let one = 1.0 - (1.0 - 1.0 / nf) * (1.0 - 1.0 / nf);
            one * one
        };
        assert!((rate - expect).abs() < expect * 0.25, "rate {rate:.2e} expect {expect:.2e}");
    }

    #[test]
    fn h_is_quadratically_harder_than_s() {
        // The headline security claim in miniature: capturing both groups
        // is ~the square of capturing one.
        let cfg = small_cfg();
        let n = cfg.groups_per_rank() as f64;
        let s = dapper_s_capture(36_000.0, 48.0, 2.5, 250, cfg.groups_per_rank());
        let h = dapper_h_success(cfg.groups_per_rank(), 250, 616_000.0);
        assert!(h.p_trial < 8.0 / (n * n) && h.p_trial > 1.0 / (n * n));
        assert!(s.p_success > h.p_trial);
    }
}
