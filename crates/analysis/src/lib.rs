//! Security, storage, and energy analysis for the DAPPER reproduction.
//!
//! * [`equations`] — the paper's analytical security models: Equations 1-5
//!   (DAPPER-S Mapping-Capturing attack, Table II) and Equations 6-7
//!   (DAPPER-H attack success probability, Section VI-C).
//! * [`oracle`] — a ground-truth RowHammer auditor: replays the memory
//!   controller's event log and checks that no victim row ever accumulates
//!   N_RH neighbour activations without an intervening refresh.
//! * [`storage`] — Table III assembly from every tracker's
//!   `storage_overhead()`.
//! * [`montecarlo`] — Monte-Carlo validation of the analytical models
//!   against the real DAPPER-H group mappings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equations;
pub mod montecarlo;
pub mod oracle;
pub mod storage;

pub use equations::{dapper_h_success, dapper_s_capture, DapperSCapture, HSuccess};
pub use oracle::{Oracle, OracleProbe};
