//! The paper's analytical security models (Equations 1-7).

/// Result of the DAPPER-S Mapping-Capturing analysis for one reset period
/// (one row of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DapperSCapture {
    /// The reset period analysed, in nanoseconds.
    pub t_reset_ns: f64,
    /// Eq. 1: time left for probing after priming the target row.
    pub t_left_ns: f64,
    /// Eq. 2: activations issuable in the remaining time.
    pub act_max: f64,
    /// Eq. 3: probability one reset period captures a mapping pair.
    pub p_success: f64,
    /// Eq. 4: expected attack iterations.
    pub at_iter: f64,
    /// Eq. 5: expected time to capture one mapping pair, in nanoseconds.
    pub at_time_ns: f64,
}

/// Evaluates Equations 1-5 for DAPPER-S (Section V-D).
///
/// * `t_reset_ns` — key refresh period.
/// * `t_rc_ns` — row cycle time (48 ns).
/// * `t_rrd_ns` — ACT-to-ACT spacing the attacker achieves (2.5 ns for
///   DDR5-6400 tRRD_S).
/// * `nm` — mitigation threshold (N_RH / 2).
/// * `n_rg` — number of row groups in the randomized space (8K for the
///   baseline's 2M rows / 256).
///
/// # Example
///
/// ```
/// use analysis::equations::dapper_s_capture;
///
/// // Table II, first row: a 36 us reset period is captured in a couple of
/// // iterations.
/// let r = dapper_s_capture(36_000.0, 48.0, 2.5, 250, 8192);
/// assert!(r.at_iter < 4.0);
/// // 12 us leaves almost no probe time: hundreds of iterations.
/// let r12 = dapper_s_capture(12_000.0, 48.0, 2.5, 250, 8192);
/// assert!(r12.at_iter > 100.0);
/// ```
pub fn dapper_s_capture(
    t_reset_ns: f64,
    t_rc_ns: f64,
    t_rrd_ns: f64,
    nm: u32,
    n_rg: u64,
) -> DapperSCapture {
    // Eq. 1: prime the target row to N_M - 1, then probe with what's left.
    let t_left_ns = (t_reset_ns - t_rc_ns * (nm as f64 - 1.0)).max(0.0);
    // Eq. 2.
    let act_max = t_left_ns / t_rrd_ns;
    // Eq. 3: each probe hits the target group with probability 1/N_RG.
    let p = 1.0 / n_rg as f64;
    let p_success = 1.0 - (1.0 - p).powf(act_max);
    // Eq. 4 and Eq. 5.
    let at_iter = if p_success > 0.0 { 1.0 / p_success } else { f64::INFINITY };
    let at_time_ns = t_reset_ns * at_iter;
    DapperSCapture { t_reset_ns, t_left_ns, act_max, p_success, at_iter, at_time_ns }
}

/// Result of the DAPPER-H Mapping-Capturing analysis (Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HSuccess {
    /// Eq. 6: per-trial success probability.
    pub p_trial: f64,
    /// Trials an attacker fits into one tREFW.
    pub trials: f64,
    /// Eq. 7: probability of capturing a mapping within one tREFW.
    pub p_window: f64,
}

/// Evaluates Equations 6-7 for DAPPER-H.
///
/// A trial primes the target row to N_M - 2 and probes with two random
/// rows; it succeeds only if the probes cover *both* of the target's
/// groups. The bit-vector limits the attacker to the single-bank activation
/// budget (~616K per tREFW), and each trial costs a full N_M priming, so
/// `trials = acts_per_bank_per_window / nm`.
///
/// # Example
///
/// ```
/// use analysis::equations::dapper_h_success;
///
/// let r = dapper_h_success(8192, 250, 616_000.0);
/// // Section VI-C: prevention with 99.99% probability per window.
/// assert!(r.p_window < 1.9e-4);
/// assert!(r.p_window > 0.2e-4);
/// ```
pub fn dapper_h_success(n_rg: u64, nm: u32, acts_per_bank_per_window: f64) -> HSuccess {
    let n = n_rg as f64;
    // Eq. 6: both groups must be hit by one of the two probe rows.
    let hit_one_table = 1.0 - (1.0 - 1.0 / n) * (1.0 - 1.0 / n);
    let p_trial = hit_one_table * hit_one_table;
    let trials = acts_per_bank_per_window / nm as f64;
    // Eq. 7.
    let p_window = 1.0 - (1.0 - p_trial).powf(trials);
    HSuccess { p_trial, trials, p_window }
}

/// Table II rows at the paper's three reset periods, with DDR5-6400 timing.
pub fn table_two() -> Vec<DapperSCapture> {
    [36_000.0, 24_000.0, 12_000.0]
        .into_iter()
        .map(|t| dapper_s_capture(t, 48.0, 2.5, 250, 8192))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorter_reset_periods_are_harder_to_capture() {
        let rows = table_two();
        assert!(rows[0].at_iter < rows[1].at_iter);
        assert!(rows[1].at_iter < rows[2].at_iter);
        // The cliff between 24 us and 12 us is orders of magnitude.
        assert!(rows[2].at_iter / rows[1].at_iter > 50.0);
    }

    #[test]
    fn twelve_us_still_captured_in_milliseconds() {
        // The punchline of Table II: even an impractically short 12 us
        // reset is broken in single-digit milliseconds.
        let r = dapper_s_capture(12_000.0, 48.0, 2.5, 250, 8192);
        assert!(r.at_time_ns < 10.0e6, "{} ns", r.at_time_ns);
        assert!(r.at_time_ns > 1.0e6);
    }

    #[test]
    fn priming_consumes_almost_the_whole_12us_period() {
        let r = dapper_s_capture(12_000.0, 48.0, 2.5, 250, 8192);
        assert!(r.t_left_ns < 100.0, "{}", r.t_left_ns);
    }

    #[test]
    fn impossible_when_reset_shorter_than_priming() {
        let r = dapper_s_capture(10_000.0, 48.0, 2.5, 250, 8192);
        assert_eq!(r.t_left_ns, 0.0);
        assert!(r.at_iter.is_infinite());
    }

    #[test]
    fn h_per_trial_probability_matches_closed_form() {
        let r = dapper_h_success(8192, 250, 616_000.0);
        let n = 8192.0f64;
        let expect = (2.0 / n - 1.0 / (n * n)).powi(2);
        assert!((r.p_trial - expect).abs() < 1e-15);
    }

    #[test]
    fn h_gives_four_nines_prevention() {
        let r = dapper_h_success(8192, 250, 616_000.0);
        assert!((r.trials - 2464.0).abs() < 1.0);
        // 99.99% prevention = at most ~0.015% success.
        assert!(r.p_window < 2.0e-4, "{}", r.p_window);
    }

    #[test]
    fn h_scales_with_group_count() {
        let small = dapper_h_success(1024, 250, 616_000.0);
        let large = dapper_h_success(16_384, 250, 616_000.0);
        assert!(small.p_window > large.p_window * 50.0);
    }
}
