//! Table III: storage and die-area overhead per 32 GB DDR5 channel.

use dapper::{DapperConfig, DapperH, DapperS};
use sim_core::tracker::{RowHammerTracker, StorageOverhead};
use trackers::{Abacus, BlockHammer, Comet, Hydra, Para, Prac, Pride, Start, TrackerParams};

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Tracker name.
    pub name: &'static str,
    /// SRAM/CAM cost.
    pub overhead: StorageOverhead,
    /// Whether the paper's Table III includes this tracker.
    pub in_paper_table: bool,
}

/// Builds the storage comparison at a given threshold (Table III uses
/// N_RH = 500).
pub fn storage_table(nrh: u32) -> Vec<StorageRow> {
    let p = TrackerParams::baseline(nrh, 0, 0);
    let d = DapperConfig::baseline(nrh, 0, 0);
    let rows: Vec<(&'static str, StorageOverhead, bool)> = vec![
        ("Hydra", Hydra::new(p).storage_overhead(), true),
        ("CoMeT", Comet::new(p).storage_overhead(), true),
        ("START", Start::new(p).storage_overhead(), true),
        ("ABACUS", Abacus::new(p).storage_overhead(), true),
        ("DAPPER-S", DapperS::new(d).storage_overhead(), false),
        ("DAPPER-H", DapperH::new(d).storage_overhead(), true),
        ("BlockHammer", BlockHammer::new(p).storage_overhead(), false),
        ("PARA", Para::new(p).storage_overhead(), false),
        ("PrIDE", Pride::new(p).storage_overhead(), false),
        ("PRAC", Prac::new(p).storage_overhead(), false),
    ];
    rows.into_iter()
        .map(|(name, overhead, in_paper_table)| StorageRow { name, overhead, in_paper_table })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str) -> StorageRow {
        storage_table(500).into_iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn matches_paper_table_three() {
        assert!((row("Hydra").overhead.sram_kb() - 56.5).abs() < 1.0);
        assert!((row("CoMeT").overhead.sram_kb() - 112.0).abs() < 1.0);
        assert!((row("CoMeT").overhead.cam_kb() - 23.0).abs() < 1.0);
        assert!((row("START").overhead.sram_kb() - 4.0).abs() < 0.5);
        assert!((row("ABACUS").overhead.sram_kb() - 19.3).abs() < 1.0);
        assert!((row("ABACUS").overhead.cam_kb() - 7.5).abs() < 0.5);
        assert!((row("DAPPER-H").overhead.sram_kb() - 96.0).abs() < 0.5);
    }

    #[test]
    fn dapper_h_area_is_mid_pack() {
        // Paper: 0.075 mm^2, below CoMeT's 0.139, above START's 0.003.
        let d = row("DAPPER-H").overhead.die_area_mm2();
        assert!(d < row("CoMeT").overhead.die_area_mm2());
        assert!(d > row("START").overhead.die_area_mm2());
    }

    #[test]
    fn dapper_s_is_sixth_the_cost_of_h() {
        let s = row("DAPPER-S").overhead.sram_kb();
        let h = row("DAPPER-H").overhead.sram_kb();
        assert!((h / s - 6.0).abs() < 0.3, "S={s} H={h}");
    }
}
