//! Ground-truth RowHammer auditor.
//!
//! The oracle ignores every tracker data structure and recomputes, from the
//! raw command stream, the **disturbance** each victim row has accumulated:
//! one unit per activation of a neighbour within the blast radius, cleared
//! when the victim is refreshed (mitigation, reset sweep, or the periodic
//! tREFW auto-refresh). A defense is sound iff no victim's disturbance ever
//! reaches N_RH.

use sim_core::addr::{DramAddr, Geometry};
use sim_core::events::MemEvent;
use sim_core::telemetry::Probe;
use sim_core::tracker::ResetScope;
use std::any::Any;
use std::collections::HashMap;

/// Per-channel RowHammer disturbance auditor.
#[derive(Debug)]
pub struct Oracle {
    nrh: u32,
    blast_radius: u8,
    geom: Geometry,
    /// Disturbance per victim row, keyed by (rank, flat bank, row).
    damage: HashMap<u64, u32>,
    /// Highest disturbance each victim row ever reached between
    /// refreshes. Refreshes clear `damage` but never `peak`: a tracker is
    /// judged on the worst exposure it *allowed*, so the flip adjudicator
    /// can compare each victim's peak against its own HC threshold after
    /// the run.
    peak: HashMap<u64, u32>,
    max_damage: u32,
    violations: u64,
    acts_seen: u64,
}

impl Oracle {
    /// Creates an auditor for one channel.
    pub fn new(nrh: u32, blast_radius: u8, geom: Geometry) -> Self {
        Self {
            nrh,
            blast_radius,
            geom,
            damage: HashMap::new(),
            peak: HashMap::new(),
            max_damage: 0,
            violations: 0,
            acts_seen: 0,
        }
    }

    fn key(&self, rank: u8, bank_flat: u32, row: u32) -> u64 {
        ((rank as u64 * self.geom.banks_per_rank() as u64 + bank_flat as u64) << 32) | row as u64
    }

    /// Feeds one controller event.
    pub fn observe(&mut self, ev: &MemEvent) {
        match ev {
            MemEvent::Activate { addr, .. } => self.on_activate(addr),
            MemEvent::VictimsRefreshed { aggressor, blast_radius, .. } => {
                self.refresh_victims(aggressor, *blast_radius);
            }
            MemEvent::SweepRefreshed { scope, .. } => self.on_sweep(*scope),
            MemEvent::RefreshWindowEnd { .. } => self.damage.clear(),
            // Read completions carry no disturbance; only ACTs hammer.
            MemEvent::ReadCompleted { .. } => {}
        }
    }

    fn on_activate(&mut self, addr: &DramAddr) {
        self.acts_seen += 1;
        let bank = self.geom.bank_in_rank(addr);
        let br = self.blast_radius as i64;
        for d in 1..=br {
            for v in [addr.row as i64 - d, addr.row as i64 + d] {
                if v < 0 || v >= self.geom.rows_per_bank as i64 {
                    continue;
                }
                let key = self.key(addr.rank, bank, v as u32);
                let c = self.damage.entry(key).or_insert(0);
                *c += 1;
                if *c > self.max_damage {
                    self.max_damage = *c;
                }
                if *c == self.nrh {
                    self.violations += 1;
                }
                let p = self.peak.entry(key).or_insert(0);
                *p = (*p).max(*c);
            }
        }
    }

    fn refresh_victims(&mut self, aggressor: &DramAddr, blast_radius: u8) {
        let bank = self.geom.bank_in_rank(aggressor);
        for d in 1..=blast_radius as i64 {
            for v in [aggressor.row as i64 - d, aggressor.row as i64 + d] {
                if v < 0 || v >= self.geom.rows_per_bank as i64 {
                    continue;
                }
                let key = self.key(aggressor.rank, bank, v as u32);
                self.damage.remove(&key);
            }
        }
    }

    fn on_sweep(&mut self, scope: ResetScope) {
        match scope {
            ResetScope::Channel { .. } => self.damage.clear(),
            ResetScope::Rank { rank, .. } => {
                self.damage.retain(|&k, _| {
                    let bank_global = k >> 32;
                    let r = bank_global / self.geom.banks_per_rank() as u64;
                    r != rank as u64
                });
            }
        }
    }

    /// Maximum disturbance any victim accumulated without a refresh.
    pub fn max_damage(&self) -> u32 {
        self.max_damage
    }

    /// Number of rows whose disturbance reached N_RH (0 for a sound
    /// defense).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Activations audited.
    pub fn activations(&self) -> u64 {
        self.acts_seen
    }

    /// Highest disturbance the given row ever reached between refreshes
    /// (0 if it was never a victim). Unlike the live `damage` counters,
    /// peaks survive mitigations: a victim that was pushed to 400 and
    /// then refreshed reports a peak of 400, which is what decides
    /// whether a cell with an HC threshold below 400 flipped.
    pub fn peak_damage_at(&self, addr: &DramAddr) -> u32 {
        let bank = self.geom.bank_in_rank(addr);
        self.peak.get(&self.key(addr.rank, bank, addr.row)).copied().unwrap_or(0)
    }
}

/// The oracle as a telemetry client: one [`Oracle`] per channel behind a
/// single [`Probe`] that subscribes to the memory-event stream. The
/// auditor gets no privileged hook into the controller anymore — it rides
/// the same registered-sink API every other event probe uses.
#[derive(Debug)]
pub struct OracleProbe {
    oracles: Vec<Oracle>,
}

impl OracleProbe {
    /// One auditor per channel.
    pub fn new(nrh: u32, blast_radius: u8, geom: Geometry) -> Self {
        Self { oracles: (0..geom.channels).map(|_| Oracle::new(nrh, blast_radius, geom)).collect() }
    }

    /// The per-channel auditors.
    pub fn oracles(&self) -> &[Oracle] {
        &self.oracles
    }

    /// Maximum disturbance any victim accumulated on any channel.
    pub fn max_damage(&self) -> u32 {
        self.oracles.iter().map(Oracle::max_damage).max().unwrap_or(0)
    }

    /// Total rows whose disturbance reached N_RH across channels.
    pub fn violations(&self) -> u64 {
        self.oracles.iter().map(Oracle::violations).sum()
    }

    /// Highest disturbance the given row (on its channel) ever reached
    /// between refreshes; 0 for an out-of-range channel.
    pub fn peak_damage_at(&self, addr: &DramAddr) -> u32 {
        self.oracles.get(addr.channel as usize).map_or(0, |o| o.peak_damage_at(addr))
    }
}

impl Probe for OracleProbe {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, channel: u8, ev: &MemEvent) {
        if let Some(o) = self.oracles.get_mut(channel as usize) {
            o.observe(ev);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(bank_group: u8, bank: u8, row: u32) -> DramAddr {
        DramAddr::new(0, 0, bank_group, bank, row, 0)
    }

    fn activate(o: &mut Oracle, a: DramAddr) {
        o.observe(&MemEvent::Activate { addr: a, cycle: 0 });
    }

    #[test]
    fn unmitigated_hammering_violates() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..100 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 2, "both neighbours of row 500 flip");
        assert_eq!(o.max_damage(), 100);
    }

    #[test]
    fn mitigation_resets_victims() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        o.observe(&MemEvent::VictimsRefreshed {
            aggressor: addr(0, 0, 500),
            blast_radius: 1,
            cycle: 0,
        });
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 0);
        assert_eq!(o.max_damage(), 99);
    }

    #[test]
    fn double_sided_pressure_accumulates() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        // Rows 499 and 501 both disturb row 500.
        for _ in 0..50 {
            activate(&mut o, addr(0, 0, 499));
            activate(&mut o, addr(0, 0, 501));
        }
        assert_eq!(o.max_damage(), 100);
        assert_eq!(o.violations(), 1, "row 500 reaches N_RH");
    }

    #[test]
    fn sweep_clears_scope_only() {
        let g = Geometry::paper_baseline();
        let mut o = Oracle::new(100, 1, g);
        for _ in 0..60 {
            activate(&mut o, addr(0, 0, 500)); // rank 0
            o.observe(&MemEvent::Activate { addr: DramAddr::new(0, 1, 0, 0, 500, 0), cycle: 0 });
        }
        o.observe(&MemEvent::SweepRefreshed {
            scope: ResetScope::Rank { channel: 0, rank: 0 },
            cycle: 0,
        });
        for _ in 0..60 {
            activate(&mut o, addr(0, 0, 500));
            o.observe(&MemEvent::Activate { addr: DramAddr::new(0, 1, 0, 0, 500, 0), cycle: 0 });
        }
        // Rank 0 was cleared mid-way (60 + 60 < 2x100); rank 1 was not.
        assert_eq!(o.violations(), 2, "only rank 1's two victims flip");
    }

    #[test]
    fn window_end_clears_everything() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        o.observe(&MemEvent::RefreshWindowEnd { cycle: 0 });
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 0);
    }

    #[test]
    fn blast_radius_two_reaches_further() {
        let mut o = Oracle::new(1000, 2, Geometry::paper_baseline());
        for _ in 0..10 {
            activate(&mut o, addr(0, 0, 500));
        }
        // Rows 498, 499, 501, 502 each took 10 damage.
        assert_eq!(o.max_damage(), 10);
        assert_eq!(o.activations(), 10);
    }

    #[test]
    fn edge_rows_do_not_wrap() {
        let mut o = Oracle::new(10, 1, Geometry::paper_baseline());
        for _ in 0..20 {
            activate(&mut o, addr(0, 0, 0)); // row 0: only row 1 is a victim
        }
        assert_eq!(o.violations(), 1);
    }

    #[test]
    fn blast_radius_clips_at_row_zero_boundary() {
        let g = Geometry::paper_baseline();
        let mut o = Oracle::new(1000, 2, g);
        for _ in 0..10 {
            activate(&mut o, addr(0, 0, 1)); // victims: 0, 2, 3 — never -1
        }
        assert_eq!(o.peak_damage_at(&addr(0, 0, 0)), 10);
        assert_eq!(o.peak_damage_at(&addr(0, 0, 2)), 10);
        assert_eq!(o.peak_damage_at(&addr(0, 0, 3)), 10);
        // The would-be victim below row 0 must not alias onto any real row
        // (in particular not the top of this bank or a neighbouring bank).
        assert_eq!(o.peak_damage_at(&addr(0, 0, g.rows_per_bank - 1)), 0);
        assert_eq!(o.peak_damage_at(&addr(0, 1, g.rows_per_bank - 1)), 0);
    }

    #[test]
    fn blast_radius_clips_at_max_row_boundary() {
        let g = Geometry::paper_baseline();
        let top = g.rows_per_bank - 1;
        let mut o = Oracle::new(1000, 2, g);
        for _ in 0..10 {
            activate(&mut o, addr(0, 0, top)); // victims: top-1, top-2 only
        }
        assert_eq!(o.peak_damage_at(&addr(0, 0, top - 1)), 10);
        assert_eq!(o.peak_damage_at(&addr(0, 0, top - 2)), 10);
        assert_eq!(o.peak_damage_at(&addr(0, 0, top)), 0, "the aggressor is not its own victim");
        // No wrap onto row 0/1 of this bank or the next bank.
        assert_eq!(o.peak_damage_at(&addr(0, 0, 0)), 0);
        assert_eq!(o.peak_damage_at(&addr(0, 1, 0)), 0);
        assert_eq!(o.max_damage(), 10);
    }

    #[test]
    fn disturbance_does_not_propagate_across_banks() {
        let g = Geometry::paper_baseline();
        let mut o = Oracle::new(50, 1, g);
        for _ in 0..60 {
            activate(&mut o, addr(0, 0, 500));
        }
        // Same row index in a different bank / bank group / rank: silent.
        assert_eq!(o.peak_damage_at(&addr(0, 1, 499)), 0);
        assert_eq!(o.peak_damage_at(&addr(1, 0, 501)), 0);
        assert_eq!(o.peak_damage_at(&DramAddr::new(0, 1, 0, 0, 499, 0)), 0);
        assert_eq!(o.peak_damage_at(&addr(0, 0, 499)), 60);
        assert_eq!(o.violations(), 2, "only the true neighbours in bank (0,0) flip");
    }

    #[test]
    fn peaks_survive_mitigation_while_damage_resets() {
        let mut o = Oracle::new(1000, 1, Geometry::paper_baseline());
        for _ in 0..400 {
            activate(&mut o, addr(0, 0, 500));
        }
        o.observe(&MemEvent::VictimsRefreshed {
            aggressor: addr(0, 0, 500),
            blast_radius: 1,
            cycle: 0,
        });
        for _ in 0..150 {
            activate(&mut o, addr(0, 0, 500));
        }
        // Live damage restarted at 0 after the refresh; the peak keeps the
        // pre-mitigation exposure.
        assert_eq!(o.peak_damage_at(&addr(0, 0, 499)), 400);
        assert_eq!(o.peak_damage_at(&addr(0, 0, 501)), 400);
        assert_eq!(o.violations(), 0, "never reached N_RH in one stretch");
    }

    #[test]
    fn read_completions_carry_no_disturbance() {
        use sim_core::addr::PhysAddr;
        use sim_core::req::SourceId;
        let mut o = Oracle::new(10, 1, Geometry::paper_baseline());
        for _ in 0..50 {
            o.observe(&MemEvent::ReadCompleted {
                source: SourceId(3),
                phys: PhysAddr(0x4000),
                arrival: 0,
                cycle: 40,
            });
        }
        assert_eq!(o.max_damage(), 0);
        assert_eq!(o.activations(), 0);
    }

    #[test]
    fn heterogeneous_hc_thresholds_adjudicate_per_row() {
        // Two victims with the same exposure but different per-row HC
        // thresholds: the weak cell flips, the strong one does not. This is
        // the per-row adjudication contract the attackpipe victim stage
        // builds on.
        let mut o = Oracle::new(10_000, 1, Geometry::paper_baseline());
        for _ in 0..300 {
            activate(&mut o, addr(0, 0, 500)); // victims 499 and 501, peak 300
        }
        let victims = [(addr(0, 0, 499), 250u32), (addr(0, 0, 501), 350u32)];
        let flips: Vec<bool> = victims.iter().map(|(a, hc)| o.peak_damage_at(a) >= *hc).collect();
        assert_eq!(flips, vec![true, false]);
    }

    #[test]
    fn oracle_probe_routes_peak_queries_by_channel() {
        let g = Geometry::paper_baseline();
        let mut p = OracleProbe::new(1000, 1, g);
        let a1 = DramAddr::new(1, 0, 0, 0, 500, 0);
        for _ in 0..20 {
            p.on_event(1, &MemEvent::Activate { addr: a1, cycle: 0 });
        }
        assert_eq!(p.peak_damage_at(&DramAddr::new(1, 0, 0, 0, 501, 0)), 20);
        assert_eq!(p.peak_damage_at(&DramAddr::new(0, 0, 0, 0, 501, 0)), 0, "other channel");
        assert_eq!(p.peak_damage_at(&DramAddr::new(7, 0, 0, 0, 501, 0)), 0, "out of range");
        assert_eq!(p.max_damage(), 20);
    }
}
