//! Ground-truth RowHammer auditor.
//!
//! The oracle ignores every tracker data structure and recomputes, from the
//! raw command stream, the **disturbance** each victim row has accumulated:
//! one unit per activation of a neighbour within the blast radius, cleared
//! when the victim is refreshed (mitigation, reset sweep, or the periodic
//! tREFW auto-refresh). A defense is sound iff no victim's disturbance ever
//! reaches N_RH.

use sim_core::addr::{DramAddr, Geometry};
use sim_core::events::MemEvent;
use sim_core::telemetry::Probe;
use sim_core::tracker::ResetScope;
use std::any::Any;
use std::collections::HashMap;

/// Per-channel RowHammer disturbance auditor.
#[derive(Debug)]
pub struct Oracle {
    nrh: u32,
    blast_radius: u8,
    geom: Geometry,
    /// Disturbance per victim row, keyed by (rank, flat bank, row).
    damage: HashMap<u64, u32>,
    max_damage: u32,
    violations: u64,
    acts_seen: u64,
}

impl Oracle {
    /// Creates an auditor for one channel.
    pub fn new(nrh: u32, blast_radius: u8, geom: Geometry) -> Self {
        Self {
            nrh,
            blast_radius,
            geom,
            damage: HashMap::new(),
            max_damage: 0,
            violations: 0,
            acts_seen: 0,
        }
    }

    fn key(&self, rank: u8, bank_flat: u32, row: u32) -> u64 {
        ((rank as u64 * self.geom.banks_per_rank() as u64 + bank_flat as u64) << 32) | row as u64
    }

    /// Feeds one controller event.
    pub fn observe(&mut self, ev: &MemEvent) {
        match ev {
            MemEvent::Activate { addr, .. } => self.on_activate(addr),
            MemEvent::VictimsRefreshed { aggressor, blast_radius, .. } => {
                self.refresh_victims(aggressor, *blast_radius);
            }
            MemEvent::SweepRefreshed { scope, .. } => self.on_sweep(*scope),
            MemEvent::RefreshWindowEnd { .. } => self.damage.clear(),
        }
    }

    fn on_activate(&mut self, addr: &DramAddr) {
        self.acts_seen += 1;
        let bank = self.geom.bank_in_rank(addr);
        let br = self.blast_radius as i64;
        for d in 1..=br {
            for v in [addr.row as i64 - d, addr.row as i64 + d] {
                if v < 0 || v >= self.geom.rows_per_bank as i64 {
                    continue;
                }
                let key = self.key(addr.rank, bank, v as u32);
                let c = self.damage.entry(key).or_insert(0);
                *c += 1;
                if *c > self.max_damage {
                    self.max_damage = *c;
                }
                if *c == self.nrh {
                    self.violations += 1;
                }
            }
        }
    }

    fn refresh_victims(&mut self, aggressor: &DramAddr, blast_radius: u8) {
        let bank = self.geom.bank_in_rank(aggressor);
        for d in 1..=blast_radius as i64 {
            for v in [aggressor.row as i64 - d, aggressor.row as i64 + d] {
                if v < 0 || v >= self.geom.rows_per_bank as i64 {
                    continue;
                }
                let key = self.key(aggressor.rank, bank, v as u32);
                self.damage.remove(&key);
            }
        }
    }

    fn on_sweep(&mut self, scope: ResetScope) {
        match scope {
            ResetScope::Channel { .. } => self.damage.clear(),
            ResetScope::Rank { rank, .. } => {
                self.damage.retain(|&k, _| {
                    let bank_global = k >> 32;
                    let r = bank_global / self.geom.banks_per_rank() as u64;
                    r != rank as u64
                });
            }
        }
    }

    /// Maximum disturbance any victim accumulated without a refresh.
    pub fn max_damage(&self) -> u32 {
        self.max_damage
    }

    /// Number of rows whose disturbance reached N_RH (0 for a sound
    /// defense).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Activations audited.
    pub fn activations(&self) -> u64 {
        self.acts_seen
    }
}

/// The oracle as a telemetry client: one [`Oracle`] per channel behind a
/// single [`Probe`] that subscribes to the memory-event stream. The
/// auditor gets no privileged hook into the controller anymore — it rides
/// the same registered-sink API every other event probe uses.
#[derive(Debug)]
pub struct OracleProbe {
    oracles: Vec<Oracle>,
}

impl OracleProbe {
    /// One auditor per channel.
    pub fn new(nrh: u32, blast_radius: u8, geom: Geometry) -> Self {
        Self { oracles: (0..geom.channels).map(|_| Oracle::new(nrh, blast_radius, geom)).collect() }
    }

    /// The per-channel auditors.
    pub fn oracles(&self) -> &[Oracle] {
        &self.oracles
    }

    /// Maximum disturbance any victim accumulated on any channel.
    pub fn max_damage(&self) -> u32 {
        self.oracles.iter().map(Oracle::max_damage).max().unwrap_or(0)
    }

    /// Total rows whose disturbance reached N_RH across channels.
    pub fn violations(&self) -> u64 {
        self.oracles.iter().map(Oracle::violations).sum()
    }
}

impl Probe for OracleProbe {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, channel: u8, ev: &MemEvent) {
        if let Some(o) = self.oracles.get_mut(channel as usize) {
            o.observe(ev);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(bank_group: u8, bank: u8, row: u32) -> DramAddr {
        DramAddr::new(0, 0, bank_group, bank, row, 0)
    }

    fn activate(o: &mut Oracle, a: DramAddr) {
        o.observe(&MemEvent::Activate { addr: a, cycle: 0 });
    }

    #[test]
    fn unmitigated_hammering_violates() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..100 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 2, "both neighbours of row 500 flip");
        assert_eq!(o.max_damage(), 100);
    }

    #[test]
    fn mitigation_resets_victims() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        o.observe(&MemEvent::VictimsRefreshed {
            aggressor: addr(0, 0, 500),
            blast_radius: 1,
            cycle: 0,
        });
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 0);
        assert_eq!(o.max_damage(), 99);
    }

    #[test]
    fn double_sided_pressure_accumulates() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        // Rows 499 and 501 both disturb row 500.
        for _ in 0..50 {
            activate(&mut o, addr(0, 0, 499));
            activate(&mut o, addr(0, 0, 501));
        }
        assert_eq!(o.max_damage(), 100);
        assert_eq!(o.violations(), 1, "row 500 reaches N_RH");
    }

    #[test]
    fn sweep_clears_scope_only() {
        let g = Geometry::paper_baseline();
        let mut o = Oracle::new(100, 1, g);
        for _ in 0..60 {
            activate(&mut o, addr(0, 0, 500)); // rank 0
            o.observe(&MemEvent::Activate { addr: DramAddr::new(0, 1, 0, 0, 500, 0), cycle: 0 });
        }
        o.observe(&MemEvent::SweepRefreshed {
            scope: ResetScope::Rank { channel: 0, rank: 0 },
            cycle: 0,
        });
        for _ in 0..60 {
            activate(&mut o, addr(0, 0, 500));
            o.observe(&MemEvent::Activate { addr: DramAddr::new(0, 1, 0, 0, 500, 0), cycle: 0 });
        }
        // Rank 0 was cleared mid-way (60 + 60 < 2x100); rank 1 was not.
        assert_eq!(o.violations(), 2, "only rank 1's two victims flip");
    }

    #[test]
    fn window_end_clears_everything() {
        let mut o = Oracle::new(100, 1, Geometry::paper_baseline());
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        o.observe(&MemEvent::RefreshWindowEnd { cycle: 0 });
        for _ in 0..99 {
            activate(&mut o, addr(0, 0, 500));
        }
        assert_eq!(o.violations(), 0);
    }

    #[test]
    fn blast_radius_two_reaches_further() {
        let mut o = Oracle::new(1000, 2, Geometry::paper_baseline());
        for _ in 0..10 {
            activate(&mut o, addr(0, 0, 500));
        }
        // Rows 498, 499, 501, 502 each took 10 damage.
        assert_eq!(o.max_damage(), 10);
        assert_eq!(o.activations(), 10);
    }

    #[test]
    fn edge_rows_do_not_wrap() {
        let mut o = Oracle::new(10, 1, Geometry::paper_baseline());
        for _ in 0..20 {
            activate(&mut o, addr(0, 0, 0)); // row 0: only row 1 is a victim
        }
        assert_eq!(o.violations(), 1);
    }
}
