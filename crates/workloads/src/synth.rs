//! Synthetic trace generation from a [`WorkloadSpec`].

use crate::catalog::WorkloadSpec;
use cpu::{TraceEntry, TraceSource};
use sim_core::addr::PhysAddr;
use sim_core::rng::{Xoshiro256, Zipf};

/// A deterministic, endless memory-access stream matching a workload's
/// intensity, locality, footprint, and reuse skew.
///
/// The generator walks a per-core physical segment: with probability
/// `row_locality` the next access stays in the current 8 KB row (sequential
/// lines — the open-page-friendly pattern); otherwise it jumps to another
/// row of the footprint, uniformly or Zipf-skewed.
#[derive(Debug)]
pub struct SyntheticTrace {
    rng: Xoshiro256,
    /// Mean bubbles between accesses (1000 / apki).
    mean_gap: f64,
    row_locality: f64,
    write_frac: f64,
    /// Footprint in 8 KB rows.
    rows: u64,
    /// Base physical address of this core's segment.
    base: u64,
    zipf: Option<Zipf>,
    cur_row: u64,
    cur_line: u64,
}

/// Lines per 8 KB row.
const LINES_PER_ROW: u64 = 128;

impl SyntheticTrace {
    /// Creates the stream for `core` (each core gets a disjoint segment so
    /// homogeneous mixes do not alias).
    pub fn new(spec: &WorkloadSpec, core: usize, seed: u64) -> Self {
        let rows = (spec.footprint_mib * 1024 * 1024 / 8192).max(4);
        // Segments stride the paper's 64 GB space; 16 GiB apart per core.
        let base = core as u64 * (16 << 30);
        let rng = Xoshiro256::seed_from(
            seed ^ (core as u64) << 48 ^ spec.name.len() as u64 ^ spec.apki.to_bits(),
        );
        Self {
            rng,
            mean_gap: 1000.0 / spec.apki,
            row_locality: spec.row_locality,
            write_frac: spec.write_frac,
            rows,
            base,
            zipf: spec.zipf_theta.map(|t| Zipf::new(rows, t)),
            cur_row: 0,
            cur_line: 0,
        }
    }

    fn pick_row(&mut self) -> u64 {
        match &self.zipf {
            Some(z) => {
                // Scramble the Zipf rank so hot rows scatter over the space.
                let rank = z.sample(&mut self.rng);
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.rows
            }
            None => self.rng.gen_range(self.rows),
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next_entry(&mut self) -> TraceEntry {
        // Geometric gap with mean ~ 1000/apki, capped to keep tails sane.
        let p = 1.0 / (1.0 + self.mean_gap);
        let bubbles = self.rng.gen_geometric(p, 50_000) as u32;

        if self.rng.gen_bool(self.row_locality) {
            self.cur_line = (self.cur_line + 1) % LINES_PER_ROW;
        } else {
            self.cur_row = self.pick_row();
            self.cur_line = self.rng.gen_range(LINES_PER_ROW);
        }
        let addr = self.base + (self.cur_row * LINES_PER_ROW + self.cur_line) * 64;
        let is_write = self.rng.gen_bool(self.write_frac);
        TraceEntry { bubbles, addr: PhysAddr(addr), is_write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::spec_by_name;

    fn collect(name: &str, n: usize) -> Vec<TraceEntry> {
        let spec = spec_by_name(name).unwrap();
        let mut t = SyntheticTrace::new(spec, 0, 99);
        (0..n).map(|_| t.next_entry()).collect()
    }

    #[test]
    fn intensity_tracks_apki() {
        let entries = collect("mcf_like", 20_000);
        let insts: u64 = entries.iter().map(|e| e.bubbles as u64 + 1).sum();
        let apki = 20_000.0 * 1000.0 / insts as f64;
        let want = spec_by_name("mcf_like").unwrap().apki;
        assert!((apki - want).abs() / want < 0.15, "apki {apki} want {want}");
    }

    #[test]
    fn footprint_is_respected() {
        let spec = spec_by_name("povray_like").unwrap(); // 3 MiB
        let mut t = SyntheticTrace::new(spec, 0, 1);
        let limit = 3 * 1024 * 1024;
        for _ in 0..50_000 {
            let e = t.next_entry();
            assert!(e.addr.0 < limit, "{:#x} outside footprint", e.addr.0);
        }
    }

    #[test]
    fn locality_produces_sequential_lines() {
        let entries = collect("libquantum_like", 10_000); // locality 0.85
        let sequential = entries.windows(2).filter(|w| w[1].addr.0 == w[0].addr.0 + 64).count();
        assert!(sequential as f64 / entries.len() as f64 > 0.6, "sequential fraction {sequential}");
    }

    #[test]
    fn write_fraction_matches_spec() {
        let entries = collect("lbm_like", 20_000); // 45% writes
        let writes = entries.iter().filter(|e| e.is_write).count() as f64;
        let frac = writes / entries.len() as f64;
        assert!((frac - 0.45).abs() < 0.03, "{frac}");
    }

    #[test]
    fn cores_get_disjoint_segments() {
        let spec = spec_by_name("gcc_like").unwrap();
        let mut a = SyntheticTrace::new(spec, 0, 5);
        let mut b = SyntheticTrace::new(spec, 1, 5);
        for _ in 0..1000 {
            let ea = a.next_entry();
            let eb = b.next_entry();
            assert!(ea.addr.0 < (16 << 30));
            assert!(eb.addr.0 >= (16 << 30) && eb.addr.0 < (32 << 30));
        }
    }

    #[test]
    fn zipf_workloads_concentrate_reuse() {
        let entries = collect("ycsb_a_like", 30_000);
        let mut counts = std::collections::HashMap::new();
        for e in &entries {
            *counts.entry(e.addr.0 >> 13).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // A uniform draw over 150K rows would almost never repeat 30 times.
        assert!(max > 30, "hottest row only {max} touches");
    }

    #[test]
    fn deterministic_across_instances() {
        let spec = spec_by_name("milc_like").unwrap();
        let mut a = SyntheticTrace::new(spec, 2, 42);
        let mut b = SyntheticTrace::new(spec, 2, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_entry(), b.next_entry());
        }
    }
}
