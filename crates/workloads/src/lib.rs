//! Synthetic workloads and Perf-Attack generators.
//!
//! The paper evaluates 57 applications from SPEC2006, SPEC2017, TPC,
//! Hadoop, MediaBench, and YCSB. Those traces are not redistributable, so
//! [`catalog`](mod@catalog) provides 57 synthetic stand-ins whose *memory behaviour*
//! (accesses per kilo-instruction, row locality, footprint, write fraction,
//! reuse skew) is calibrated per suite from published characterisations —
//! e.g. `mcf_like` and `parest_like` are the memory-monsters the paper
//! calls out (429.mcf, 510.parest). See DESIGN.md for the substitution
//! rationale.
//!
//! [`attacks`] implements the RH-Tracker-based Performance Attacks of
//! Section III-B plus the mapping-agnostic streaming/refresh attacks of
//! Section V-E, each as a [`cpu::TraceSource`] an attacker core runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod catalog;
pub mod synth;

pub use attacks::{Attack, AttackTrace};
pub use catalog::{catalog, quick_subset, spec_by_name, Suite, WorkloadSpec};
pub use synth::SyntheticTrace;
