//! RH-Tracker-based Performance-Attack generators (paper Section III-B and
//! Section V-E).
//!
//! Each attack is a [`cpu::TraceSource`] run by the attacker core. All
//! attacks issue back-to-back loads (`bubbles = 0`). The RowHammer attacks
//! are marked [`Attack::bypasses_llc`] — real attackers evict with
//! `clflush`/conflict sets; the simulator models that by skipping the LLC
//! for the attacker's accesses. The cache-thrashing attack goes *through*
//! the LLC, since polluting it is the point.

use cpu::{TraceEntry, TraceSource};
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::rng::Xoshiro256;

/// The attack patterns of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// Classic cache thrashing: stream a huge footprint through the LLC.
    CacheThrash,
    /// Hydra attack (Fig. 2a): cycle through more rows than the RCC holds,
    /// forcing a counter fetch + writeback per activation.
    HydraRccThrash,
    /// START attack (Fig. 2b): stream across all DRAM rows, overflowing the
    /// reserved-LLC counter region.
    StartStream,
    /// CoMeT attack (Fig. 2c): rapidly activate more aggressors than the
    /// 128-entry RAT, forcing early reset sweeps.
    CometRatOverflow,
    /// ABACuS attack (Fig. 2d): sequentially activate distinct row IDs
    /// across banks to overflow the shared spillover counter.
    AbacusSpillover,
    /// Mapping-agnostic streaming attack on DAPPER (Section V-E): activate
    /// every row of the rank, banks interleaved.
    Streaming,
    /// Mapping-agnostic refresh attack on DAPPER (Section V-E): hammer a
    /// few rows per bank to drag group counters to the threshold.
    RefreshAttack,
}

impl Attack {
    /// Every attack pattern, in paper order. Campaign matrices and the
    /// attacklab compatibility layer iterate this.
    pub fn all() -> [Attack; 7] {
        [
            Attack::CacheThrash,
            Attack::HydraRccThrash,
            Attack::StartStream,
            Attack::CometRatOverflow,
            Attack::AbacusSpillover,
            Attack::Streaming,
            Attack::RefreshAttack,
        ]
    }

    /// The attack tailored to a given tracker name (Figs. 1, 3, 4, 5).
    pub fn tailored_for(tracker: &str) -> Attack {
        match tracker {
            "Hydra" => Attack::HydraRccThrash,
            "START" => Attack::StartStream,
            "CoMeT" => Attack::CometRatOverflow,
            "ABACUS" => Attack::AbacusSpillover,
            "DAPPER-S" | "DAPPER-H" => Attack::RefreshAttack,
            _ => Attack::CacheThrash,
        }
    }

    /// Whether the attacker's accesses skip the LLC (clflush-style).
    pub fn bypasses_llc(self) -> bool {
        !matches!(self, Attack::CacheThrash)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Attack::CacheThrash => "cache-thrash",
            Attack::HydraRccThrash => "hydra-rcc",
            Attack::StartStream => "start-stream",
            Attack::CometRatOverflow => "comet-rat",
            Attack::AbacusSpillover => "abacus-spill",
            Attack::Streaming => "streaming",
            Attack::RefreshAttack => "refresh",
        }
    }

    /// Builds the trace source for this attack.
    pub fn trace(self, geom: Geometry, seed: u64) -> AttackTrace {
        AttackTrace::new(self, geom, seed)
    }
}

impl std::fmt::Display for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The state machine realising an [`Attack`] as an endless trace.
#[derive(Debug)]
pub struct AttackTrace {
    attack: Attack,
    geom: Geometry,
    step: u64,
    /// Aggressor set for the fixed-set attacks.
    aggressors: Vec<DramAddr>,
}

impl AttackTrace {
    fn new(attack: Attack, geom: Geometry, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from(seed ^ 0xA77AC4);
        let aggressors = match attack {
            Attack::HydraRccThrash => {
                // Hydra groups are 128 consecutive row indices. Target 128
                // whole groups (16K rows) spread across rank 0's banks: the
                // priming phase flips every group to per-row mode cheaply,
                // then cycling 16K rows >> 4K RCC entries thrashes the RCC.
                let mut rows = Vec::with_capacity(128 * 128);
                let banks = geom.banks_per_rank() as u64;
                for g in 0..128u64 {
                    let bank = g % banks;
                    let group_base = bank * geom.rows_per_bank as u64 + (g / banks) * 128 + 4096;
                    for r in 0..128u64 {
                        rows.push(geom.addr_from_rank_row_index(0, 0, group_base + r));
                    }
                }
                rng.shuffle(&mut rows);
                rows
            }
            Attack::CometRatOverflow => {
                // 192 aggressors > 128 RAT entries (paper Section III-B),
                // all in rank 0 (the RAT is per rank), spread across banks
                // so tRRD rather than tRC paces the attack.
                Self::spread_rows_in_rank(&geom, 192, 0, &mut rng)
            }
            Attack::RefreshAttack => {
                // Two hot rows per bank (open-page policy needs a conflict
                // pair to generate ACTs).
                let mut rows = Vec::new();
                let banks = geom.banks_per_rank();
                for rank in 0..geom.ranks {
                    for b in 0..banks {
                        for r in [1000u32, 3000u32] {
                            let idx = b as u64 * geom.rows_per_bank as u64 + r as u64;
                            rows.push(geom.addr_from_rank_row_index(0, rank, idx));
                        }
                    }
                }
                rows
            }
            _ => Vec::new(),
        };
        let _ = rng;
        Self { attack, geom, step: 0, aggressors }
    }

    fn spread_rows_in_rank(
        geom: &Geometry,
        n: usize,
        rank: u8,
        rng: &mut Xoshiro256,
    ) -> Vec<DramAddr> {
        let banks = geom.banks_per_rank() as u64;
        (0..n as u64)
            .map(|i| {
                let bank = i % banks;
                // Keep clear of the reserved top rows.
                let row = rng.gen_range(geom.rows_per_bank as u64 - 64);
                geom.addr_from_rank_row_index(0, rank, bank * geom.rows_per_bank as u64 + row)
            })
            .collect()
    }

    /// The attack this trace realises.
    pub fn attack(&self) -> Attack {
        self.attack
    }

    /// The fixed aggressor set of this attack (empty for the formula-driven
    /// streaming patterns). Exposed so the attacklab compatibility layer can
    /// rebuild the same pattern as a composition of primitives.
    pub fn aggressor_rows(&self) -> &[DramAddr] {
        &self.aggressors
    }

    fn entry_for(&self, addr: DramAddr) -> TraceEntry {
        TraceEntry { bubbles: 0, addr: self.geom.encode(&addr), is_write: false }
    }
}

impl TraceSource for AttackTrace {
    fn next_entry(&mut self) -> TraceEntry {
        let step = self.step;
        self.step = self.step.wrapping_add(1);
        match self.attack {
            Attack::CacheThrash => {
                // Stream 64 MB of lines round and round: evicts everything.
                // A small bubble count models the pointer-chasing loop body;
                // pure back-to-back loads would model a memory bandwidth
                // attack rather than a cache-thrashing one.
                const LINES: u64 = (64 << 20) / 64;
                let line = step % LINES;
                TraceEntry { bubbles: 6, addr: PhysAddr(line * 64), is_write: false }
            }
            Attack::StartStream | Attack::Streaming => {
                // Walk every row of rank 0, banks innermost so the stream
                // interleaves banks at tRRD pace (the paper's streaming
                // attack sweeps one rank's 2M rows every ~6 ms). Rows
                // advance with a 64-row stride so each activation touches a
                // fresh 64-counter line of START's reserved region — the
                // line-conflict-aware order a real attacker uses to defeat
                // line-granularity caching.
                let banks = self.geom.banks_per_rank() as u64;
                let rows = self.geom.rows_per_bank as u64 - 64;
                let bank = step % banks;
                let k = step / banks;
                let strides = rows / 64;
                let row = (k % strides) * 64 + (k / strides) % 64;
                let idx = bank * self.geom.rows_per_bank as u64 + row;
                self.entry_for(self.geom.addr_from_rank_row_index(0, 0, idx))
            }
            Attack::AbacusSpillover => {
                // Distinct row ID on *every* activation ("row 0 in bank 0,
                // row 1 in bank 1, ..."): each one is untracked and lands on
                // the Misra-Gries spillover counter.
                let banks = self.geom.banks_per_rank() as u64;
                let bank = step % banks;
                let row = step % (self.geom.rows_per_bank as u64 - 64);
                let idx = bank * self.geom.rows_per_bank as u64 + row;
                self.entry_for(self.geom.addr_from_rank_row_index(0, 0, idx))
            }
            Attack::HydraRccThrash | Attack::CometRatOverflow | Attack::RefreshAttack => {
                let a = self.aggressors[(step % self.aggressors.len() as u64) as usize];
                self.entry_for(a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::paper_baseline()
    }

    #[test]
    fn tailoring_matches_paper_table() {
        assert_eq!(Attack::tailored_for("Hydra"), Attack::HydraRccThrash);
        assert_eq!(Attack::tailored_for("START"), Attack::StartStream);
        assert_eq!(Attack::tailored_for("CoMeT"), Attack::CometRatOverflow);
        assert_eq!(Attack::tailored_for("ABACUS"), Attack::AbacusSpillover);
        assert_eq!(Attack::tailored_for("DAPPER-H"), Attack::RefreshAttack);
    }

    #[test]
    fn only_cache_thrash_uses_the_llc() {
        assert!(!Attack::CacheThrash.bypasses_llc());
        for a in [
            Attack::HydraRccThrash,
            Attack::StartStream,
            Attack::CometRatOverflow,
            Attack::AbacusSpillover,
            Attack::Streaming,
            Attack::RefreshAttack,
        ] {
            assert!(a.bypasses_llc(), "{a}");
        }
    }

    #[test]
    fn attacks_issue_back_to_back_loads() {
        for a in [Attack::StartStream, Attack::RefreshAttack] {
            let mut t = a.trace(geom(), 1);
            for _ in 0..100 {
                let e = t.next_entry();
                assert_eq!(e.bubbles, 0);
                assert!(!e.is_write);
            }
        }
    }

    #[test]
    fn streaming_visits_distinct_rows_across_banks() {
        let g = geom();
        let mut t = Attack::Streaming.trace(g, 1);
        let mut rows = std::collections::HashSet::new();
        let mut banks = std::collections::HashSet::new();
        let mut lines = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let e = t.next_entry();
            let d = g.decode(e.addr);
            rows.insert((d.rank, d.bank_group, d.bank, d.row));
            banks.insert((d.rank, d.bank_group, d.bank));
            lines.insert((g.rank_row_index(&d) + d.rank as u64 * g.rows_per_rank()) / 64);
        }
        assert_eq!(rows.len(), 10_000, "no repeats within a sweep");
        assert_eq!(banks.len(), 32, "all banks of the target rank exercised");
        assert_eq!(lines.len(), 10_000, "every ACT touches a fresh counter line");
    }

    #[test]
    fn abacus_attack_never_repeats_row_ids_quickly() {
        let g = geom();
        let mut t = Attack::AbacusSpillover.trace(g, 1);
        let mut ids = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let d = g.decode(t.next_entry().addr);
            ids.insert(d.row);
        }
        assert!(ids.len() > 9_900, "{} distinct row ids", ids.len());
    }

    #[test]
    fn refresh_attack_hammers_fixed_set_across_banks() {
        let g = geom();
        let mut t = Attack::RefreshAttack.trace(g, 1);
        let mut rows = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let e = t.next_entry();
            rows.insert(e.addr.0);
        }
        // 2 rows x 32 banks x 2 ranks = 128 distinct addresses, recycled.
        assert_eq!(rows.len(), 128);
    }

    #[test]
    fn comet_attack_uses_192_aggressors() {
        let g = geom();
        let mut t = Attack::CometRatOverflow.trace(g, 3);
        let mut rows = std::collections::HashSet::new();
        for _ in 0..5000 {
            rows.insert(t.next_entry().addr.0);
        }
        assert_eq!(rows.len(), 192);
    }

    #[test]
    fn hydra_attack_exceeds_rcc_capacity() {
        let g = geom();
        let mut t = Attack::HydraRccThrash.trace(g, 3);
        let mut rows = std::collections::HashSet::new();
        let mut groups = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let e = t.next_entry();
            rows.insert(e.addr.0);
            let d = g.decode(e.addr);
            groups.insert(g.rank_row_index(&d) / 128);
        }
        assert!(rows.len() > 4096, "{} rows cycle through the RCC", rows.len());
        assert_eq!(groups.len(), 128, "dense groups flip to per-row mode fast");
    }

    #[test]
    fn attack_rows_avoid_reserved_metadata_region() {
        let g = geom();
        for atk in [Attack::Streaming, Attack::HydraRccThrash, Attack::AbacusSpillover] {
            let mut t = atk.trace(g, 9);
            for _ in 0..5000 {
                let d = g.decode(t.next_entry().addr);
                assert!(d.row < g.rows_per_bank - 64, "{atk}: row {} reserved", d.row);
            }
        }
    }
}
