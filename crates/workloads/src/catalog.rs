//! The 57-workload catalog.

use serde::{Deserialize, Serialize};

/// Benchmark suite a workload stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2006 (23 workloads).
    Spec2006,
    /// SPEC CPU2017 (18 workloads).
    Spec2017,
    /// TPC (4 workloads).
    Tpc,
    /// Hadoop (3 workloads).
    Hadoop,
    /// MediaBench (3 workloads).
    MediaBench,
    /// YCSB (6 workloads).
    Ycsb,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Spec2006 => "SPEC2K6",
            Suite::Spec2017 => "SPEC2K17",
            Suite::Tpc => "TPC",
            Suite::Hadoop => "Hadoop",
            Suite::MediaBench => "MediaBench",
            Suite::Ycsb => "YCSB",
        };
        f.write_str(s)
    }
}

/// Memory-behaviour parameters of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Stand-in name (suffixed `_like` to mark it synthetic).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// LLC accesses per kilo-instruction (post-L2 traffic intensity).
    pub apki: f64,
    /// Probability an access stays within the currently open row.
    pub row_locality: f64,
    /// Working-set size in MiB (drives LLC hit rate).
    pub footprint_mib: u64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Zipf skew over the footprint (None = uniform).
    pub zipf_theta: Option<f64>,
}

impl WorkloadSpec {
    const fn new(
        name: &'static str,
        suite: Suite,
        apki: f64,
        row_locality: f64,
        footprint_mib: u64,
        write_frac: f64,
        zipf_theta: Option<f64>,
    ) -> Self {
        Self { name, suite, apki, row_locality, footprint_mib, write_frac, zipf_theta }
    }

    /// Rough row-buffer-miss-per-kilo-instruction estimate used to split
    /// the figures into "memory intensive" (>= 2 RBMPKI) and the rest, as
    /// the paper's per-workload plots do. The LLC absorbs most accesses for
    /// small footprints; large-footprint traffic mostly misses.
    pub fn rbmpki_estimate(&self) -> f64 {
        let llc_capacity_mib = 8.0;
        let miss_frac = if (self.footprint_mib as f64) <= llc_capacity_mib {
            0.02
        } else {
            1.0 - llc_capacity_mib / self.footprint_mib as f64
        };
        self.apki * miss_frac * (1.0 - self.row_locality)
    }

    /// True if this workload lands in the paper's memory-intensive panel.
    pub fn memory_intensive(&self) -> bool {
        self.rbmpki_estimate() >= 2.0
    }
}

/// The full 57-entry catalog (23 + 18 + 4 + 3 + 3 + 6).
pub fn catalog() -> &'static [WorkloadSpec] {
    use Suite::*;
    const W: &[WorkloadSpec] = &[
        // --- SPEC CPU2006 (23) ---
        WorkloadSpec::new("perlbench_like", Spec2006, 2.1, 0.70, 25, 0.25, None),
        WorkloadSpec::new("bzip2_like", Spec2006, 6.1, 0.55, 96, 0.22, None),
        WorkloadSpec::new("gcc_like", Spec2006, 9.5, 0.50, 60, 0.28, None),
        WorkloadSpec::new("mcf_like", Spec2006, 52.0, 0.18, 1700, 0.18, None), // 429.mcf
        WorkloadSpec::new("milc_like", Spec2006, 28.0, 0.35, 680, 0.20, None),
        WorkloadSpec::new("zeusmp_like", Spec2006, 10.5, 0.55, 510, 0.24, None),
        WorkloadSpec::new("gromacs_like", Spec2006, 1.4, 0.65, 28, 0.25, None),
        WorkloadSpec::new("cactusADM_like", Spec2006, 12.0, 0.60, 640, 0.30, None),
        WorkloadSpec::new("leslie3d_like", Spec2006, 19.0, 0.50, 130, 0.24, None),
        WorkloadSpec::new("namd_like", Spec2006, 1.0, 0.70, 46, 0.15, None),
        WorkloadSpec::new("gobmk_like", Spec2006, 1.2, 0.60, 28, 0.25, None),
        WorkloadSpec::new("dealII_like", Spec2006, 4.5, 0.60, 110, 0.20, None),
        WorkloadSpec::new("soplex_like", Spec2006, 27.0, 0.35, 440, 0.18, None),
        WorkloadSpec::new("povray_like", Spec2006, 0.4, 0.75, 3, 0.25, None),
        WorkloadSpec::new("calculix_like", Spec2006, 1.5, 0.70, 60, 0.20, None),
        WorkloadSpec::new("hmmer_like", Spec2006, 2.8, 0.80, 30, 0.30, None),
        WorkloadSpec::new("sjeng_like", Spec2006, 1.1, 0.45, 170, 0.20, None),
        WorkloadSpec::new("GemsFDTD_like", Spec2006, 24.0, 0.45, 840, 0.25, None),
        WorkloadSpec::new("libquantum_like", Spec2006, 33.0, 0.85, 64, 0.15, None),
        WorkloadSpec::new("h264ref_like", Spec2006, 1.9, 0.75, 60, 0.25, None),
        WorkloadSpec::new("lbm_like", Spec2006, 36.0, 0.55, 410, 0.45, None),
        WorkloadSpec::new("omnetpp_like", Spec2006, 21.0, 0.25, 150, 0.30, None),
        WorkloadSpec::new("xalancbmk_like", Spec2006, 13.0, 0.30, 190, 0.22, None),
        // --- SPEC CPU2017 (18) ---
        WorkloadSpec::new("perlbench_r_like", Spec2017, 1.7, 0.70, 40, 0.25, None),
        WorkloadSpec::new("gcc_r_like", Spec2017, 7.8, 0.50, 90, 0.28, None),
        WorkloadSpec::new("bwaves_r_like", Spec2017, 26.0, 0.55, 760, 0.20, None),
        WorkloadSpec::new("mcf_r_like", Spec2017, 38.0, 0.22, 520, 0.20, None),
        WorkloadSpec::new("cactuBSSN_r_like", Spec2017, 14.0, 0.55, 710, 0.30, None),
        WorkloadSpec::new("namd_r_like", Spec2017, 1.1, 0.70, 50, 0.15, None),
        WorkloadSpec::new("parest_r_like", Spec2017, 43.0, 0.30, 410, 0.20, None), // 510.parest
        WorkloadSpec::new("povray_r_like", Spec2017, 0.3, 0.75, 4, 0.25, None),
        WorkloadSpec::new("lbm_r_like", Spec2017, 34.0, 0.55, 410, 0.45, None),
        WorkloadSpec::new("omnetpp_r_like", Spec2017, 18.0, 0.25, 240, 0.30, None),
        WorkloadSpec::new("wrf_r_like", Spec2017, 8.5, 0.60, 200, 0.25, None),
        WorkloadSpec::new("xalancbmk_r_like", Spec2017, 11.0, 0.30, 480, 0.22, None),
        WorkloadSpec::new("x264_r_like", Spec2017, 2.2, 0.75, 150, 0.30, None),
        WorkloadSpec::new("blender_r_like", Spec2017, 3.0, 0.60, 190, 0.25, None),
        WorkloadSpec::new("cam4_r_like", Spec2017, 6.0, 0.55, 280, 0.25, None),
        WorkloadSpec::new("deepsjeng_r_like", Spec2017, 1.5, 0.45, 700, 0.20, None),
        WorkloadSpec::new("imagick_r_like", Spec2017, 1.0, 0.80, 30, 0.30, None),
        WorkloadSpec::new("nab_r_like", Spec2017, 2.5, 0.60, 140, 0.20, None),
        // --- TPC (4) ---
        WorkloadSpec::new("tpcc64_like", Tpc, 16.0, 0.30, 1400, 0.35, Some(0.7)),
        WorkloadSpec::new("tpch2_like", Tpc, 12.0, 0.45, 820, 0.10, Some(0.5)),
        WorkloadSpec::new("tpch6_like", Tpc, 21.0, 0.55, 1100, 0.10, Some(0.5)),
        WorkloadSpec::new("tpch17_like", Tpc, 14.0, 0.40, 950, 0.12, Some(0.5)),
        // --- Hadoop (3) ---
        WorkloadSpec::new("hadoop_grep_like", Hadoop, 9.0, 0.60, 620, 0.20, Some(0.6)),
        WorkloadSpec::new("hadoop_sort_like", Hadoop, 15.0, 0.45, 900, 0.40, Some(0.6)),
        WorkloadSpec::new("hadoop_wordcount_like", Hadoop, 11.0, 0.55, 740, 0.30, Some(0.6)),
        // --- MediaBench (3) ---
        WorkloadSpec::new("h263enc_like", MediaBench, 3.2, 0.80, 35, 0.30, None),
        WorkloadSpec::new("h264dec_like", MediaBench, 2.4, 0.80, 28, 0.30, None),
        WorkloadSpec::new("mpeg2enc_like", MediaBench, 4.1, 0.75, 42, 0.30, None),
        // --- YCSB (6) ---
        WorkloadSpec::new("ycsb_a_like", Ycsb, 18.0, 0.25, 1200, 0.50, Some(0.9)),
        WorkloadSpec::new("ycsb_b_like", Ycsb, 16.0, 0.25, 1200, 0.10, Some(0.9)),
        WorkloadSpec::new("ycsb_c_like", Ycsb, 15.0, 0.25, 1200, 0.0, Some(0.9)),
        WorkloadSpec::new("ycsb_d_like", Ycsb, 14.0, 0.30, 1000, 0.10, Some(0.85)),
        WorkloadSpec::new("ycsb_e_like", Ycsb, 20.0, 0.45, 1300, 0.05, Some(0.8)),
        WorkloadSpec::new("ycsb_f_like", Ycsb, 17.0, 0.25, 1200, 0.30, Some(0.9)),
    ];
    W
}

/// Looks up a workload by name.
pub fn spec_by_name(name: &str) -> Option<&'static WorkloadSpec> {
    catalog().iter().find(|w| w.name == name)
}

/// A small representative subset (one per suite plus the two memory
/// monsters) used by quick benches.
pub fn quick_subset() -> Vec<&'static WorkloadSpec> {
    [
        "mcf_like",
        "parest_r_like",
        "libquantum_like",
        "povray_like",
        "tpcc64_like",
        "hadoop_sort_like",
        "h263enc_like",
        "ycsb_a_like",
        "gcc_like",
    ]
    .iter()
    .map(|n| spec_by_name(n).expect("subset name in catalog"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_57_workloads_with_paper_suite_counts() {
        let c = catalog();
        assert_eq!(c.len(), 57);
        let count = |s: Suite| c.iter().filter(|w| w.suite == s).count();
        assert_eq!(count(Suite::Spec2006), 23);
        assert_eq!(count(Suite::Spec2017), 18);
        assert_eq!(count(Suite::Tpc), 4);
        assert_eq!(count(Suite::Hadoop), 3);
        assert_eq!(count(Suite::MediaBench), 3);
        assert_eq!(count(Suite::Ycsb), 6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = catalog().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 57);
    }

    #[test]
    fn memory_monsters_are_intensive() {
        assert!(spec_by_name("mcf_like").unwrap().memory_intensive());
        assert!(spec_by_name("parest_r_like").unwrap().memory_intensive());
        assert!(!spec_by_name("povray_like").unwrap().memory_intensive());
    }

    #[test]
    fn intensive_panel_is_a_meaningful_split() {
        let intensive = catalog().iter().filter(|w| w.memory_intensive()).count();
        assert!((15..45).contains(&intensive), "{intensive} intensive workloads");
    }

    #[test]
    fn quick_subset_spans_suites() {
        let subset = quick_subset();
        assert_eq!(subset.len(), 9);
        let suites: std::collections::HashSet<_> = subset.iter().map(|w| w.suite).collect();
        assert_eq!(suites.len(), 6);
    }

    #[test]
    fn parameters_are_sane() {
        for w in catalog() {
            assert!(w.apki > 0.0 && w.apki < 100.0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.row_locality), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.write_frac), "{}", w.name);
            assert!(w.footprint_mib > 0, "{}", w.name);
            if let Some(t) = w.zipf_theta {
                assert!(t > 0.0 && t < 1.0, "{}", w.name);
            }
        }
    }
}
