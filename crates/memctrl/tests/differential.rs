//! Property-style differential suite: the indexed FR-FCFS scheduler must
//! pick the **same command sequence** as the retained naive-scan oracle.
//!
//! Two controllers — one indexed (production), one in naive-scan mode —
//! are driven with identical seeded-random request streams and trackers
//! engineered to exercise every scheduling phase: column commands (row
//! hits), activations (closed banks, including the throttle-tax path),
//! precharges (row conflicts), plus metadata traffic, victim-row
//! mitigations, and reset sweeps. After every bus cycle the aggregate
//! statistics, completion streams, and captured command events must be
//! bit-identical; any divergence pinpoints the first cycle at which the
//! indexed selection (or its cached decision bound) strayed from the
//! oracle semantics.

use dram::{DramChannel, TimingParams};
use memctrl::{ChannelController, CtrlConfig};
use sim_core::addr::{DramAddr, Geometry, PhysAddr};
use sim_core::config::MitigationKind;
use sim_core::events::MemEvent;
use sim_core::req::{AccessKind, MemRequest, SourceId};
use sim_core::rng::Xoshiro256;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, ResetScope, RowHammerTracker, StorageOverhead, TrackerAction};

/// A seeded adversarial tracker: on activations it randomly mitigates,
/// requests counter reads/writes, demands reset sweeps, or throttles —
/// the full action surface the scheduler must order identically.
struct ChaosTracker {
    rng: Xoshiro256,
    geom: Geometry,
    /// Per-mille probabilities: (mitigate, counter, sweep, throttle).
    p: (u64, u64, u64, u64),
}

impl ChaosTracker {
    fn new(seed: u64, p: (u64, u64, u64, u64)) -> Self {
        Self { rng: Xoshiro256::seed_from(seed), geom: Geometry::paper_baseline(), p }
    }
}

impl RowHammerTracker for ChaosTracker {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
        let roll = self.rng.gen_range(1000);
        if roll < self.p.0 {
            actions.push(TrackerAction::MitigateRow(act.addr));
        } else if roll < self.p.0 + self.p.1 {
            let idx = self.rng.gen_range(4096);
            let meta = crate_meta_addr(&self.geom, act.addr.channel, act.addr.rank, idx);
            actions.push(TrackerAction::CounterRead(meta));
            if roll.is_multiple_of(2) {
                actions.push(TrackerAction::CounterWrite(meta));
            }
        } else if roll < self.p.0 + self.p.1 + self.p.2 {
            actions.push(TrackerAction::ResetSweep(ResetScope::Rank {
                channel: act.addr.channel,
                rank: act.addr.rank,
            }));
        }
    }

    fn activation_delay(&mut self, _a: &DramAddr, _s: SourceId, _c: Cycle) -> Cycle {
        if self.rng.gen_range(1000) < self.p.3 {
            self.rng.gen_range(400) + 1
        } else {
            0
        }
    }

    fn storage_overhead(&self) -> StorageOverhead {
        StorageOverhead::default()
    }
}

/// Metadata address in the reserved top rows (mirrors trackers::util).
fn crate_meta_addr(geom: &Geometry, channel: u8, rank: u8, idx: u64) -> DramAddr {
    let banks = geom.banks_per_rank() as u64;
    let bank_flat = (idx % banks) as u32;
    let depth = (idx / banks) % 64;
    DramAddr {
        channel,
        rank,
        bank_group: (bank_flat / geom.banks_per_group as u32) as u8,
        bank: (bank_flat % geom.banks_per_group as u32) as u8,
        row: geom.rows_per_bank - 1 - depth as u32,
        col: (idx % geom.cols_per_row() as u64) as u16,
    }
}

fn controller(tracker: Box<dyn RowHammerTracker>) -> ChannelController {
    let dram = DramChannel::new(Geometry::paper_baseline(), TimingParams::ddr5_6400());
    let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
    let mut c = ChannelController::new(0, dram, tracker, cfg);
    c.set_event_capture(true);
    c
}

/// Drives both controllers for `cycles` with an identical seeded request
/// stream and asserts bit-identical observable behaviour every cycle.
fn run_differential(seed: u64, cycles: Cycle, p: (u64, u64, u64, u64), hot_rows: u64) {
    let mut indexed = controller(Box::new(ChaosTracker::new(seed ^ 0x7ac, p)));
    let mut oracle = controller(Box::new(ChaosTracker::new(seed ^ 0x7ac, p)));
    oracle.set_naive_scan(true);

    let mut rng = Xoshiro256::seed_from(seed);
    let geom = Geometry::paper_baseline();
    let mut id = 1u64;
    let mut done_i = Vec::new();
    let mut done_o = Vec::new();
    let mut ev_i: Vec<MemEvent> = Vec::new();
    let mut ev_o: Vec<MemEvent> = Vec::new();

    for now in 0..cycles {
        // Random enqueue pressure: bursts keep the queues saturated, rows
        // drawn from a small hot set to force hits AND conflicts, plus a
        // write mix deep enough to flip the drain hysteresis.
        let burst = rng.gen_range(3) as usize;
        for _ in 0..burst {
            let kind = if rng.gen_range(100) < 35 { AccessKind::Write } else { AccessKind::Read };
            let addr = DramAddr::new(
                0,
                rng.gen_range(2) as u8,
                rng.gen_range(geom.bank_groups as u64) as u8,
                rng.gen_range(geom.banks_per_group as u64) as u8,
                rng.gen_range(hot_rows) as u32,
                rng.gen_range(64) as u16,
            );
            let req = MemRequest::new(id, SourceId(0), kind, PhysAddr(0), addr, now);
            let a = indexed.enqueue(req);
            let b = oracle.enqueue(req);
            assert_eq!(a, b, "enqueue acceptance diverged at cycle {now}");
            if a {
                id += 1;
            }
        }
        indexed.tick(now);
        oracle.tick(now);
        indexed.pop_completions(now, &mut done_i);
        oracle.pop_completions(now, &mut done_o);
        assert_eq!(done_i, done_o, "completions diverged at cycle {now} (seed {seed})");
        assert_eq!(indexed.stats, oracle.stats, "stats diverged at cycle {now} (seed {seed})");
        assert_eq!(indexed.occupancy(), oracle.occupancy(), "occupancy diverged at {now}");
        indexed.drain_events(&mut |e| ev_i.push(*e));
        oracle.drain_events(&mut |e| ev_o.push(*e));
        assert_eq!(ev_i, ev_o, "event streams diverged at cycle {now} (seed {seed})");
        ev_i.clear();
        ev_o.clear();
    }
    // The run must have exercised the column and ACT phases always, and
    // the PRE phase whenever the row mix can conflict at all.
    assert!(indexed.stats.reads + indexed.stats.writes > 0, "no column commands issued");
    assert!(indexed.stats.activations > 0, "no ACTs issued");
    assert!(hot_rows < 2 || indexed.stats.precharges > 0, "no PREs issued");
}

#[test]
fn random_queue_states_match_the_oracle() {
    // Conflict-heavy: few rows per bank, mitigations and counter traffic.
    for seed in [1u64, 2, 3, 11] {
        run_differential(seed, 40_000, (30, 60, 0, 0), 6);
    }
}

#[test]
fn throttled_acts_match_the_oracle() {
    // Tracker throttling taxes ACT winners: the not-before bookkeeping
    // and the PRE-after-tax path must agree.
    for seed in [5u64, 17] {
        run_differential(seed, 40_000, (20, 20, 0, 120), 5);
    }
}

#[test]
fn sweeps_and_refresh_windows_match_the_oracle() {
    // Rank sweeps block for milliseconds; a long run crosses several
    // tREFI hooks and at least one sweep while the queues stay loaded.
    run_differential(23, 120_000, (10, 20, 4, 30), 8);
}

#[test]
fn row_hit_streams_match_the_oracle() {
    // Hit-friendly: a single hot row per bank maximises column traffic
    // and the served-bank PRE suppression logic.
    for seed in [7u64, 29] {
        run_differential(seed, 30_000, (15, 0, 0, 0), 1);
    }
}
