//! Memory controller model.
//!
//! One [`ChannelController`] per DDR5 channel. Responsibilities:
//!
//! * **Scheduling**: FR-FCFS — ready column commands (row hits) first,
//!   oldest first; then activations; precharges when the open row has no
//!   queued hits. Reads have priority over writes; writes drain in bursts
//!   once their queue passes a high-water mark. Tracker metadata beats
//!   demand traffic in every phase.
//! * **Refresh management**: per-rank auto-refresh every tREFI, tracker
//!   hooks at tREFI and tREFW boundaries.
//! * **Mitigation execution**: victim-row refreshes (VRR / DRFMsb / RFMsb)
//!   for aggressors named by the tracker, full structure-reset sweeps, and
//!   tracker metadata traffic (counter reads/writes) injected into the
//!   request stream — the exact levers RowHammer Perf-Attacks pull.
//!
//! # The indexed scheduler
//!
//! The controller is built for command-granularity stepping: queued
//! requests live in **per-bank FIFO lists** (a request's bank never
//! changes, so the queue layout *is* the scheduling index), and every
//! mutation — enqueue, command issue, refresh, tracker hook — refreshes a
//! cached **decision bound** (`quiet_until`): the earliest cycle at which
//! [`ChannelController::tick`] could possibly act. Ticks before the bound
//! return in O(1); [`ChannelController::next_event`] answers from the same
//! cache in O(1), so the time-skipping engine can jump straight from one
//! command-issue decision point to the next even while the bus is
//! saturated. Selection at a decision point walks banks, rejecting a whole
//! bank with one timing-gate check instead of re-querying DRAM per request.
//!
//! The pre-index full-scan selection survives as the **naive-scan oracle**
//! ([`ChannelController::set_naive_scan`]): a straight-line implementation
//! of the same FR-FCFS semantics that re-derives every eligibility from
//! scratch each tick. Differential tests drive both schedulers over
//! identical request streams and require bit-identical command sequences.
//!
//! ## Selection semantics (shared by both schedulers)
//!
//! One command per tick, first phase that can issue wins:
//!
//! 1. **Column** — among requests whose row is open and whose bank/bus
//!    timing gate has passed: lowest (pool class, age).
//! 2. **ACT** — among requests to closed banks past every ACT gate
//!    (tRC/tRRD/tFAW/REF-block and mitigation-busy): lowest (pool class,
//!    age). The winner pays the tracker's activation-delay tax at most
//!    once; a taxed request blocks this phase for the tick.
//! 3. **PRE** — banks in slot order: the first bank whose open row serves
//!    no queued request but conflicts with one is precharged.
//!
//! Pool class: metadata = 0, the favoured demand direction = 1 (reads
//! normally, writes while draining), the other = 2. Age is the global
//! enqueue sequence number, so within a class the scheduler is exactly
//! oldest-first.
//!
//! The controller emits its command stream as [`sim_core::MemEvent`]s
//! through a registered-sink API ([`ChannelController::set_event_capture`]
//! / [`ChannelController::drain_events`]): the harness drains the buffer
//! into whatever telemetry probes are attached — the ground-truth
//! RowHammer oracle is just one such client. With no sink registered
//! (the default) nothing is buffered, so performance sweeps pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shard;

pub use shard::ChannelShard;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dram::DramChannel;
use sim_core::addr::DramAddr;
use sim_core::config::MitigationKind;
use sim_core::events::MemEvent;
use sim_core::req::{AccessKind, MemRequest};
use sim_core::sched;
use sim_core::stats::MemStats;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, ResetScope, RowHammerTracker, TrackerAction};

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CtrlConfig {
    /// RowHammer threshold (forwarded to mitigation bookkeeping).
    pub nrh: u32,
    /// Victim rows refreshed each side of an aggressor.
    pub blast_radius: u8,
    /// Mitigation command flavour.
    pub mitigation: MitigationKind,
    /// Read-queue capacity (Busy above this).
    pub read_queue_cap: usize,
    /// Write-queue capacity.
    pub write_queue_cap: usize,
    /// Write drain high-water mark.
    pub write_drain_hi: usize,
    /// Tracker metadata queue capacity; demand ACTs stall above this,
    /// modelling Hydra's RCC-miss backpressure.
    pub counter_queue_cap: usize,
}

impl CtrlConfig {
    /// Defaults matching the paper's baseline.
    pub fn new(nrh: u32, blast_radius: u8, mitigation: MitigationKind) -> Self {
        Self {
            nrh,
            blast_radius,
            mitigation,
            read_queue_cap: 32,
            write_queue_cap: 32,
            write_drain_hi: 16,
            counter_queue_cap: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    /// Earliest issue cycle (throttling).
    not_before: Cycle,
    /// Tracker metadata gets scheduling priority.
    metadata: bool,
    /// Set when this request triggered an ACT (row-buffer miss).
    missed: bool,
    /// Set once the tracker's activation delay has been applied (the delay
    /// is a one-shot tax, not a recurring veto).
    taxed: bool,
    /// Global enqueue order: the FR-FCFS age tie-breaker.
    seq: u64,
}

/// A scheduling candidate: `(pool class, age, bank slot, position)`.
/// Lexicographic order on the first two fields is the FR-FCFS priority.
type Candidate = (u8, u64, usize, usize);

/// Victim-row mitigation actions (PREs and mitigation commands) the
/// controller performs per bus cycle while a backlog exists.
const MIT_ACTIONS_PER_TICK: usize = 8;

/// Outcome of the fused per-bank scan: winning candidate of each phase
/// (the PRE winner carries its slot and target address), how many banks
/// hold an action ready this cycle, and the earliest strictly-future
/// decision contribution.
struct Scan {
    col: Option<Candidate>,
    act: Option<Candidate>,
    pre: Option<(usize, DramAddr)>,
    /// Banks with an action ready this cycle (at most one per bank is
    /// counted; only `>= 2` is consumed: with two ready banks, issuing one
    /// command leaves the other ready, pinning the next decision to the
    /// very next cycle).
    ready: u32,
    /// Earliest `> now` decision contribution over the scanned banks.
    bound: Cycle,
}

impl Scan {
    fn empty() -> Self {
        Scan { col: None, act: None, pre: None, ready: 0, bound: sched::NEVER }
    }
}

/// Precomputed DRAM coordinates of a bank slot: (rank, bank-in-rank,
/// bank group) — lets the scan use the re-decode-free `*_at` DRAM
/// accessors.
type SlotCoord = (u8, u32, u8);

/// One channel's memory controller.
pub struct ChannelController {
    channel: u8,
    cfg: CtrlConfig,
    dram: DramChannel,
    tracker: Box<dyn RowHammerTracker>,
    /// Queued requests, bucketed per (rank, bank) in enqueue order. A
    /// request's bank never changes, so these lists double as the
    /// scheduler's bank index; pool membership is a per-entry tag.
    banks: Vec<Vec<Queued>>,
    /// Slots whose bank list is non-empty (unordered; selection is
    /// order-independent). The fused scan walks only these.
    active: Vec<u32>,
    /// Position of each slot in `active`, or `u32::MAX` when inactive.
    active_pos: Vec<u32>,
    /// Per-slot DRAM coordinates for the scan's `*_at` fast paths.
    slot_coords: Vec<SlotCoord>,
    /// Demand reads queued (across all banks).
    nreads: usize,
    /// Demand writes queued.
    nwrites: usize,
    /// Tracker metadata requests queued.
    ncounter: usize,
    /// Next enqueue sequence number (age tie-breaker).
    next_seq: u64,
    completions: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Aggressor rows awaiting a mitigation command, bucketed per bank.
    mit_q: Vec<VecDeque<DramAddr>>,
    /// Total entries across `mit_q`.
    mit_q_len: usize,
    /// Pending structure-reset sweeps.
    sweep_q: VecDeque<ResetScope>,
    /// Per (rank, bank) cycle until which mitigation work occupies the bank.
    mit_busy: Vec<Cycle>,
    next_ref: Vec<Cycle>,
    next_trefi_hook: Cycle,
    next_trefw: Cycle,
    draining_writes: bool,
    actions: Vec<TrackerAction>,
    next_meta_id: u64,
    /// Cached decision bound: the earliest cycle at which `tick` could
    /// have any observable effect. Ticks strictly before it return
    /// immediately; `next_event` answers from it in O(1). Recomputed at
    /// the end of every full tick and lowered in O(1) on enqueue.
    quiet_until: Cycle,
    /// Run the retained full-scan oracle instead of the indexed selection
    /// (differential testing only; disables the quiet-tick fast path).
    naive: bool,
    /// True while at least one event sink is registered; gates every
    /// event push so sink-free runs buffer nothing.
    capture_events: bool,
    /// Event buffer between [`ChannelController::drain_events`] calls.
    events: Vec<MemEvent>,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl std::fmt::Debug for ChannelController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelController")
            .field("channel", &self.channel)
            .field("tracker", &self.tracker.name())
            .field("reads", &self.nreads)
            .field("writes", &self.nwrites)
            .field("mit_q", &self.mit_q_len)
            .finish_non_exhaustive()
    }
}

impl ChannelController {
    /// Creates a controller for `channel` with the given tracker.
    pub fn new(
        channel: u8,
        dram: DramChannel,
        tracker: Box<dyn RowHammerTracker>,
        cfg: CtrlConfig,
    ) -> Self {
        let geom = *dram.geometry();
        let ranks = geom.ranks as usize;
        let banks = geom.banks_per_rank() as usize;
        let trefi = dram.timing().t_refi;
        let trefw = dram.timing().t_refw;
        // Stagger rank refreshes across the tREFI interval.
        let next_ref: Vec<Cycle> =
            (0..ranks).map(|r| trefi + (r as Cycle * trefi) / ranks.max(1) as Cycle).collect();
        let quiet_until = sched::earliest(next_ref.iter().copied()).min(trefi).min(trefw);
        Self {
            channel,
            cfg,
            dram,
            tracker,
            banks: (0..ranks * banks).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            active_pos: vec![u32::MAX; ranks * banks],
            slot_coords: (0..ranks * banks)
                .map(|slot| {
                    let bank = (slot % banks) as u32;
                    ((slot / banks) as u8, bank, (bank / geom.banks_per_group as u32) as u8)
                })
                .collect(),
            nreads: 0,
            nwrites: 0,
            ncounter: 0,
            next_seq: 0,
            completions: BinaryHeap::new(),
            mit_q: (0..ranks * banks).map(|_| VecDeque::new()).collect(),
            mit_q_len: 0,
            sweep_q: VecDeque::new(),
            mit_busy: vec![0; ranks * banks],
            next_ref,
            next_trefi_hook: trefi,
            next_trefw: trefw,
            draining_writes: false,
            actions: Vec::new(),
            next_meta_id: u64::MAX / 2,
            quiet_until,
            naive: false,
            capture_events: false,
            events: Vec::new(),
            stats: MemStats::default(),
        }
    }

    /// Registers (or withdraws) interest in the event stream. While off —
    /// the default — no events are buffered, which is the zero-overhead
    /// fast path performance sweeps rely on.
    pub fn set_event_capture(&mut self, on: bool) {
        self.capture_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// True while an event sink is registered.
    pub fn captures_events(&self) -> bool {
        self.capture_events
    }

    /// Switches between the indexed production scheduler (default) and the
    /// retained naive-scan oracle. Both implement the selection semantics
    /// documented at module level; the oracle re-derives every eligibility
    /// from scratch each tick (no cached decision bound, no per-bank
    /// shortcuts), which makes it the reference the differential suite
    /// holds the indexed path against.
    pub fn set_naive_scan(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// Hands every buffered event to `sink` in issue order and clears the
    /// buffer. The harness fans these out to all attached telemetry
    /// probes; the RowHammer oracle is one such client.
    pub fn drain_events(&mut self, sink: &mut dyn FnMut(&MemEvent)) {
        for ev in self.events.drain(..) {
            sink(&ev);
        }
    }

    /// The underlying DRAM channel (for energy/statistics readout).
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// The tracker (for storage readout).
    pub fn tracker(&self) -> &dyn RowHammerTracker {
        self.tracker.as_ref()
    }

    /// Queue occupancy `(reads, writes, metadata)`.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.nreads, self.nwrites, self.ncounter)
    }

    /// True if a read can be accepted.
    #[inline]
    pub fn can_accept_read(&self) -> bool {
        self.nreads < self.cfg.read_queue_cap
    }

    /// True if a write can be accepted.
    #[inline]
    pub fn can_accept_write(&self) -> bool {
        self.nwrites < self.cfg.write_queue_cap
    }

    /// Enqueues a demand request. Returns false (and drops it) when the
    /// matching queue is full — the caller must retry.
    pub fn enqueue(&mut self, req: MemRequest) -> bool {
        debug_assert_eq!(req.dram.channel, self.channel);
        match req.kind {
            AccessKind::Read => {
                if self.nreads >= self.cfg.read_queue_cap {
                    return false;
                }
                self.nreads += 1;
            }
            AccessKind::Write => {
                if self.nwrites >= self.cfg.write_queue_cap {
                    return false;
                }
                self.nwrites += 1;
                if self.nwrites >= self.cfg.write_drain_hi {
                    // See `issue_column`: the transition point, not a poll.
                    self.draining_writes = true;
                }
            }
        }
        let slot = self.slot_of(&req.dram);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.banks[slot].push(Queued {
            req,
            not_before: 0,
            metadata: false,
            missed: false,
            taxed: false,
            seq,
        });
        self.note_bank_filled(slot);
        // Lower the decision bound to this request's own earliest issue
        // gate (O(1); the full per-bank recomputation happens on the next
        // full tick). `arrival` is the enqueue cycle.
        let gate = self.request_gate(slot, &req.dram, req.arrival);
        self.quiet_until = self.quiet_until.min(gate.max(req.arrival));
        true
    }

    /// Earliest cycle at which the command `a` needs next (column / ACT /
    /// PRE by current bank state) could issue — a lower bound on when the
    /// request could make the scheduler act.
    fn request_gate(&self, slot: usize, a: &DramAddr, now: Cycle) -> Cycle {
        match self.dram.open_row(a) {
            Some(r) if r == a.row => self.dram.earliest_col(a, now),
            Some(_) => self.dram.earliest_pre(a, now),
            None => self.dram.earliest_act(a, now).max(self.mit_busy[slot]),
        }
    }

    /// Due time of the earliest queued completion, if any. Ticking only
    /// ever enqueues completions with later due-times, so a caller may
    /// peek before ticking to learn whether the coming cycle delivers.
    #[inline]
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.completions.peek().map(|&Reverse((c, _))| c)
    }

    /// Completed demand-read request ids due at or before `now`.
    #[inline]
    pub fn pop_completions(&mut self, now: Cycle, out: &mut Vec<u64>) {
        while let Some(Reverse((t, id))) = self.completions.peek().copied() {
            if t > now {
                break;
            }
            self.completions.pop();
            out.push(id);
        }
    }

    /// Advances the controller one bus cycle.
    ///
    /// Ticks strictly before the cached decision bound return immediately
    /// (the bound proves them no-ops); a full tick runs refresh catch-up,
    /// tracker hooks, mitigation work and one scheduling decision, then
    /// recomputes the bound.
    pub fn tick(&mut self, now: Cycle) {
        if !self.naive && now < self.quiet_until {
            return;
        }
        self.do_refresh(now);
        self.run_tracker_hooks(now);
        self.issue_mitigations(now);
        // The scheduler's scan (re-run after any issue) plus the floors
        // over REF/hook/mitigation deadlines give the exact next decision
        // point; mitigation actions this tick are reflected because
        // `mitigation_bound` reads post-action state.
        let scan_bound = self.schedule(now);
        self.quiet_until = self.quiet_floor(now, scan_bound);
    }

    fn do_refresh(&mut self, now: Cycle) {
        // Catch-up loop: `now` may jump several tREFI at once (time-skipping
        // engine, or dense ticking resuming after a long sweep block), and
        // every owed REF boundary must be processed, not just the first.
        let trefi = self.dram.timing().t_refi;
        for rank in 0..self.next_ref.len() {
            while now >= self.next_ref[rank] {
                let blocked_until = self.dram.rank_blocked_until(rank as u8);
                if blocked_until > now + 8 * trefi {
                    // The rank is mid reset-sweep, which refreshes every row
                    // anyway; skip the owed REF rather than piling it up.
                    self.next_ref[rank] += trefi;
                    continue;
                }
                let at = now.max(blocked_until);
                self.dram.issue_ref(rank as u8, at);
                self.stats.refreshes += 1;
                self.next_ref[rank] += trefi;
            }
        }
    }

    fn run_tracker_hooks(&mut self, now: Cycle) {
        // Catch-up loops, for the same reason as in `do_refresh`: a jump
        // across k boundaries owes the tracker k hook invocations.
        let t = *self.dram.timing();
        while now >= self.next_trefi_hook {
            self.tracker.on_trefi(now, &mut self.actions);
            self.next_trefi_hook += t.t_refi;
            self.drain_actions(now);
        }
        while now >= self.next_trefw {
            self.tracker.on_refresh_window(now, &mut self.actions);
            if self.capture_events {
                self.events.push(MemEvent::RefreshWindowEnd { cycle: now });
            }
            self.next_trefw += t.t_refw;
            self.drain_actions(now);
        }
    }

    fn drain_actions(&mut self, now: Cycle) {
        // In-place walk: nothing executed here pushes further actions, and
        // the buffer is reused across calls with no allocation.
        let mut i = 0;
        while i < self.actions.len() {
            match self.actions[i] {
                TrackerAction::MitigateRow(addr) => {
                    let slot = self.slot_of(&addr);
                    self.mit_q[slot].push_back(addr);
                    self.mit_q_len += 1;
                }
                TrackerAction::ResetSweep(scope) => self.sweep_q.push_back(scope),
                TrackerAction::CounterRead(addr) => self.push_meta(addr, AccessKind::Read, now),
                TrackerAction::CounterWrite(addr) => self.push_meta(addr, AccessKind::Write, now),
            }
            i += 1;
        }
        self.actions.clear();
    }

    fn push_meta(&mut self, addr: DramAddr, kind: AccessKind, now: Cycle) {
        let id = self.next_meta_id;
        self.next_meta_id += 1;
        let phys = self.dram.geometry().encode(&addr);
        let req = MemRequest::new(id, sim_core::req::SourceId::TRACKER, kind, phys, addr, now);
        let slot = self.slot_of(&addr);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.banks[slot].push(Queued {
            req,
            not_before: now,
            metadata: true,
            missed: false,
            taxed: false,
            seq,
        });
        self.note_bank_filled(slot);
        self.ncounter += 1;
        match kind {
            AccessKind::Read => self.stats.counter_reads += 1,
            AccessKind::Write => self.stats.counter_writes += 1,
        }
    }

    fn slot_of(&self, addr: &DramAddr) -> usize {
        let geom = self.dram.geometry();
        addr.rank as usize * geom.banks_per_rank() as usize + geom.bank_in_rank(addr) as usize
    }

    /// Adds `slot` to the active-bank list if its queue just became
    /// non-empty (call after pushing).
    fn note_bank_filled(&mut self, slot: usize) {
        if self.banks[slot].len() == 1 {
            self.active_pos[slot] = self.active.len() as u32;
            self.active.push(slot as u32);
        }
    }

    /// Removes `slot` from the active-bank list if its queue just drained
    /// (call after removing).
    fn note_bank_drained(&mut self, slot: usize) {
        if self.banks[slot].is_empty() {
            let pos = self.active_pos[slot] as usize;
            self.active.swap_remove(pos);
            self.active_pos[slot] = u32::MAX;
            if let Some(&moved) = self.active.get(pos) {
                self.active_pos[moved as usize] = pos as u32;
            }
        }
    }

    /// Sweep and victim-row mitigation pass. The cached decision bound
    /// needs no notification from here: `tick` recomputes it afterwards
    /// via `schedule`'s scan and `mitigation_bound`, both of which read
    /// the post-action state.
    fn issue_mitigations(&mut self, now: Cycle) {
        // Structure-reset sweeps take absolute priority.
        while let Some(&scope) = self.sweep_q.front() {
            // Only start a sweep when the scope isn't already mid-sweep.
            let blocked = match scope {
                ResetScope::Rank { rank, .. } => self.dram.rank_blocked(rank, now),
                ResetScope::Channel { .. } => {
                    (0..self.dram.geometry().ranks).any(|r| self.dram.rank_blocked(r, now))
                }
            };
            if blocked {
                break;
            }
            self.sweep_q.pop_front();
            let until = self.dram.issue_reset_sweep(scope, now);
            self.stats.reset_sweeps += 1;
            self.stats.mitigation_block_cycles += until - now;
            if self.capture_events {
                self.events.push(MemEvent::SweepRefreshed { scope, cycle: until });
            }
        }

        // Victim-row refreshes: rotate over the per-bank buckets, issuing
        // to banks free of mitigation work, at most `MIT_ACTIONS_PER_TICK`
        // actions per cycle. The rotation point derives from `now` rather
        // than a per-tick cursor so that elided no-op ticks cannot shift
        // fairness — a prerequisite for giving the time-skipping engine an
        // exact mitigation decision bound.
        if self.mit_q_len > 0 {
            let nbanks = self.mit_q.len();
            let start = (now % nbanks as Cycle) as usize;
            let geom = *self.dram.geometry();
            let mut actions = 0;
            for step in 0..nbanks {
                if actions >= MIT_ACTIONS_PER_TICK {
                    break;
                }
                let slot = (start + step) % nbanks;
                if self.mit_q[slot].is_empty() || self.mit_busy[slot] > now {
                    continue;
                }
                let addr = self.mit_q[slot][0];
                if self.dram.rank_blocked(addr.rank, now) {
                    continue;
                }
                if !self.dram.is_bank_closed(&addr) {
                    // Mitigation commands need the bank precharged; close it
                    // and issue on a later tick.
                    if self.dram.earliest_pre(&addr, now) <= now {
                        self.dram.issue_pre(&addr, now);
                        self.stats.precharges += 1;
                        actions += 1;
                    }
                    continue;
                }
                self.mit_q[slot].pop_front();
                self.mit_q_len -= 1;
                let until = self.dram.issue_mitigation(
                    &addr,
                    self.cfg.mitigation,
                    self.cfg.blast_radius,
                    now,
                );
                match self.cfg.mitigation {
                    MitigationKind::Vrr => self.stats.vrr_commands += 1,
                    _ => self.stats.rfm_commands += 1,
                }
                self.stats.victim_rows_refreshed += 2 * self.cfg.blast_radius as u64;
                self.stats.mitigation_block_cycles += until - now;
                self.mit_busy[slot] = until;
                actions += 1;
                if self.cfg.mitigation != MitigationKind::Vrr {
                    // Same-bank commands occupy the bank in every group.
                    for bg in 0..geom.bank_groups {
                        let a = DramAddr { bank_group: bg, ..addr };
                        let sl = self.slot_of(&a);
                        self.mit_busy[sl] = self.mit_busy[sl].max(until);
                    }
                }
                if self.capture_events {
                    self.events.push(MemEvent::VictimsRefreshed {
                        aggressor: addr,
                        blast_radius: self.cfg.blast_radius,
                        cycle: until,
                    });
                }
            }
        }
    }

    /// Earliest cycle the mitigation pass could act again, given current
    /// state: sweep-scope unblock, and per nonempty victim bucket the max
    /// of its mitigation-busy window, its rank's REF/sweep block, and (for
    /// an open bank) the PRE gate it must pay first. Exact while no
    /// command issues, which is all the cached bound needs — any issue
    /// forces a recompute anyway. Under attack this is what turns the
    /// multi-hundred-cycle VRR blocks into skippable stretches.
    fn mitigation_bound(&self, now: Cycle) -> Cycle {
        let mut t = sched::NEVER;
        if let Some(&scope) = self.sweep_q.front() {
            let start = self.dram.scope_unblocked_at(scope);
            if start <= now {
                return now + 1;
            }
            t = t.min(start);
        }
        if self.mit_q_len > 0 {
            for (slot, q) in self.mit_q.iter().enumerate() {
                let Some(addr) = q.front() else { continue };
                let mut b = self.mit_busy[slot].max(self.dram.rank_blocked_until(addr.rank));
                if !self.dram.is_bank_closed(addr) {
                    b = b.max(self.dram.earliest_pre(addr, now));
                }
                t = t.min(b);
                if t <= now {
                    return now + 1;
                }
            }
        }
        t
    }

    /// Pool class of a queued request under the current drain mode:
    /// metadata = 0, favoured demand direction = 1, the other = 2.
    #[inline]
    fn class_of(&self, q: &Queued) -> u8 {
        if q.metadata {
            0
        } else if (q.req.kind == AccessKind::Write) == self.draining_writes {
            1
        } else {
            2
        }
    }

    /// FR-FCFS: pick one command for this cycle.
    ///
    /// Returns the exact no-issue decision bound (the earliest cycle any
    /// command could become issuable, given the state just scanned) when
    /// nothing issued, or `None` when a command issued or a throttle tax
    /// landed — any state change invalidates the scan's bound.
    fn schedule(&mut self, now: Cycle) -> Cycle {
        // The read-vs-write drain phase flips at queue-count transitions
        // (`enqueue` / `issue_column`), not here: a per-cycle poll would
        // make the hysteresis depend on which quiet cycles a scheduler
        // happens to examine, and the quiet-skipping production path and
        // the every-cycle oracle must see identical phase decisions.
        if self.nreads + self.nwrites + self.ncounter == 0 {
            return sched::NEVER;
        }
        if self.naive {
            if let Some((slot, pos)) = self.naive_pick_column(now) {
                self.issue_column(slot, pos, now);
            } else if !self.naive_try_issue_act(now) {
                self.naive_try_issue_pre(now);
            }
            // The oracle never skips: every tick re-derives from scratch.
            return 0;
        }
        let scan = self.fused_scan(now);
        if let Some((_, _, slot, pos)) = scan.col {
            let was_saturated = self.ncounter >= self.cfg.counter_queue_cap;
            self.issue_column(slot, pos, now);
            if was_saturated && self.ncounter < self.cfg.counter_queue_cap {
                // A metadata issue lifted the ACT backpressure: formerly
                // vetoed candidates may be ready channel-wide.
                return now;
            }
            return self.post_issue_bound(&scan, slot, None, now);
        }
        if let Some((_, _, slot, pos)) = scan.act {
            let meta_before = self.ncounter;
            if self.commit_act(slot, pos, now) {
                if self.ncounter != meta_before {
                    // The tracker's reaction queued metadata on arbitrary
                    // banks (ready from the next cycle): decide then.
                    return now;
                }
                return self.post_issue_bound(&scan, slot, None, now);
            }
            // Throttled: the tax is a state change, but the PRE pass still
            // runs this very tick, like the dense reference.
            let pre_slot = scan.pre.map(|(ps, a)| {
                self.dram.issue_pre(&a, now);
                self.stats.precharges += 1;
                ps
            });
            return self.post_issue_bound(&scan, slot, pre_slot, now);
        }
        if let Some((ps, a)) = scan.pre {
            self.dram.issue_pre(&a, now);
            self.stats.precharges += 1;
            return self.post_issue_bound(&scan, ps, None, now);
        }
        scan.bound
    }

    /// Decision bound after this tick's action(s) touched `slot` (and
    /// possibly `slot2`). Issuing only pushes *other* banks' gates later,
    /// so fresh readiness can appear exclusively on the touched banks —
    /// one O(bank) recheck each — while a second pre-existing ready bank
    /// (`scan.ready >= 2`) pins the next decision to the coming cycle.
    fn post_issue_bound(
        &self,
        scan: &Scan,
        slot: usize,
        slot2: Option<usize>,
        now: Cycle,
    ) -> Cycle {
        if scan.ready >= 2 {
            return now;
        }
        let mut b = scan.bound.min(self.bank_bound(slot, now));
        if let Some(s2) = slot2 {
            b = b.min(self.bank_bound(s2, now));
        }
        b
    }

    /// Recheck of one bank against current state: `now` when it holds a
    /// ready action, else its future decision contribution.
    fn bank_bound(&self, slot: usize, now: Cycle) -> Cycle {
        if self.banks[slot].is_empty() {
            return sched::NEVER;
        }
        let meta_saturated = self.ncounter >= self.cfg.counter_queue_cap;
        let mut s = Scan::empty();
        self.scan_bank(slot, now, meta_saturated, &mut s);
        if s.ready > 0 {
            now
        } else {
            s.bound
        }
    }

    /// One pass over the active banks computing all three phase winners,
    /// the ready-bank count, and the no-issue decision bound
    /// simultaneously — one open-row lookup and one timing-gate
    /// evaluation per bank, instead of a DRAM-state query per request per
    /// phase. `active` is unordered; every selection is order-independent
    /// (winners by (class, age), the PRE target by lowest slot).
    fn fused_scan(&self, now: Cycle) -> Scan {
        // Backpressure: while the metadata queue is saturated, demand ACTs
        // stall (Hydra/START counter updates gate forward progress).
        let meta_saturated = self.ncounter >= self.cfg.counter_queue_cap;
        let mut s = Scan::empty();
        for &slot in &self.active {
            self.scan_bank(slot as usize, now, meta_saturated, &mut s);
        }
        s
    }

    /// Folds one bank into a [`Scan`].
    fn scan_bank(&self, slot: usize, now: Cycle, meta_saturated: bool, s: &mut Scan) {
        let (rank, bank_ix, bg) = self.slot_coords[slot];
        let bank = &self.banks[slot];
        match self.dram.open_row_at(rank, bank_ix) {
            None => {
                // Closed bank: every request is an ACT candidate behind
                // one shared gate (tRC/tRRD/tFAW/REF/mitigation-busy).
                let gate =
                    self.dram.earliest_act_at(rank, bank_ix, bg, now).max(self.mit_busy[slot]);
                let ready = gate <= now;
                let mut min_nb = Cycle::MAX;
                let mut bank_ready = false;
                for (pos, q) in bank.iter().enumerate() {
                    let class = self.class_of(q);
                    if meta_saturated && class != 0 {
                        // Unblocking needs a metadata issue — itself a
                        // decision tick — so vetoed candidates contribute
                        // neither readiness nor a bound.
                        continue;
                    }
                    min_nb = min_nb.min(q.not_before);
                    if !ready || q.not_before > now {
                        continue;
                    }
                    bank_ready = true;
                    if s.act.is_none_or(|(c, sq, _, _)| (class, q.seq) < (c, sq)) {
                        s.act = Some((class, q.seq, slot, pos));
                    }
                }
                if bank_ready {
                    s.ready += 1;
                } else if min_nb != Cycle::MAX {
                    s.bound = s.bound.min(gate.max(min_nb));
                }
            }
            Some(open) => {
                let mut min_nb_hit = Cycle::MAX;
                let mut conflict: Option<DramAddr> = None;
                let mut best_hit: Option<(u8, u64, usize)> = None;
                for (pos, q) in bank.iter().enumerate() {
                    if q.req.dram.row == open {
                        min_nb_hit = min_nb_hit.min(q.not_before);
                        if q.not_before <= now {
                            let class = self.class_of(q);
                            if best_hit.is_none_or(|(c, sq, _)| (class, q.seq) < (c, sq)) {
                                best_hit = Some((class, q.seq, pos));
                            }
                        }
                    } else if conflict.is_none() {
                        conflict = Some(q.req.dram);
                    }
                }
                if min_nb_hit != Cycle::MAX {
                    // Served bank: column work only. PRE is impossible
                    // while a hit is queued, and the serve set only
                    // changes at a decision point, so the column gate is
                    // the bank's entire contribution.
                    let eff = self.dram.earliest_col_at(rank, bank_ix, now).max(min_nb_hit);
                    if eff <= now {
                        s.ready += 1;
                        if let Some((class, seq, pos)) = best_hit {
                            if s.col.is_none_or(|(c, sq, _, _)| (class, seq) < (c, sq)) {
                                s.col = Some((class, seq, slot, pos));
                            }
                        }
                    } else {
                        s.bound = s.bound.min(eff);
                    }
                } else if let Some(a) = conflict {
                    // Unserved conflict: PRE when the gate has passed
                    // (lowest qualifying slot wins, matching the oracle's
                    // slot-order scan), else the gate bounds the decision.
                    let gate = self.dram.earliest_pre_at(rank, bank_ix, now);
                    if gate <= now {
                        s.ready += 1;
                        if s.pre.is_none_or(|(ps, _)| slot < ps) {
                            s.pre = Some((slot, a));
                        }
                    } else {
                        s.bound = s.bound.min(gate);
                    }
                }
            }
        }
    }

    /// Naive-scan column selection (oracle): per-request eligibility from
    /// scratch, no shared-gate shortcuts.
    fn naive_pick_column(&self, now: Cycle) -> Option<(usize, usize)> {
        let mut best: Option<Candidate> = None;
        for (slot, bank) in self.banks.iter().enumerate() {
            for (pos, q) in bank.iter().enumerate() {
                let a = &q.req.dram;
                if q.not_before <= now
                    && self.dram.is_row_hit(a)
                    && self.dram.earliest_col(a, now) <= now
                {
                    let key = (self.class_of(q), q.seq);
                    if best.is_none_or(|(c, s, _, _)| key < (c, s)) {
                        best = Some((key.0, key.1, slot, pos));
                    }
                }
            }
        }
        best.map(|(_, _, slot, pos)| (slot, pos))
    }

    fn issue_column(&mut self, slot: usize, pos: usize, now: Cycle) {
        let q = self.banks[slot].remove(pos);
        self.note_bank_drained(slot);
        if q.metadata {
            self.ncounter -= 1;
        } else {
            match q.req.kind {
                AccessKind::Read => self.nreads -= 1,
                AccessKind::Write => {
                    self.nwrites -= 1;
                    if self.nwrites == 0 {
                        // Drain-mode hysteresis, evaluated at the exact
                        // count transition (a per-cycle poll would be
                        // path-dependent across elided quiet ticks).
                        self.draining_writes = false;
                    }
                }
            }
        }
        let done = match q.req.kind {
            AccessKind::Read => {
                let d = self.dram.issue_read(&q.req.dram, now);
                self.stats.reads += 1;
                d
            }
            AccessKind::Write => {
                let d = self.dram.issue_write(&q.req.dram, now);
                self.stats.writes += 1;
                d
            }
        };
        if !q.metadata {
            if q.missed {
                self.stats.row_misses += 1;
            } else {
                self.stats.row_hits += 1;
            }
        }
        if q.req.is_demand_read() {
            // The lookahead contract the sharded executor leans on: no
            // completion may land earlier than arrival + the advertised
            // inject-to-complete floor.
            debug_assert!(
                done >= q.req.arrival + self.min_inject_latency(),
                "completion at {done} violates the lookahead bound for a request arriving at {}",
                q.req.arrival
            );
            self.completions.push(Reverse((done, q.req.id)));
            if self.capture_events {
                self.events.push(MemEvent::ReadCompleted {
                    source: q.req.source,
                    phys: q.req.phys,
                    arrival: q.req.arrival,
                    cycle: done,
                });
            }
        }
    }

    /// Naive-scan ACT selection (oracle).
    fn naive_pick_act(&self, now: Cycle) -> Option<(usize, usize)> {
        let meta_saturated = self.ncounter >= self.cfg.counter_queue_cap;
        let mut best: Option<Candidate> = None;
        for (slot, bank) in self.banks.iter().enumerate() {
            for (pos, q) in bank.iter().enumerate() {
                let a = &q.req.dram;
                let class = self.class_of(q);
                if meta_saturated && class != 0 {
                    continue;
                }
                if q.not_before <= now
                    && self.dram.is_bank_closed(a)
                    && self.mit_busy[self.slot_of(a)] <= now
                    && self.dram.earliest_act(a, now) <= now
                {
                    let key = (class, q.seq);
                    if best.is_none_or(|(c, s, _, _)| key < (c, s)) {
                        best = Some((key.0, key.1, slot, pos));
                    }
                }
            }
        }
        best.map(|(_, _, slot, pos)| (slot, pos))
    }

    /// Naive-mode ACT phase: pick, then commit. Returns true iff an ACT
    /// issued (a throttle tax counts as "no issue": PRE still runs).
    fn naive_try_issue_act(&mut self, now: Cycle) -> bool {
        match self.naive_pick_act(now) {
            Some((slot, pos)) => self.commit_act(slot, pos, now),
            None => false,
        }
    }

    /// Commits the chosen ACT candidate: pays the tracker's throttle tax
    /// (at most once per request) or issues the activation and runs the
    /// tracker's reactions.
    fn commit_act(&mut self, slot: usize, pos: usize, now: Cycle) -> bool {
        // Consult the tracker's throttle before committing (once per
        // request: the delay is a tax paid ahead of the ACT).
        let (addr, source, taxed) = {
            let q = &self.banks[slot][pos];
            (q.req.dram, q.req.source, q.taxed)
        };
        if !taxed {
            let delay = self.tracker.activation_delay(&addr, source, now);
            if delay > 0 {
                let q = &mut self.banks[slot][pos];
                q.not_before = now + delay;
                q.taxed = true;
                return false;
            }
        }
        self.dram.issue_act(&addr, now);
        self.stats.activations += 1;
        self.banks[slot][pos].missed = true;
        if self.capture_events {
            self.events.push(MemEvent::Activate { addr, cycle: now });
        }
        // Inform the tracker and execute its reactions.
        let act = Activation { addr, source, cycle: now };
        self.tracker.on_activation(act, &mut self.actions);
        self.drain_actions(now);
        true
    }

    /// Naive-scan PRE pass (oracle): served/conflict re-derived per
    /// request via DRAM queries, oldest conflict by explicit age compare.
    fn naive_try_issue_pre(&mut self, now: Cycle) -> bool {
        for slot in 0..self.banks.len() {
            let mut served = false;
            let mut conflict: Option<(u64, DramAddr)> = None;
            for q in &self.banks[slot] {
                let a = &q.req.dram;
                if let Some(open) = self.dram.open_row(a) {
                    if open == a.row {
                        served = true;
                    } else if conflict.is_none_or(|(s, _)| q.seq < s) {
                        conflict = Some((q.seq, *a));
                    }
                }
            }
            if served {
                continue;
            }
            if let Some((_, a)) = conflict {
                if self.dram.earliest_pre(&a, now) <= now {
                    self.dram.issue_pre(&a, now);
                    self.stats.precharges += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Combines the fused scan's no-issue bound with every other source of
    /// controller work — REF deadlines, tracker hooks, mitigation backlog,
    /// pending sweeps — into the decision bound cached in `quiet_until`.
    fn quiet_floor(&self, now: Cycle, scan_bound: Cycle) -> Cycle {
        let mut t = scan_bound.min(self.next_trefi_hook).min(self.next_trefw);
        for &r in &self.next_ref {
            t = t.min(r);
        }
        t = t.min(self.mitigation_bound(now));
        sched::at_least_next_cycle(t, now)
    }

    /// Pending mitigation work (aggressors + sweeps) — used by tests.
    pub fn pending_mitigations(&self) -> usize {
        self.mit_q_len + self.sweep_q.len()
    }

    /// The next command-granularity decision point: the first cycle `>=
    /// now` at which [`ChannelController::tick`] could have an observable
    /// effect or a queued completion falls due (see
    /// [`sim_core::sched::NextEvent`]). Answered in O(1) from the cached
    /// decision bound — `tick` keeps it current, and `enqueue` lowers it —
    /// so the time-skipping engine can probe a saturated controller every
    /// cycle without paying a queue walk.
    ///
    /// Returning `now` means "tick me this very cycle".
    #[inline]
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let mut t = self.quiet_until;
        if let Some(&Reverse((c, _))) = self.completions.peek() {
            t = t.min(c);
        }
        t.max(now)
    }

    /// Lookahead bound (see [`sim_core::sched::NextEvent`]): a request
    /// enqueued at cycle `t` cannot complete before `t + tCL + tBL` — the
    /// CAS-to-data latency plus the burst, which every demand read pays
    /// even on a row hit issued the same cycle it arrives. A read that
    /// must open its row additionally pays tRCD (and possibly tRP), so
    /// the true floor for cold rows is `tRCD + tCL + tBL`; the controller
    /// reports the guaranteed row-hit floor. `issue_column` asserts the
    /// bound against every completion it schedules.
    #[inline]
    pub fn min_inject_latency(&self) -> Cycle {
        let t = self.dram.timing();
        t.t_cl + t.t_bl
    }
}

impl sched::NextEvent for ChannelController {
    #[inline]
    fn next_event(&self, now: Cycle) -> Cycle {
        ChannelController::next_event(self, now)
    }

    #[inline]
    fn min_inject_latency(&self) -> Cycle {
        ChannelController::min_inject_latency(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::TimingParams;
    use sim_core::addr::{Geometry, PhysAddr};
    use sim_core::req::SourceId;
    use sim_core::tracker::{NullTracker, StorageOverhead};

    fn mk(tracker: Box<dyn RowHammerTracker>, events: bool) -> ChannelController {
        let geom = Geometry::paper_baseline();
        let dram = DramChannel::new(geom, TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        let mut ctrl = ChannelController::new(0, dram, tracker, cfg);
        ctrl.set_event_capture(events);
        ctrl
    }

    fn rd(id: u64, bg: u8, bank: u8, row: u32, col: u16, at: Cycle) -> MemRequest {
        let d = DramAddr::new(0, 0, bg, bank, row, col);
        MemRequest::new(id, SourceId(0), AccessKind::Read, PhysAddr(0), d, at)
    }

    fn run(ctrl: &mut ChannelController, from: Cycle, to: Cycle, done: &mut Vec<u64>) {
        for now in from..to {
            ctrl.tick(now);
            ctrl.pop_completions(now, done);
        }
    }

    #[test]
    fn single_read_completes() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 400, &mut done);
        assert_eq!(done, vec![1]);
        assert_eq!(c.stats.activations, 1);
        assert_eq!(c.stats.reads, 1);
        assert_eq!(c.stats.row_misses, 1);
    }

    #[test]
    fn row_hits_skip_activation() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        assert!(c.enqueue(rd(2, 0, 0, 10, 3, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 600, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats.activations, 1, "second access rides the open row");
        assert_eq!(c.stats.row_hits, 1);
    }

    #[test]
    fn conflicting_rows_precharge() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        assert!(c.enqueue(rd(2, 0, 0, 11, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats.activations, 2);
        assert!(c.stats.precharges >= 1);
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut c = mk(Box::new(NullTracker), false);
        for i in 0..40 {
            let ok = c.enqueue(rd(i, (i % 8) as u8, 0, i as u32, 0, 0));
            assert_eq!(ok, i < 32, "request {i}");
        }
    }

    #[test]
    fn refresh_happens_every_trefi() {
        let mut c = mk(Box::new(NullTracker), false);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        run(&mut c, 0, trefi * 4 + 10, &mut done);
        // 2 ranks x ~3-4 refreshes.
        assert!((6..=9).contains(&c.stats.refreshes), "{}", c.stats.refreshes);
    }

    /// A tracker that mitigates every 8th activation of any row.
    struct EveryN {
        n: u32,
        count: u32,
    }
    impl RowHammerTracker for EveryN {
        fn name(&self) -> &'static str {
            "every-n"
        }
        fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
            self.count += 1;
            if self.count.is_multiple_of(self.n) {
                actions.push(TrackerAction::MitigateRow(act.addr));
            }
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn tracker_mitigations_execute_and_block_banks() {
        let mut c = mk(Box::new(EveryN { n: 1, count: 0 }), true);
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(c.stats.vrr_commands, 1);
        assert_eq!(c.stats.victim_rows_refreshed, 2);
        let mut drained = Vec::new();
        c.drain_events(&mut |ev| drained.push(*ev));
        assert!(drained.iter().any(|e| matches!(e, MemEvent::VictimsRefreshed { .. })));
        // The buffer hands everything over exactly once.
        let mut again = Vec::new();
        c.drain_events(&mut |ev| again.push(*ev));
        assert!(again.is_empty(), "drain must clear the buffer");
    }

    #[test]
    fn no_sink_means_no_buffered_events() {
        // The fast path: without a registered sink the controller must not
        // accumulate events (a long sweep would otherwise leak memory and
        // time into probe-free runs).
        let mut c = mk(Box::new(EveryN { n: 1, count: 0 }), false);
        assert!(!c.captures_events());
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(c.stats.vrr_commands, 1, "mitigation work still happens");
        let mut drained = 0;
        c.drain_events(&mut |_| drained += 1);
        assert_eq!(drained, 0, "nothing may be buffered without a sink");
    }

    /// A tracker that asks for counter traffic on each ACT (Hydra-like).
    struct MetaOnAct;
    impl RowHammerTracker for MetaOnAct {
        fn name(&self) -> &'static str {
            "meta"
        }
        fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
            let meta = DramAddr { row: 0xFFFF, col: 0, ..act.addr };
            actions.push(TrackerAction::CounterRead(meta));
            actions.push(TrackerAction::CounterWrite(meta));
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn counter_traffic_consumes_bandwidth() {
        let mut plain = mk(Box::new(NullTracker), false);
        let mut noisy = mk(Box::new(MetaOnAct), false);
        for i in 0..16u64 {
            let r = rd(i, (i % 8) as u8, (i % 4) as u8, 100 + i as u32, 0, 0);
            assert!(plain.enqueue(r));
            assert!(noisy.enqueue(r));
        }
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        run(&mut plain, 0, 5000, &mut d1);
        run(&mut noisy, 0, 5000, &mut d2);
        assert_eq!(d1.len(), 16);
        assert_eq!(d2.len(), 16);
        assert!(noisy.stats.counter_reads >= 16);
        assert!(noisy.stats.counter_writes >= 16);
        // Metadata contends for the same banks/bus.
        assert!(noisy.stats.activations > plain.stats.activations);
    }

    /// A tracker that requests a rank sweep at the first tREFI.
    struct SweepOnce {
        fired: bool,
    }
    impl RowHammerTracker for SweepOnce {
        fn name(&self) -> &'static str {
            "sweep-once"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn on_trefi(&mut self, _cycle: Cycle, actions: &mut Vec<TrackerAction>) {
            if !self.fired {
                self.fired = true;
                actions.push(TrackerAction::ResetSweep(ResetScope::Rank { channel: 0, rank: 0 }));
            }
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn reset_sweep_blocks_rank_for_millis() {
        let mut c = mk(Box::new(SweepOnce { fired: false }), true);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        // The sweep fires at the first tREFI but must wait out the REF block.
        run(&mut c, 0, trefi + 2000, &mut done);
        assert_eq!(c.stats.reset_sweeps, 1);
        // A read to rank 0 enqueued now completes only after the sweep.
        assert!(c.enqueue(rd(9, 0, 0, 5, 0, trefi + 2000)));
        let sweep_cycles = c.dram().timing().sweep_block(64 * 1024);
        run(&mut c, trefi + 2000, trefi + 2000 + sweep_cycles + 20_000, &mut done);
        assert_eq!(done, vec![9]);
        assert!(c.stats.mitigation_block_cycles >= sweep_cycles);
    }

    /// Throttling tracker: delays the first ACT by a fixed amount.
    struct Throttler(Cycle);
    impl RowHammerTracker for Throttler {
        fn name(&self) -> &'static str {
            "throttle"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn activation_delay(&mut self, _a: &DramAddr, _s: SourceId, _c: Cycle) -> Cycle {
            std::mem::take(&mut self.0)
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn throttled_acts_are_delayed() {
        let mut fast = mk(Box::new(NullTracker), false);
        let mut slow = mk(Box::new(Throttler(500)), false);
        assert!(fast.enqueue(rd(1, 0, 0, 10, 0, 0)));
        assert!(slow.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut df = Vec::new();
        let mut ds = Vec::new();
        for now in 0..2000 {
            fast.tick(now);
            slow.tick(now);
            fast.pop_completions(now, &mut df);
            slow.pop_completions(now, &mut ds);
            if !df.is_empty() && ds.is_empty() {
                // fast finished first, as expected
            }
        }
        assert_eq!(df.len(), 1);
        assert_eq!(ds.len(), 1);
    }

    /// Counts every hook invocation through shared counters so the test
    /// can read them after the tracker moves into the controller
    /// (`Arc`/atomics rather than `Rc`/`Cell` because `RowHammerTracker`
    /// is `Send` — shards travel to worker threads).
    struct HookCounter {
        trefi: std::sync::Arc<std::sync::atomic::AtomicU64>,
        trefw: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl RowHammerTracker for HookCounter {
        fn name(&self) -> &'static str {
            "hook-counter"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn on_trefi(&mut self, _c: Cycle, _a: &mut Vec<TrackerAction>) {
            self.trefi.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn on_refresh_window(&mut self, _c: Cycle, _a: &mut Vec<TrackerAction>) {
            self.trefw.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn time_jump_owes_every_hook_boundary() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A tick landing several tREFI/tREFW past the deadlines must fire
        // one hook per owed boundary, not one per call.
        let trefi_count = std::sync::Arc::new(AtomicU64::new(0));
        let trefw_count = std::sync::Arc::new(AtomicU64::new(0));
        let tracker = HookCounter {
            trefi: std::sync::Arc::clone(&trefi_count),
            trefw: std::sync::Arc::clone(&trefw_count),
        };
        let mut c = mk(Box::new(tracker), false);
        let trefi = c.dram().timing().t_refi;
        let trefw = c.dram().timing().t_refw;
        c.tick(0);
        assert_eq!(trefi_count.load(Ordering::Relaxed), 0, "no boundary owed at cycle 0");
        // Jump straight past 5 tREFI boundaries in one call.
        c.tick(5 * trefi + 1);
        assert_eq!(trefi_count.load(Ordering::Relaxed), 5, "every owed tREFI hook must fire");
        // Jump past 3 tREFW boundaries; tREFI hooks catch up alongside.
        c.tick(3 * trefw + 1);
        assert_eq!(trefw_count.load(Ordering::Relaxed), 3, "every owed tREFW hook must fire");
        assert_eq!(
            trefi_count.load(Ordering::Relaxed),
            (3 * trefw + 1) / trefi,
            "tREFI hooks catch up too"
        );
        // REF boundaries also catch up. A full back-payment is not owed —
        // once the pile of instantaneous REFs blocks the rank further than
        // 8 tREFI out, the catch-up loop deliberately skips the rest (the
        // same guard the reset-sweep path uses) — but the pre-fix behaviour
        // of one REF per rank per `tick` call (≤ 6 here) must be far
        // exceeded, and no deadline may be left in the past.
        assert!(
            c.stats.refreshes > 100,
            "REF catch-up still pays one boundary per call: {}",
            c.stats.refreshes
        );
        let t_end = 3 * trefw + 1;
        assert!(c.next_ref.iter().all(|&r| r > t_end), "stale REF deadline survived the jump");
    }

    #[test]
    fn next_event_is_a_sound_decision_bound() {
        // Idle controller: the bound is the first REF/hook deadline, and no
        // observable state changes while ticking densely up to (but not
        // including) that cycle.
        let mut c = mk(Box::new(NullTracker), false);
        let bound = c.next_event(0);
        assert!(bound > 1, "idle controller must allow skipping");
        let before = c.stats;
        for now in 0..bound {
            c.tick(now);
        }
        assert_eq!(c.stats, before, "tick acted before the reported bound");
        c.tick(bound);
        assert!(c.stats.refreshes > 0, "bound cycle itself performs the REF");

        // A ready request makes `now` itself the decision point.
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        assert_eq!(c.next_event(0), 0, "ready request must demand an immediate tick");

        // A rank-wide sweep block lets the controller skip ahead even with
        // a queued request behind it.
        let mut c = mk(Box::new(SweepOnce { fired: false }), false);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        run(&mut c, 0, trefi + 2000, &mut done);
        assert_eq!(c.stats.reset_sweeps, 1);
        assert!(c.enqueue(rd(7, 0, 0, 5, 0, trefi + 2000)));
        let now = trefi + 2000;
        let bound = c.next_event(now);
        let unblock = c.dram().rank_blocked_until(0);
        assert!(unblock > now + 1000, "sweep must block the rank for a while");
        let refresh_floor =
            c.next_ref.iter().copied().min().unwrap().min(c.next_trefi_hook).min(c.next_trefw);
        assert_eq!(bound, unblock.min(refresh_floor), "skip to unblock or next REF deadline");
        assert!(bound > now + 1, "blocked backlog must not force dense ticking");
    }

    #[test]
    fn quiet_ticks_are_exact_noops_under_load() {
        // Drive a controller with mixed hit/conflict traffic and verify
        // that every cycle the cached bound declares quiet really is a
        // no-op: a shadow controller in naive mode (which cannot skip)
        // produces identical stats and completions at every cycle.
        let mut fast = mk(Box::new(EveryN { n: 7, count: 0 }), false);
        let mut oracle = mk(Box::new(EveryN { n: 7, count: 0 }), false);
        oracle.set_naive_scan(true);
        let mut df = Vec::new();
        let mut dn = Vec::new();
        let mut id = 0u64;
        for now in 0..30_000u64 {
            if now % 37 == 0 && fast.can_accept_read() {
                let r = rd(id, (id % 8) as u8, (id % 4) as u8, (id % 13) as u32 * 3, 0, now);
                assert!(fast.enqueue(r));
                assert!(oracle.enqueue(r));
                id += 1;
            }
            fast.tick(now);
            oracle.tick(now);
            fast.pop_completions(now, &mut df);
            oracle.pop_completions(now, &mut dn);
            assert_eq!(fast.stats, oracle.stats, "diverged at cycle {now}");
            assert_eq!(df, dn, "completions diverged at cycle {now}");
        }
        assert!(fast.stats.reads > 0);
        assert!(fast.stats.vrr_commands > 0, "mitigation path exercised");
    }

    #[test]
    fn writes_drain_without_completions() {
        let mut c = mk(Box::new(NullTracker), false);
        let d = DramAddr::new(0, 0, 1, 1, 77, 0);
        let w = MemRequest::new(5, SourceId(0), AccessKind::Write, PhysAddr(0), d, 0);
        assert!(c.enqueue(w));
        let mut done = Vec::new();
        run(&mut c, 0, 3000, &mut done);
        assert!(done.is_empty(), "writes never produce completions");
        assert_eq!(c.stats.writes, 1);
    }

    #[test]
    fn metadata_stays_visible_under_queue_churn() {
        // Regression for the old `VecDeque::as_slices().0` scheduler bug:
        // once the metadata queue wrapped its ring buffer, requests in the
        // wrapped half were invisible to FR-FCFS until the deque happened
        // to straighten out. The per-bank layout must keep every metadata
        // request schedulable regardless of how many have been pushed and
        // popped before it, so sustained meta churn (every ACT emits a
        // read+write, far beyond the old deque's initial segment) must
        // retire all metadata within the run.
        let mut c = mk(Box::new(MetaOnAct), false);
        let mut done = Vec::new();
        let mut id = 0u64;
        for now in 0..120_000u64 {
            if now % 61 == 0 && c.can_accept_read() {
                assert!(c.enqueue(rd(id, (id % 8) as u8, (id % 4) as u8, id as u32 % 97, 0, now)));
                id += 1;
            }
            c.tick(now);
            c.pop_completions(now, &mut done);
        }
        assert!(c.stats.counter_reads + c.stats.counter_writes > 1500, "meta churn generated");
        // Let the queue fully drain with no new demand traffic.
        for now in 120_000u64..200_000 {
            c.tick(now);
            c.pop_completions(now, &mut done);
        }
        let (r, w, meta) = c.occupancy();
        assert_eq!(meta, 0, "metadata requests were left invisible to the scheduler");
        assert_eq!(r + w, 0);
        assert_eq!(
            c.stats.counter_reads + c.stats.counter_writes,
            c.stats.reads + c.stats.writes - done.len() as u64,
            "every generated metadata request must eventually issue"
        );
    }
}
