//! Memory controller model.
//!
//! One [`ChannelController`] per DDR5 channel. Responsibilities:
//!
//! * **Scheduling**: FR-FCFS — ready column commands (row hits) first,
//!   oldest first; then activations; precharges when the open row has no
//!   queued hits. Reads have priority over writes; writes drain in bursts
//!   once their queue passes a high-water mark.
//! * **Refresh management**: per-rank auto-refresh every tREFI, tracker
//!   hooks at tREFI and tREFW boundaries.
//! * **Mitigation execution**: victim-row refreshes (VRR / DRFMsb / RFMsb)
//!   for aggressors named by the tracker, full structure-reset sweeps, and
//!   tracker metadata traffic (counter reads/writes) injected into the
//!   request stream — the exact levers RowHammer Perf-Attacks pull.
//!
//! The controller emits its command stream as [`sim_core::MemEvent`]s
//! through a registered-sink API ([`ChannelController::set_event_capture`]
//! / [`ChannelController::drain_events`]): the harness drains the buffer
//! into whatever telemetry probes are attached — the ground-truth
//! RowHammer oracle is just one such client. With no sink registered
//! (the default) nothing is buffered, so performance sweeps pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dram::DramChannel;
use sim_core::addr::DramAddr;
use sim_core::config::MitigationKind;
use sim_core::events::MemEvent;
use sim_core::req::{AccessKind, MemRequest};
use sim_core::sched;
use sim_core::stats::MemStats;
use sim_core::time::Cycle;
use sim_core::tracker::{Activation, ResetScope, RowHammerTracker, TrackerAction};

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CtrlConfig {
    /// RowHammer threshold (forwarded to mitigation bookkeeping).
    pub nrh: u32,
    /// Victim rows refreshed each side of an aggressor.
    pub blast_radius: u8,
    /// Mitigation command flavour.
    pub mitigation: MitigationKind,
    /// Read-queue capacity (Busy above this).
    pub read_queue_cap: usize,
    /// Write-queue capacity.
    pub write_queue_cap: usize,
    /// Write drain high-water mark.
    pub write_drain_hi: usize,
    /// Tracker metadata queue capacity; demand ACTs stall above this,
    /// modelling Hydra's RCC-miss backpressure.
    pub counter_queue_cap: usize,
}

impl CtrlConfig {
    /// Defaults matching the paper's baseline.
    pub fn new(nrh: u32, blast_radius: u8, mitigation: MitigationKind) -> Self {
        Self {
            nrh,
            blast_radius,
            mitigation,
            read_queue_cap: 32,
            write_queue_cap: 32,
            write_drain_hi: 16,
            counter_queue_cap: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    /// Earliest issue cycle (throttling).
    not_before: Cycle,
    /// Tracker metadata gets scheduling priority.
    metadata: bool,
    /// Set when this request triggered an ACT (row-buffer miss).
    missed: bool,
    /// Set once the tracker's activation delay has been applied (the delay
    /// is a one-shot tax, not a recurring veto).
    taxed: bool,
}

/// One channel's memory controller.
pub struct ChannelController {
    channel: u8,
    cfg: CtrlConfig,
    dram: DramChannel,
    tracker: Box<dyn RowHammerTracker>,
    reads: Vec<Queued>,
    writes: Vec<Queued>,
    counter_q: VecDeque<Queued>,
    completions: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Aggressor rows awaiting a mitigation command, bucketed per bank.
    mit_q: Vec<VecDeque<DramAddr>>,
    /// Total entries across `mit_q`.
    mit_q_len: usize,
    /// Round-robin cursor over the buckets.
    mit_cursor: usize,
    /// Pending structure-reset sweeps.
    sweep_q: VecDeque<ResetScope>,
    /// Per (rank, bank) cycle until which mitigation work occupies the bank.
    mit_busy: Vec<Cycle>,
    next_ref: Vec<Cycle>,
    next_trefi_hook: Cycle,
    next_trefw: Cycle,
    draining_writes: bool,
    actions: Vec<TrackerAction>,
    next_meta_id: u64,
    /// Scratch for the precharge pass (persistent to avoid per-tick
    /// allocation): oldest conflicting request per bank, and whether the
    /// bank's open row serves someone, stamped by generation.
    pre_conflict: Vec<(u64, Option<DramAddr>, bool)>,
    pre_gen: u64,
    /// True while at least one event sink is registered; gates every
    /// event push so sink-free runs buffer nothing.
    capture_events: bool,
    /// Event buffer between [`ChannelController::drain_events`] calls.
    events: Vec<MemEvent>,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl std::fmt::Debug for ChannelController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelController")
            .field("channel", &self.channel)
            .field("tracker", &self.tracker.name())
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("mit_q", &self.mit_q_len)
            .finish_non_exhaustive()
    }
}

impl ChannelController {
    /// Creates a controller for `channel` with the given tracker.
    pub fn new(
        channel: u8,
        dram: DramChannel,
        tracker: Box<dyn RowHammerTracker>,
        cfg: CtrlConfig,
    ) -> Self {
        let geom = *dram.geometry();
        let ranks = geom.ranks as usize;
        let banks = geom.banks_per_rank() as usize;
        let trefi = dram.timing().t_refi;
        let trefw = dram.timing().t_refw;
        // Stagger rank refreshes across the tREFI interval.
        let next_ref =
            (0..ranks).map(|r| trefi + (r as Cycle * trefi) / ranks.max(1) as Cycle).collect();
        Self {
            channel,
            cfg,
            dram,
            tracker,
            reads: Vec::with_capacity(cfg.read_queue_cap),
            writes: Vec::with_capacity(cfg.write_queue_cap),
            counter_q: VecDeque::new(),
            completions: BinaryHeap::new(),
            mit_q: (0..ranks * banks).map(|_| VecDeque::new()).collect(),
            mit_q_len: 0,
            mit_cursor: 0,
            sweep_q: VecDeque::new(),
            mit_busy: vec![0; ranks * banks],
            next_ref,
            next_trefi_hook: trefi,
            next_trefw: trefw,
            draining_writes: false,
            actions: Vec::new(),
            next_meta_id: u64::MAX / 2,
            pre_conflict: vec![(0, None, false); ranks * banks],
            pre_gen: 0,
            capture_events: false,
            events: Vec::new(),
            stats: MemStats::default(),
        }
    }

    /// Registers (or withdraws) interest in the event stream. While off —
    /// the default — no events are buffered, which is the zero-overhead
    /// fast path performance sweeps rely on.
    pub fn set_event_capture(&mut self, on: bool) {
        self.capture_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// True while an event sink is registered.
    pub fn captures_events(&self) -> bool {
        self.capture_events
    }

    /// Hands every buffered event to `sink` in issue order and clears the
    /// buffer. The harness fans these out to all attached telemetry
    /// probes; the RowHammer oracle is one such client.
    pub fn drain_events(&mut self, sink: &mut dyn FnMut(&MemEvent)) {
        for ev in self.events.drain(..) {
            sink(&ev);
        }
    }

    /// The underlying DRAM channel (for energy/statistics readout).
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// The tracker (for storage readout).
    pub fn tracker(&self) -> &dyn RowHammerTracker {
        self.tracker.as_ref()
    }

    /// Queue occupancy `(reads, writes, metadata)`.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.reads.len(), self.writes.len(), self.counter_q.len())
    }

    /// True if a read can be accepted.
    pub fn can_accept_read(&self) -> bool {
        self.reads.len() < self.cfg.read_queue_cap
    }

    /// True if a write can be accepted.
    pub fn can_accept_write(&self) -> bool {
        self.writes.len() < self.cfg.write_queue_cap
    }

    /// Enqueues a demand request. Returns false (and drops it) when the
    /// matching queue is full — the caller must retry.
    pub fn enqueue(&mut self, req: MemRequest) -> bool {
        debug_assert_eq!(req.dram.channel, self.channel);
        let q = Queued { req, not_before: 0, metadata: false, missed: false, taxed: false };
        match req.kind {
            AccessKind::Read => {
                if self.reads.len() >= self.cfg.read_queue_cap {
                    return false;
                }
                self.reads.push(q);
                true
            }
            AccessKind::Write => {
                if self.writes.len() >= self.cfg.write_queue_cap {
                    return false;
                }
                self.writes.push(q);
                true
            }
        }
    }

    /// Completed demand-read request ids due at or before `now`.
    pub fn pop_completions(&mut self, now: Cycle, out: &mut Vec<u64>) {
        while let Some(Reverse((t, id))) = self.completions.peek().copied() {
            if t > now {
                break;
            }
            self.completions.pop();
            out.push(id);
        }
    }

    /// Advances the controller one bus cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.do_refresh(now);
        self.run_tracker_hooks(now);
        self.issue_mitigations(now);
        self.schedule(now);
    }

    fn do_refresh(&mut self, now: Cycle) {
        // Catch-up loop: `now` may jump several tREFI at once (time-skipping
        // engine, or dense ticking resuming after a long sweep block), and
        // every owed REF boundary must be processed, not just the first.
        let trefi = self.dram.timing().t_refi;
        for rank in 0..self.next_ref.len() {
            while now >= self.next_ref[rank] {
                let blocked_until = self.dram.rank_blocked_until(rank as u8);
                if blocked_until > now + 8 * trefi {
                    // The rank is mid reset-sweep, which refreshes every row
                    // anyway; skip the owed REF rather than piling it up.
                    self.next_ref[rank] += trefi;
                    continue;
                }
                let at = now.max(blocked_until);
                self.dram.issue_ref(rank as u8, at);
                self.stats.refreshes += 1;
                self.next_ref[rank] += trefi;
            }
        }
    }

    fn run_tracker_hooks(&mut self, now: Cycle) {
        // Catch-up loops, for the same reason as in `do_refresh`: a jump
        // across k boundaries owes the tracker k hook invocations.
        let t = *self.dram.timing();
        while now >= self.next_trefi_hook {
            self.tracker.on_trefi(now, &mut self.actions);
            self.next_trefi_hook += t.t_refi;
            self.drain_actions(now);
        }
        while now >= self.next_trefw {
            self.tracker.on_refresh_window(now, &mut self.actions);
            if self.capture_events {
                self.events.push(MemEvent::RefreshWindowEnd { cycle: now });
            }
            self.next_trefw += t.t_refw;
            self.drain_actions(now);
        }
    }

    fn drain_actions(&mut self, now: Cycle) {
        let actions = std::mem::take(&mut self.actions);
        for a in &actions {
            match *a {
                TrackerAction::MitigateRow(addr) => {
                    let slot = self.mit_slot(&addr);
                    self.mit_q[slot].push_back(addr);
                    self.mit_q_len += 1;
                }
                TrackerAction::ResetSweep(scope) => self.sweep_q.push_back(scope),
                TrackerAction::CounterRead(addr) => self.push_meta(addr, AccessKind::Read, now),
                TrackerAction::CounterWrite(addr) => self.push_meta(addr, AccessKind::Write, now),
            }
        }
        self.actions = actions;
        self.actions.clear();
    }

    fn push_meta(&mut self, addr: DramAddr, kind: AccessKind, now: Cycle) {
        let id = self.next_meta_id;
        self.next_meta_id += 1;
        let phys = self.dram.geometry().encode(&addr);
        let req = MemRequest::new(id, sim_core::req::SourceId::TRACKER, kind, phys, addr, now);
        self.counter_q.push_back(Queued {
            req,
            not_before: now,
            metadata: true,
            missed: false,
            taxed: false,
        });
        match kind {
            AccessKind::Read => self.stats.counter_reads += 1,
            AccessKind::Write => self.stats.counter_writes += 1,
        }
    }

    fn mit_slot(&self, addr: &DramAddr) -> usize {
        let geom = self.dram.geometry();
        addr.rank as usize * geom.banks_per_rank() as usize + geom.bank_in_rank(addr) as usize
    }

    fn issue_mitigations(&mut self, now: Cycle) {
        // Structure-reset sweeps take absolute priority.
        while let Some(scope) = self.sweep_q.front().copied() {
            // Only start a sweep when the scope isn't already mid-sweep.
            let rank_to_check: Vec<u8> = match scope {
                ResetScope::Rank { rank, .. } => vec![rank],
                ResetScope::Channel { .. } => (0..self.dram.geometry().ranks).collect(),
            };
            if rank_to_check.iter().any(|&r| self.dram.rank_blocked(r, now)) {
                break;
            }
            self.sweep_q.pop_front();
            let until = self.dram.issue_reset_sweep(scope, now);
            self.stats.reset_sweeps += 1;
            self.stats.mitigation_block_cycles += until - now;
            if self.capture_events {
                self.events.push(MemEvent::SweepRefreshed { scope, cycle: until });
            }
        }

        // Victim-row refreshes: round-robin over per-bank buckets, issuing
        // to banks free of mitigation work. Bounded scan per tick.
        if self.mit_q_len > 0 {
            let nbanks = self.mit_q.len();
            let scan = nbanks.min(8);
            for step in 0..scan {
                let slot = (self.mit_cursor + step) % nbanks;
                if self.mit_q[slot].is_empty() || self.mit_busy[slot] > now {
                    continue;
                }
                let addr = self.mit_q[slot][0];
                if self.dram.rank_blocked(addr.rank, now) {
                    continue;
                }
                if !self.dram.is_bank_closed(&addr) {
                    // Mitigation commands need the bank precharged; close it
                    // and issue on a later tick.
                    if self.dram.earliest_pre(&addr, now) <= now {
                        self.dram.issue_pre(&addr, now);
                        self.stats.precharges += 1;
                    }
                    continue;
                }
                self.mit_q[slot].pop_front();
                self.mit_q_len -= 1;
                let until = self.dram.issue_mitigation(
                    &addr,
                    self.cfg.mitigation,
                    self.cfg.blast_radius,
                    now,
                );
                match self.cfg.mitigation {
                    MitigationKind::Vrr => self.stats.vrr_commands += 1,
                    _ => self.stats.rfm_commands += 1,
                }
                self.stats.victim_rows_refreshed += 2 * self.cfg.blast_radius as u64;
                self.stats.mitigation_block_cycles += until - now;
                self.mit_busy[slot] = until;
                if self.cfg.mitigation != MitigationKind::Vrr {
                    // Same-bank commands occupy the bank in every group.
                    let geom = *self.dram.geometry();
                    for bg in 0..geom.bank_groups {
                        let a = DramAddr { bank_group: bg, ..addr };
                        let sl = self.mit_slot(&a);
                        self.mit_busy[sl] = self.mit_busy[sl].max(until);
                    }
                }
                if self.capture_events {
                    self.events.push(MemEvent::VictimsRefreshed {
                        aggressor: addr,
                        blast_radius: self.cfg.blast_radius,
                        cycle: until,
                    });
                }
            }
            self.mit_cursor = (self.mit_cursor + 1) % nbanks;
        }
    }

    /// FR-FCFS: pick one command for this cycle.
    fn schedule(&mut self, now: Cycle) {
        // Decide read-vs-write phase.
        if self.writes.len() >= self.cfg.write_drain_hi {
            self.draining_writes = true;
        }
        if self.writes.is_empty() {
            self.draining_writes = false;
        }

        if self.reads.is_empty() && self.writes.is_empty() && self.counter_q.is_empty() {
            return;
        }
        // 1. Column command for a queued request whose row is open.
        if self.try_issue_column(now) {
            return;
        }
        // 2. ACT for a request whose bank is closed.
        if self.try_issue_act(now) {
            return;
        }
        // 3. PRE for a request whose bank holds a conflicting row.
        self.try_issue_pre(now);
    }

    /// Iterates the scheduling pools in priority order: metadata, then
    /// demand reads (or writes when draining).
    fn pools(&self) -> [&[Queued]; 3] {
        let counter: &[Queued] = self.counter_q.as_slices().0;
        if self.draining_writes {
            [counter, &self.writes, &self.reads]
        } else {
            [counter, &self.reads, &self.writes]
        }
    }

    fn try_issue_column(&mut self, now: Cycle) -> bool {
        let mut best: Option<(usize, usize, Cycle)> = None; // (pool, idx, arrival)
        for (p, pool) in self.pools().iter().enumerate() {
            for (i, q) in pool.iter().enumerate() {
                if q.not_before > now {
                    continue;
                }
                if self.dram.is_row_hit(&q.req.dram)
                    && self.dram.earliest_col(&q.req.dram, now) <= now
                    && best.is_none_or(|(_, _, arr)| q.req.arrival < arr)
                {
                    best = Some((p, i, q.req.arrival));
                }
            }
            if best.is_some() {
                break; // higher-priority pool wins outright
            }
        }
        let Some((pool, idx, _)) = best else { return false };
        let q = self.remove_from_pool(pool, idx);
        let done = match q.req.kind {
            AccessKind::Read => {
                let d = self.dram.issue_read(&q.req.dram, now);
                self.stats.reads += 1;
                d
            }
            AccessKind::Write => {
                let d = self.dram.issue_write(&q.req.dram, now);
                self.stats.writes += 1;
                d
            }
        };
        if !q.metadata {
            if q.missed {
                self.stats.row_misses += 1;
            } else {
                self.stats.row_hits += 1;
            }
        }
        if q.req.is_demand_read() {
            self.completions.push(Reverse((done, q.req.id)));
        }
        true
    }

    fn try_issue_act(&mut self, now: Cycle) -> bool {
        // Backpressure: while the metadata queue is saturated, demand ACTs
        // stall (Hydra/START counter updates gate forward progress).
        let meta_saturated = self.counter_q.len() >= self.cfg.counter_queue_cap;
        let mut best: Option<(usize, usize, Cycle)> = None;
        for (p, pool) in self.pools().iter().enumerate() {
            let is_demand_pool = p > 0;
            if is_demand_pool && meta_saturated {
                break;
            }
            for (i, q) in pool.iter().enumerate() {
                if q.not_before > now {
                    continue;
                }
                let a = &q.req.dram;
                if self.dram.is_bank_closed(a)
                    && self.mit_busy[self.mit_slot(a)] <= now
                    && self.dram.earliest_act(a, now) <= now
                    && best.is_none_or(|(_, _, arr)| q.req.arrival < arr)
                {
                    best = Some((p, i, q.req.arrival));
                }
            }
            if best.is_some() {
                break;
            }
        }
        let Some((pool, idx, _)) = best else { return false };
        // Consult the tracker's throttle before committing (once per
        // request: the delay is a tax paid ahead of the ACT).
        let (addr, source, taxed) = {
            let q = &self.pool_slice(pool)[idx];
            (q.req.dram, q.req.source, q.taxed)
        };
        if !taxed {
            let delay = self.tracker.activation_delay(&addr, source, now);
            if delay > 0 {
                self.set_not_before(pool, idx, now + delay);
                return false;
            }
        }
        self.dram.issue_act(&addr, now);
        self.stats.activations += 1;
        self.mark_missed(pool, idx);
        if self.capture_events {
            self.events.push(MemEvent::Activate { addr, cycle: now });
        }
        // Inform the tracker and execute its reactions.
        let act = Activation { addr, source, cycle: now };
        self.tracker.on_activation(act, &mut self.actions);
        self.drain_actions(now);
        true
    }

    fn try_issue_pre(&mut self, now: Cycle) -> bool {
        // One pass: for each bank with an open row, find whether any queued
        // request hits that row ("serves") and whether some request
        // conflicts with it. Precharge the first conflicting, unserved
        // bank. Scratch entries are invalidated lazily by generation stamp.
        self.pre_gen += 1;
        let gen = self.pre_gen;
        let mut touched: [u16; 16] = [0; 16];
        let mut ntouched = 0usize;
        // Take the scratch table out so the pool borrows don't conflict.
        let mut scratch = std::mem::take(&mut self.pre_conflict);
        for pool in self.pools() {
            for q in pool.iter() {
                let a = &q.req.dram;
                if let Some(open) = self.dram.open_row(a) {
                    let slot = self.mit_slot(a);
                    let e = &mut scratch[slot];
                    if e.0 != gen {
                        *e = (gen, None, false);
                        if ntouched < touched.len() {
                            touched[ntouched] = slot as u16;
                            ntouched += 1;
                        }
                    }
                    if open == a.row {
                        e.2 = true;
                    } else if e.1.is_none() {
                        e.1 = Some(*a);
                    }
                }
            }
        }
        self.pre_conflict = scratch;
        // Visit the touched banks (fall back to a full scan if more banks
        // were touched than the inline scratch records).
        let full_scan = ntouched >= touched.len();
        let limit = if full_scan { self.pre_conflict.len() } else { ntouched };
        // `i` indexes either `pre_conflict` directly (full scan) or through
        // `touched`, so a plain range loop is the clearest form.
        #[allow(clippy::needless_range_loop)]
        for i in 0..limit {
            let slot = if full_scan { i } else { touched[i] as usize };
            let (g, conflict, served) = self.pre_conflict[slot];
            if g != gen || served {
                continue;
            }
            if let Some(a) = conflict {
                if self.dram.earliest_pre(&a, now) <= now {
                    self.dram.issue_pre(&a, now);
                    self.stats.precharges += 1;
                    return true;
                }
            }
        }
        false
    }

    fn pool_slice(&self, pool: usize) -> &[Queued] {
        match (pool, self.draining_writes) {
            (0, _) => self.counter_q.as_slices().0,
            (1, false) | (2, true) => &self.reads,
            (1, true) | (2, false) => &self.writes,
            _ => unreachable!(),
        }
    }

    fn mark_missed(&mut self, pool: usize, idx: usize) {
        match (pool, self.draining_writes) {
            (0, _) => self.counter_q[idx].missed = true,
            (1, false) | (2, true) => self.reads[idx].missed = true,
            (1, true) | (2, false) => self.writes[idx].missed = true,
            _ => unreachable!(),
        }
    }

    fn set_not_before(&mut self, pool: usize, idx: usize, t: Cycle) {
        let q = match (pool, self.draining_writes) {
            (0, _) => &mut self.counter_q[idx],
            (1, false) | (2, true) => &mut self.reads[idx],
            (1, true) | (2, false) => &mut self.writes[idx],
            _ => unreachable!(),
        };
        q.not_before = t;
        q.taxed = true;
    }

    fn remove_from_pool(&mut self, pool: usize, idx: usize) -> Queued {
        match (pool, self.draining_writes) {
            (0, _) => self.counter_q.remove(idx).expect("metadata index valid"),
            (1, false) | (2, true) => self.reads.swap_remove(idx),
            (1, true) | (2, false) => self.writes.swap_remove(idx),
            _ => unreachable!(),
        }
    }

    /// Pending mitigation work (aggressors + sweeps) — used by tests.
    pub fn pending_mitigations(&self) -> usize {
        self.mit_q_len + self.sweep_q.len()
    }

    /// Lower bound on the next cycle at which [`ChannelController::tick`]
    /// could have any observable effect (see [`sim_core::sched::NextEvent`]).
    ///
    /// Contributors, mirroring what `tick` does:
    ///
    /// * the per-rank REF deadlines and the tREFI / tREFW tracker hooks,
    /// * the earliest queued completion,
    /// * queued demand/metadata requests — a request cannot act before its
    ///   throttle release (`not_before`) nor before the DRAM timing gate of
    ///   the command it needs next (column for a pending row hit, ACT for
    ///   a closed bank, PRE for a row conflict; each of these folds in the
    ///   rank's REF/sweep block), so tRCD/CAS waits and multi-millisecond
    ///   sweep blocks are skipped alike; any request that might issue
    ///   sooner forces the dense answer `now + 1`,
    /// * a pending reset sweep: its scope's unblock cycle,
    /// * any victim-row mitigation backlog: always dense (`now + 1`),
    ///   because the round-robin cursor advances every tick it is non-empty.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let dense = sched::at_least_next_cycle(0, now);
        let mut t = sched::earliest([self.next_trefi_hook, self.next_trefw]);
        for &r in &self.next_ref {
            t = t.min(r);
        }
        if let Some(&Reverse((c, _))) = self.completions.peek() {
            t = t.min(c);
        }
        if self.mit_q_len > 0 {
            return dense;
        }
        if let Some(&scope) = self.sweep_q.front() {
            let start = self.dram.scope_unblocked_at(scope);
            if start <= now {
                return dense;
            }
            t = t.min(start);
        }
        for q in self.reads.iter().chain(self.writes.iter()).chain(self.counter_q.iter()) {
            let a = &q.req.dram;
            // Earliest cycle the command this request needs next could
            // legally issue (a lower bound: scheduler-side vetoes like
            // mitigation-busy banks or metadata backpressure only push the
            // real issue later, which merely costs a dense probe then).
            let timing_gate = if self.dram.is_row_hit(a) {
                self.dram.earliest_col(a, now)
            } else if self.dram.is_bank_closed(a) {
                self.dram.earliest_act(a, now)
            } else {
                self.dram.earliest_pre(a, now)
            };
            let gate = q.not_before.max(timing_gate);
            if gate <= now {
                // Might be schedulable this very cycle — stay dense.
                return dense;
            }
            t = t.min(gate);
        }
        sched::at_least_next_cycle(t, now)
    }
}

impl sched::NextEvent for ChannelController {
    fn next_event(&self, now: Cycle) -> Cycle {
        ChannelController::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::TimingParams;
    use sim_core::addr::{Geometry, PhysAddr};
    use sim_core::req::SourceId;
    use sim_core::tracker::{NullTracker, StorageOverhead};

    fn mk(tracker: Box<dyn RowHammerTracker>, events: bool) -> ChannelController {
        let geom = Geometry::paper_baseline();
        let dram = DramChannel::new(geom, TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        let mut ctrl = ChannelController::new(0, dram, tracker, cfg);
        ctrl.set_event_capture(events);
        ctrl
    }

    fn rd(id: u64, bg: u8, bank: u8, row: u32, col: u16, at: Cycle) -> MemRequest {
        let d = DramAddr::new(0, 0, bg, bank, row, col);
        MemRequest::new(id, SourceId(0), AccessKind::Read, PhysAddr(0), d, at)
    }

    fn run(ctrl: &mut ChannelController, from: Cycle, to: Cycle, done: &mut Vec<u64>) {
        for now in from..to {
            ctrl.tick(now);
            ctrl.pop_completions(now, done);
        }
    }

    #[test]
    fn single_read_completes() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 400, &mut done);
        assert_eq!(done, vec![1]);
        assert_eq!(c.stats.activations, 1);
        assert_eq!(c.stats.reads, 1);
        assert_eq!(c.stats.row_misses, 1);
    }

    #[test]
    fn row_hits_skip_activation() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        assert!(c.enqueue(rd(2, 0, 0, 10, 3, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 600, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats.activations, 1, "second access rides the open row");
        assert_eq!(c.stats.row_hits, 1);
    }

    #[test]
    fn conflicting_rows_precharge() {
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        assert!(c.enqueue(rd(2, 0, 0, 11, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(done.len(), 2);
        assert_eq!(c.stats.activations, 2);
        assert!(c.stats.precharges >= 1);
    }

    #[test]
    fn queue_capacity_backpressures() {
        let mut c = mk(Box::new(NullTracker), false);
        for i in 0..40 {
            let ok = c.enqueue(rd(i, (i % 8) as u8, 0, i as u32, 0, 0));
            assert_eq!(ok, i < 32, "request {i}");
        }
    }

    #[test]
    fn refresh_happens_every_trefi() {
        let mut c = mk(Box::new(NullTracker), false);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        run(&mut c, 0, trefi * 4 + 10, &mut done);
        // 2 ranks x ~3-4 refreshes.
        assert!((6..=9).contains(&c.stats.refreshes), "{}", c.stats.refreshes);
    }

    /// A tracker that mitigates every 8th activation of any row.
    struct EveryN {
        n: u32,
        count: u32,
    }
    impl RowHammerTracker for EveryN {
        fn name(&self) -> &'static str {
            "every-n"
        }
        fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
            self.count += 1;
            if self.count.is_multiple_of(self.n) {
                actions.push(TrackerAction::MitigateRow(act.addr));
            }
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn tracker_mitigations_execute_and_block_banks() {
        let mut c = mk(Box::new(EveryN { n: 1, count: 0 }), true);
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(c.stats.vrr_commands, 1);
        assert_eq!(c.stats.victim_rows_refreshed, 2);
        let mut drained = Vec::new();
        c.drain_events(&mut |ev| drained.push(*ev));
        assert!(drained.iter().any(|e| matches!(e, MemEvent::VictimsRefreshed { .. })));
        // The buffer hands everything over exactly once.
        let mut again = Vec::new();
        c.drain_events(&mut |ev| again.push(*ev));
        assert!(again.is_empty(), "drain must clear the buffer");
    }

    #[test]
    fn no_sink_means_no_buffered_events() {
        // The fast path: without a registered sink the controller must not
        // accumulate events (a long sweep would otherwise leak memory and
        // time into probe-free runs).
        let mut c = mk(Box::new(EveryN { n: 1, count: 0 }), false);
        assert!(!c.captures_events());
        assert!(c.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut done = Vec::new();
        run(&mut c, 0, 2000, &mut done);
        assert_eq!(c.stats.vrr_commands, 1, "mitigation work still happens");
        let mut drained = 0;
        c.drain_events(&mut |_| drained += 1);
        assert_eq!(drained, 0, "nothing may be buffered without a sink");
    }

    /// A tracker that asks for counter traffic on each ACT (Hydra-like).
    struct MetaOnAct;
    impl RowHammerTracker for MetaOnAct {
        fn name(&self) -> &'static str {
            "meta"
        }
        fn on_activation(&mut self, act: Activation, actions: &mut Vec<TrackerAction>) {
            let meta = DramAddr { row: 0xFFFF, col: 0, ..act.addr };
            actions.push(TrackerAction::CounterRead(meta));
            actions.push(TrackerAction::CounterWrite(meta));
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn counter_traffic_consumes_bandwidth() {
        let mut plain = mk(Box::new(NullTracker), false);
        let mut noisy = mk(Box::new(MetaOnAct), false);
        for i in 0..16u64 {
            let r = rd(i, (i % 8) as u8, (i % 4) as u8, 100 + i as u32, 0, 0);
            assert!(plain.enqueue(r));
            assert!(noisy.enqueue(r));
        }
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        run(&mut plain, 0, 5000, &mut d1);
        run(&mut noisy, 0, 5000, &mut d2);
        assert_eq!(d1.len(), 16);
        assert_eq!(d2.len(), 16);
        assert!(noisy.stats.counter_reads >= 16);
        assert!(noisy.stats.counter_writes >= 16);
        // Metadata contends for the same banks/bus.
        assert!(noisy.stats.activations > plain.stats.activations);
    }

    /// A tracker that requests a rank sweep at the first tREFI.
    struct SweepOnce {
        fired: bool,
    }
    impl RowHammerTracker for SweepOnce {
        fn name(&self) -> &'static str {
            "sweep-once"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn on_trefi(&mut self, _cycle: Cycle, actions: &mut Vec<TrackerAction>) {
            if !self.fired {
                self.fired = true;
                actions.push(TrackerAction::ResetSweep(ResetScope::Rank { channel: 0, rank: 0 }));
            }
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn reset_sweep_blocks_rank_for_millis() {
        let mut c = mk(Box::new(SweepOnce { fired: false }), true);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        // The sweep fires at the first tREFI but must wait out the REF block.
        run(&mut c, 0, trefi + 2000, &mut done);
        assert_eq!(c.stats.reset_sweeps, 1);
        // A read to rank 0 enqueued now completes only after the sweep.
        assert!(c.enqueue(rd(9, 0, 0, 5, 0, trefi + 2000)));
        let sweep_cycles = c.dram().timing().sweep_block(64 * 1024);
        run(&mut c, trefi + 2000, trefi + 2000 + sweep_cycles + 20_000, &mut done);
        assert_eq!(done, vec![9]);
        assert!(c.stats.mitigation_block_cycles >= sweep_cycles);
    }

    /// Throttling tracker: delays the first ACT by a fixed amount.
    struct Throttler(Cycle);
    impl RowHammerTracker for Throttler {
        fn name(&self) -> &'static str {
            "throttle"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn activation_delay(&mut self, _a: &DramAddr, _s: SourceId, _c: Cycle) -> Cycle {
            std::mem::take(&mut self.0)
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn throttled_acts_are_delayed() {
        let mut fast = mk(Box::new(NullTracker), false);
        let mut slow = mk(Box::new(Throttler(500)), false);
        assert!(fast.enqueue(rd(1, 0, 0, 10, 0, 0)));
        assert!(slow.enqueue(rd(1, 0, 0, 10, 0, 0)));
        let mut df = Vec::new();
        let mut ds = Vec::new();
        for now in 0..2000 {
            fast.tick(now);
            slow.tick(now);
            fast.pop_completions(now, &mut df);
            slow.pop_completions(now, &mut ds);
            if !df.is_empty() && ds.is_empty() {
                // fast finished first, as expected
            }
        }
        assert_eq!(df.len(), 1);
        assert_eq!(ds.len(), 1);
    }

    /// Counts every hook invocation through shared cells so the test can
    /// read them after the tracker moves into the controller.
    struct HookCounter {
        trefi: std::rc::Rc<std::cell::Cell<u64>>,
        trefw: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl RowHammerTracker for HookCounter {
        fn name(&self) -> &'static str {
            "hook-counter"
        }
        fn on_activation(&mut self, _: Activation, _: &mut Vec<TrackerAction>) {}
        fn on_trefi(&mut self, _c: Cycle, _a: &mut Vec<TrackerAction>) {
            self.trefi.set(self.trefi.get() + 1);
        }
        fn on_refresh_window(&mut self, _c: Cycle, _a: &mut Vec<TrackerAction>) {
            self.trefw.set(self.trefw.get() + 1);
        }
        fn storage_overhead(&self) -> StorageOverhead {
            StorageOverhead::default()
        }
    }

    #[test]
    fn time_jump_owes_every_hook_boundary() {
        // A tick landing several tREFI/tREFW past the deadlines must fire
        // one hook per owed boundary, not one per call.
        let trefi_count = std::rc::Rc::new(std::cell::Cell::new(0));
        let trefw_count = std::rc::Rc::new(std::cell::Cell::new(0));
        let tracker = HookCounter {
            trefi: std::rc::Rc::clone(&trefi_count),
            trefw: std::rc::Rc::clone(&trefw_count),
        };
        let mut c = mk(Box::new(tracker), false);
        let trefi = c.dram().timing().t_refi;
        let trefw = c.dram().timing().t_refw;
        c.tick(0);
        assert_eq!(trefi_count.get(), 0, "no boundary owed at cycle 0");
        // Jump straight past 5 tREFI boundaries in one call.
        c.tick(5 * trefi + 1);
        assert_eq!(trefi_count.get(), 5, "every owed tREFI hook must fire");
        // Jump past 3 tREFW boundaries; tREFI hooks catch up alongside.
        c.tick(3 * trefw + 1);
        assert_eq!(trefw_count.get(), 3, "every owed tREFW hook must fire");
        assert_eq!(trefi_count.get(), (3 * trefw + 1) / trefi, "tREFI hooks catch up too");
        // REF boundaries also catch up. A full back-payment is not owed —
        // once the pile of instantaneous REFs blocks the rank further than
        // 8 tREFI out, the catch-up loop deliberately skips the rest (the
        // same guard the reset-sweep path uses) — but the pre-fix behaviour
        // of one REF per rank per `tick` call (≤ 6 here) must be far
        // exceeded, and no deadline may be left in the past.
        assert!(
            c.stats.refreshes > 100,
            "REF catch-up still pays one boundary per call: {}",
            c.stats.refreshes
        );
        let t_end = 3 * trefw + 1;
        assert!(c.next_ref.iter().all(|&r| r > t_end), "stale REF deadline survived the jump");
    }

    #[test]
    fn next_event_is_a_sound_lower_bound() {
        // Idle controller: the bound is the first REF/hook deadline, and no
        // observable state changes while ticking densely up to (but not
        // including) that cycle.
        let mut c = mk(Box::new(NullTracker), false);
        let bound = c.next_event(0);
        assert!(bound > 1, "idle controller must allow skipping");
        let before = c.stats;
        for now in 0..bound {
            c.tick(now);
        }
        assert_eq!(c.stats, before, "tick acted before the reported bound");
        c.tick(bound);
        assert!(c.stats.refreshes > 0, "bound cycle itself performs the REF");

        // A queued request forces the dense answer.
        let mut c = mk(Box::new(NullTracker), false);
        assert!(c.enqueue(rd(1, 0, 0, 10, 2, 0)));
        assert_eq!(c.next_event(0), 1, "ready request must force dense ticking");

        // A rank-wide sweep block lets the controller skip ahead even with
        // a queued request behind it.
        let mut c = mk(Box::new(SweepOnce { fired: false }), false);
        let trefi = c.dram().timing().t_refi;
        let mut done = Vec::new();
        run(&mut c, 0, trefi + 2000, &mut done);
        assert_eq!(c.stats.reset_sweeps, 1);
        assert!(c.enqueue(rd(7, 0, 0, 5, 0, trefi + 2000)));
        let now = trefi + 2000;
        let bound = c.next_event(now);
        let unblock = c.dram().rank_blocked_until(0);
        assert!(unblock > now + 1000, "sweep must block the rank for a while");
        let refresh_floor =
            c.next_ref.iter().copied().min().unwrap().min(c.next_trefi_hook).min(c.next_trefw);
        assert_eq!(bound, unblock.min(refresh_floor), "skip to unblock or next REF deadline");
        assert!(bound > now + 1, "blocked backlog must not force dense ticking");
    }

    #[test]
    fn writes_drain_without_completions() {
        let mut c = mk(Box::new(NullTracker), false);
        let d = DramAddr::new(0, 0, 1, 1, 77, 0);
        let w = MemRequest::new(5, SourceId(0), AccessKind::Write, PhysAddr(0), d, 0);
        assert!(c.enqueue(w));
        let mut done = Vec::new();
        run(&mut c, 0, 3000, &mut done);
        assert!(done.is_empty(), "writes never produce completions");
        assert_eq!(c.stats.writes, 1);
    }
}
