//! Channel shards: the unit of parallelism for multi-channel runs.
//!
//! A [`ChannelShard`] owns everything on the memory side of one channel —
//! the [`ChannelController`], its [`dram::DramChannel`], the channel's
//! RowHammer tracker, and the per-channel completion/event buffers — and
//! exposes the narrow interface the system layer steps it through:
//! [`ChannelShard::inject`] during the core phase,
//! [`ChannelShard::advance_to`] during the memory phase. Nothing inside a
//! shard is shared: the executor may move the whole box to a worker
//! thread, advance it, and move it back, with no locking and no aliasing.
//!
//! # The rendezvous / lookahead contract
//!
//! The system splits every bus cycle `t` into two phases:
//!
//! 1. **Memory phase**: every shard is advanced through cycle `t`
//!    (concurrently, when a worker pool is attached). Each shard ticks
//!    its controller and collects the demand-read completions falling due
//!    at or before `t` into its private buffer.
//! 2. **Core phase** (sequential): the coordinator drains each shard's
//!    completion buffer *in channel-index order* (within a shard,
//!    completions pop in `(due cycle, id)` order), delivers them to the
//!    cores, then steps the cores, which inject new requests into shards
//!    via [`ChannelShard::inject`].
//!
//! This is deterministic — the merge order is fixed, independent of
//! thread interleaving — and it is *safe* to run phase 1 concurrently
//! because shards never talk to each other and because of the lookahead
//! bound ([`sim_core::sched::NextEvent::min_inject_latency`]): a request
//! injected during the core phase of cycle `t` cannot complete at or
//! before `t + tCL + tBL`, so the completion set phase 1 collects is
//! fully determined before the phase starts. The DDR5 controller
//! advertises the row-hit floor `tCL + tBL` (a cold row additionally
//! pays tRCD) and asserts it against every completion it schedules.
//!
//! Telemetry window boundaries remain the hard global barrier: the
//! system only samples per-channel statistics between cycles, when every
//! shard is home and quiescent.

use sim_core::req::MemRequest;
use sim_core::sched::NextEvent;
use sim_core::time::Cycle;

use crate::ChannelController;

/// One channel's isolated memory domain: controller + DRAM + tracker +
/// per-channel buffers, stepped through the two-phase protocol described
/// in the [module docs](self).
pub struct ChannelShard {
    ctrl: ChannelController,
    /// Demand-read completions collected by [`ChannelShard::advance_to`],
    /// awaiting the coordinator's in-order drain.
    completions: Vec<u64>,
    /// Memory-phase calls that ticked the controller.
    ticks: u64,
    /// Memory-phase calls elided because the decision bound proved the
    /// cycle a no-op for this channel.
    idle_skips: u64,
}

impl ChannelShard {
    /// Wraps a controller into a shard.
    pub fn new(ctrl: ChannelController) -> Self {
        Self { ctrl, completions: Vec::new(), ticks: 0, idle_skips: 0 }
    }

    /// Core-phase entry point: enqueues a demand request. Returns false
    /// (and drops the request) when the matching queue is full — the
    /// caller must retry, exactly as with
    /// [`ChannelController::enqueue`].
    #[inline]
    pub fn inject(&mut self, req: MemRequest) -> bool {
        self.ctrl.enqueue(req)
    }

    /// Memory-phase entry point: advances the shard through bus cycle
    /// `now`, collecting every demand-read completion due at or before
    /// `now` into the shard's private buffer (drained in channel order by
    /// [`ChannelShard::drain_completions_into`]).
    ///
    /// When the controller's cached decision bound proves the cycle a
    /// no-op — nothing schedulable, no completion due, no refresh or
    /// tracker deadline — the call returns in O(1) without ticking. This
    /// gate is exact (a non-naive tick before the bound is itself an
    /// early return), so sequential and sharded execution agree
    /// bit-for-bit with the dense reference loop.
    #[inline]
    pub fn advance_to(&mut self, now: Cycle) {
        if self.ctrl.next_event(now) > now {
            self.idle_skips += 1;
            return;
        }
        self.ctrl.tick(now);
        self.ticks += 1;
        self.ctrl.pop_completions(now, &mut self.completions);
    }

    /// Moves the buffered completions (in `(due cycle, id)` pop order)
    /// into `out`, clearing the buffer.
    #[inline]
    pub fn drain_completions_into(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.completions);
    }

    /// `(ticked, elided)` memory-phase call counts: how often this shard
    /// actually stepped vs. how often the decision bound skipped the
    /// cycle. The basis of the per-shard step fractions
    /// `System::engine_stats` reports.
    #[inline]
    pub fn step_counts(&self) -> (u64, u64) {
        (self.ticks, self.idle_skips)
    }

    /// The wrapped controller (stats, tracker, DRAM readout, queue
    /// occupancy — everything outside the two-phase hot path).
    #[inline]
    pub fn controller(&self) -> &ChannelController {
        &self.ctrl
    }

    /// Mutable access to the wrapped controller (event-capture plumbing,
    /// naive-scan switching, window stat resets).
    #[inline]
    pub fn controller_mut(&mut self) -> &mut ChannelController {
        &mut self.ctrl
    }
}

impl std::fmt::Debug for ChannelShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelShard")
            .field("ctrl", &self.ctrl)
            .field("pending_completions", &self.completions.len())
            .field("ticks", &self.ticks)
            .field("idle_skips", &self.idle_skips)
            .finish()
    }
}

impl NextEvent for ChannelShard {
    #[inline]
    fn next_event(&self, now: Cycle) -> Cycle {
        if !self.completions.is_empty() {
            // Undelivered completions demand the coordinator's attention
            // this very cycle regardless of controller state.
            return now;
        }
        self.ctrl.next_event(now)
    }

    #[inline]
    fn min_inject_latency(&self) -> Cycle {
        self.ctrl.min_inject_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtrlConfig;
    use dram::{DramChannel, TimingParams};
    use sim_core::addr::{DramAddr, Geometry, PhysAddr};
    use sim_core::config::MitigationKind;
    use sim_core::req::{AccessKind, SourceId};
    use sim_core::tracker::NullTracker;

    fn shard() -> ChannelShard {
        let dram = DramChannel::new(Geometry::paper_baseline(), TimingParams::ddr5_6400());
        let cfg = CtrlConfig::new(500, 1, MitigationKind::Vrr);
        ChannelShard::new(ChannelController::new(0, dram, Box::new(NullTracker), cfg))
    }

    fn rd(id: u64, row: u32, at: Cycle) -> MemRequest {
        let d = DramAddr::new(0, 0, 0, 0, row, 0);
        MemRequest::new(id, SourceId(0), AccessKind::Read, PhysAddr(0), d, at)
    }

    #[test]
    fn shard_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ChannelShard>();
        assert_send::<Box<ChannelShard>>();
    }

    #[test]
    fn inject_advance_collects_completions_in_order() {
        let mut s = shard();
        assert!(s.inject(rd(1, 10, 0)));
        assert!(s.inject(rd(2, 10, 0)));
        for now in 0..500 {
            s.advance_to(now);
        }
        let mut out = Vec::new();
        s.drain_completions_into(&mut out);
        assert_eq!(out, vec![1, 2], "pop order is (due cycle, id)");
        let mut again = Vec::new();
        s.drain_completions_into(&mut again);
        assert!(again.is_empty(), "drain clears the buffer");
    }

    #[test]
    fn completions_respect_the_lookahead_bound() {
        let mut s = shard();
        let floor = s.min_inject_latency();
        let timing = *s.controller().dram().timing();
        assert_eq!(floor, timing.t_cl + timing.t_bl);
        assert!(floor >= 1, "the bound must rule out same-cycle completion");
        let inject_at = 7;
        for now in 0..inject_at {
            s.advance_to(now);
        }
        assert!(s.inject(rd(9, 42, inject_at)));
        let mut done_at = None;
        for now in inject_at..inject_at + 4000 {
            s.advance_to(now);
            let mut out = Vec::new();
            s.drain_completions_into(&mut out);
            if !out.is_empty() {
                done_at = Some(now);
                break;
            }
        }
        let done_at = done_at.expect("read completes");
        assert!(done_at >= inject_at + floor, "{done_at} < {inject_at} + {floor}");
    }

    #[test]
    fn idle_cycles_are_elided_and_counted() {
        let mut s = shard();
        for now in 0..100 {
            s.advance_to(now);
        }
        let (ticks, skips) = s.step_counts();
        assert_eq!(ticks + skips, 100);
        assert!(skips > 90, "an idle shard must elide almost every cycle: {skips}");
        // With queued work the shard reports `now` and must tick.
        assert!(s.inject(rd(1, 3, 100)));
        assert_eq!(s.next_event(100), 100);
        s.advance_to(100);
        let (ticks2, _) = s.step_counts();
        assert!(ticks2 > ticks);
    }

    #[test]
    fn undelivered_completions_pin_next_event() {
        let mut s = shard();
        assert!(s.inject(rd(1, 10, 0)));
        for now in 0..500 {
            s.advance_to(now);
        }
        // Buffer holds the completion: the shard cannot be skipped past.
        assert_eq!(s.next_event(500), 500);
        let mut out = Vec::new();
        s.drain_completions_into(&mut out);
        assert_eq!(out, vec![1]);
        assert!(s.next_event(500) > 500, "drained and quiet: skippable again");
    }
}
