//! Low-Latency Block Cipher (LLBC).
//!
//! DAPPER randomises row-to-group mappings with a low-latency block cipher
//! over the n-bit per-rank row-address domain (n = 21 for the baseline's 2M
//! rows), in the mould of CEASER's LLBC and SCARF. The construction here is a
//! keyed **4-round unbalanced Feistel network**: a bijection on `0..2^n`
//! whose forward and inverse permutations are both cheap, exactly the
//! properties the paper's security analysis assumes (Section V-B).
//!
//! Keys are generated at boot and re-drawn every rekey period (tREFW for
//! DAPPER-H, t_reset for DAPPER-S) from a seeded PRNG standing in for the
//! PRNG/TRNG the paper mentions.
//!
//! # Example
//!
//! ```
//! use llbc::Llbc;
//!
//! let cipher = Llbc::new(21, 0xC0FFEE);
//! let row = 0x12345u64;
//! let hashed = cipher.encrypt(row);
//! assert!(hashed < (1 << 21));
//! assert_eq!(cipher.decrypt(hashed), row);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim_core::rng::SplitMix64;

/// Number of Feistel rounds (the paper uses a four-round LLBC).
pub const ROUNDS: usize = 4;

/// A keyed bijection over the `n`-bit integers, `8 <= n <= 40`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Llbc {
    bits: u32,
    left_bits: u32,
    right_bits: u32,
    keys: [u64; ROUNDS],
}

impl Llbc {
    /// Creates a cipher over `0..2^bits` with round keys derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `8..=40`.
    pub fn new(bits: u32, seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut keys = [0u64; ROUNDS];
        for k in &mut keys {
            *k = sm.next_u64();
        }
        Self::with_keys(bits, keys)
    }

    /// Creates a cipher with explicit round keys (used by tests and by
    /// rekeying paths that manage their own key registers).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `8..=40`.
    pub fn with_keys(bits: u32, keys: [u64; ROUNDS]) -> Self {
        assert!((8..=40).contains(&bits), "LLBC supports 8..=40 bit domains, got {bits}");
        Self { bits, left_bits: bits.div_ceil(2), right_bits: bits / 2, keys }
    }

    /// The domain width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The domain size `2^bits`.
    pub fn domain(&self) -> u64 {
        1u64 << self.bits
    }

    /// The round keys (for inspection; e.g. storage accounting).
    pub fn keys(&self) -> [u64; ROUNDS] {
        self.keys
    }

    #[inline]
    fn round_fn(key: u64, half: u64, out_bits: u32) -> u64 {
        // SplitMix64 finaliser as the PRF core: cheap, well mixed.
        let mut z = half ^ key;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z & ((1u64 << out_bits) - 1)
    }

    /// Encrypts an `n`-bit value (the "hashed address" Y* of the paper).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is out of domain.
    #[inline]
    pub fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain(), "plaintext {x:#x} outside {}-bit domain", self.bits);
        // Unbalanced Feistel: the halves' widths (a, b) swap each round;
        // after an even number of rounds the split returns to (a, b).
        let mut l = x >> self.right_bits;
        let mut r = x & ((1u64 << self.right_bits) - 1);
        let mut lb = self.left_bits;
        let mut rb = self.right_bits;
        for key in self.keys {
            // (L:lb, R:rb) -> (R:rb, L ^ F(R):lb); new widths are (rb, lb).
            let f = Self::round_fn(key, r, lb);
            let nl = r;
            let nr = l ^ f;
            l = nl;
            r = nr;
            std::mem::swap(&mut lb, &mut rb);
        }
        (l << rb) | r
    }

    /// Decrypts an `n`-bit value (recovers the original row address for
    /// mitigative refreshes).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `y` is out of domain.
    #[inline]
    pub fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain(), "ciphertext {y:#x} outside {}-bit domain", self.bits);
        // Record the left-width used by each forward round so we can replay
        // the rounds backwards.
        let mut left_widths = [0u32; ROUNDS];
        let mut lb = self.left_bits;
        let mut rb = self.right_bits;
        for w in &mut left_widths {
            *w = lb;
            std::mem::swap(&mut lb, &mut rb);
        }
        // ROUNDS is even, so the final layout equals the initial one.
        let mut l = y >> self.right_bits;
        let mut r = y & ((1u64 << self.right_bits) - 1);
        for i in (0..ROUNDS).rev() {
            // Forward round i: (L, R) -> (R, L ^ F(R)). Hence the inputs were
            // R = current L and L = current R ^ F(current L).
            let prev_r = l;
            let f = Self::round_fn(self.keys[i], prev_r, left_widths[i]);
            let prev_l = r ^ f;
            l = prev_l;
            r = prev_r;
        }
        (l << self.right_bits) | r
    }
}

/// Manages the periodically refreshed key registers of one LLBC engine.
///
/// DAPPER-S refreshes keys every t_reset; DAPPER-H every tREFW. Each call to
/// [`KeySchedule::rekey`] draws fresh round keys from the PRNG stream.
///
/// # Example
///
/// ```
/// use llbc::KeySchedule;
///
/// let mut ks = KeySchedule::new(21, 1);
/// let y0 = ks.cipher().encrypt(7);
/// ks.rekey();
/// let y1 = ks.cipher().encrypt(7);
/// assert_eq!(ks.generation(), 1);
/// // Overwhelmingly likely to differ under fresh keys:
/// assert_ne!(y0, y1);
/// ```
#[derive(Debug, Clone)]
pub struct KeySchedule {
    bits: u32,
    prng: SplitMix64,
    current: Llbc,
    generation: u64,
}

impl KeySchedule {
    /// Creates a schedule seeded at boot time.
    pub fn new(bits: u32, seed: u64) -> Self {
        let mut prng = SplitMix64::new(seed);
        let keys = [prng.next_u64(), prng.next_u64(), prng.next_u64(), prng.next_u64()];
        Self { bits, prng, current: Llbc::with_keys(bits, keys), generation: 0 }
    }

    /// The active cipher.
    pub fn cipher(&self) -> &Llbc {
        &self.current
    }

    /// Replaces the round keys with fresh ones and bumps the generation.
    pub fn rekey(&mut self) {
        let keys = [
            self.prng.next_u64(),
            self.prng.next_u64(),
            self.prng.next_u64(),
            self.prng.next_u64(),
        ];
        self.current = Llbc::with_keys(self.bits, keys);
        self.generation += 1;
    }

    /// Number of rekeys performed since boot.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_21_bits() {
        let c = Llbc::new(21, 42);
        for x in [0u64, 1, 0x1F_FFFF, 0x12345, 0xABCDE] {
            assert_eq!(c.decrypt(c.encrypt(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn exhaustive_bijection_12_bits() {
        let c = Llbc::new(12, 7);
        let mut seen = vec![false; 1 << 12];
        for x in 0..(1u64 << 12) {
            let y = c.encrypt(x) as usize;
            assert!(!seen[y], "collision at {y:#x}");
            seen[y] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn exhaustive_bijection_odd_width_13_bits() {
        let c = Llbc::new(13, 19);
        let mut seen = vec![false; 1 << 13];
        for x in 0..(1u64 << 13) {
            let y = c.encrypt(x) as usize;
            assert!(!seen[y], "collision at {y:#x}");
            seen[y] = true;
            assert_eq!(c.decrypt(y as u64), x);
        }
    }

    #[test]
    fn different_keys_give_different_permutations() {
        let a = Llbc::new(21, 1);
        let b = Llbc::new(21, 2);
        let differing = (0..1024u64).filter(|&x| a.encrypt(x) != b.encrypt(x)).count();
        assert!(differing > 1000, "only {differing}/1024 differ");
    }

    #[test]
    fn output_distribution_spreads_groups() {
        // Rows that share a group pre-hash should scatter across groups
        // post-hash (this is the property DAPPER-S relies on).
        let c = Llbc::new(21, 99);
        let group = |y: u64| y >> 8; // 256-row groups
        let mut groups = std::collections::HashSet::new();
        for x in 0..256u64 {
            groups.insert(group(c.encrypt(x)));
        }
        assert!(groups.len() > 200, "256 sequential rows landed in {} groups", groups.len());
    }

    #[test]
    fn rekey_changes_mapping_and_generation() {
        let mut ks = KeySchedule::new(21, 1234);
        let before: Vec<u64> = (0..64).map(|x| ks.cipher().encrypt(x)).collect();
        assert_eq!(ks.generation(), 0);
        ks.rekey();
        assert_eq!(ks.generation(), 1);
        let after: Vec<u64> = (0..64).map(|x| ks.cipher().encrypt(x)).collect();
        assert_ne!(before, after);
        // Still a bijection on a sample.
        let mut set = std::collections::HashSet::new();
        for x in 0..4096u64 {
            assert!(set.insert(ks.cipher().encrypt(x)));
        }
    }

    #[test]
    #[should_panic(expected = "8..=40")]
    fn rejects_tiny_domains() {
        let _ = Llbc::new(4, 0);
    }
}

// Property tests, run as deterministic seeded sweeps (the container has no
// crates.io access, so `proptest` is replaced by the workspace's own PRNG;
// the sampled space matches the original strategies).
#[cfg(test)]
mod proptests {
    use super::*;
    use sim_core::rng::Xoshiro256;

    #[test]
    fn prop_round_trip() {
        let mut rng = Xoshiro256::seed_from(0x11bc_0001);
        for _ in 0..500 {
            let bits = 8 + rng.gen_range(33) as u32; // 8..=40
            let c = Llbc::new(bits, rng.next_u64());
            let x = rng.next_u64() & (c.domain() - 1);
            assert_eq!(c.decrypt(c.encrypt(x)), x, "bits={bits} x={x:#x}");
        }
    }

    #[test]
    fn prop_encrypt_stays_in_domain() {
        let mut rng = Xoshiro256::seed_from(0x11bc_0002);
        for _ in 0..500 {
            let bits = 8 + rng.gen_range(33) as u32; // 8..=40
            let c = Llbc::new(bits, rng.next_u64());
            let x = rng.next_u64() & (c.domain() - 1);
            assert!(c.encrypt(x) < c.domain(), "bits={bits} x={x:#x}");
        }
    }

    #[test]
    fn prop_injective_on_pairs() {
        let mut rng = Xoshiro256::seed_from(0x11bc_0003);
        for _ in 0..500 {
            let c = Llbc::new(21, rng.next_u64());
            let a = rng.next_u64() & (c.domain() - 1);
            let b = rng.next_u64() & (c.domain() - 1);
            if a != b {
                assert_ne!(c.encrypt(a), c.encrypt(b), "a={a:#x} b={b:#x}");
            }
        }
    }
}
