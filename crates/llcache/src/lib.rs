//! Shared last-level cache model.
//!
//! A set-associative cache with LRU or random replacement and **way
//! reservation**: START dedicates half of the LLC ways to RowHammer
//! counters, shrinking the effective capacity seen by demand accesses
//! (Section III-A of the paper). Reserved ways are simply excluded from the
//! demand lookup; the START tracker models the counter contents itself.
//!
//! The model is hit/miss + writeback only (no MSHRs): the core model bounds
//! outstanding misses through its instruction window, which is the same
//! abstraction Ramulator's OoO frontend uses.
//!
//! # Example
//!
//! ```
//! use llcache::{Llc, LookupResult};
//! use sim_core::config::LlcConfig;
//!
//! let mut llc = Llc::new(LlcConfig::paper_baseline(), 1);
//! match llc.access(0x4000, false) {
//!     LookupResult::Miss { writeback: None } => {}
//!     other => panic!("cold access must miss cleanly: {other:?}"),
//! }
//! assert!(matches!(llc.access(0x4000, false), LookupResult::Hit));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim_core::config::LlcConfig;
use sim_core::rng::Xoshiro256;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent; if a dirty victim was evicted its line address is
    /// returned so the caller can issue a writeback.
    Miss {
        /// Dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Replacement policy for demand ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (default).
    Lru,
    /// Uniform random victim.
    Random,
}

/// The shared LLC.
#[derive(Debug, Clone)]
pub struct Llc {
    cfg: LlcConfig,
    sets: u64,
    lines: Vec<Line>,
    policy: Replacement,
    rng: Xoshiro256,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates an empty cache. `seed` drives random replacement only.
    ///
    /// # Panics
    ///
    /// Panics if the configuration reserves every way.
    pub fn new(cfg: LlcConfig, seed: u64) -> Self {
        assert!(cfg.reserved_ways < cfg.ways, "at least one way must remain for demand accesses");
        let sets = cfg.sets();
        Self {
            cfg,
            sets,
            lines: vec![Line::default(); (sets * cfg.ways as u64) as usize],
            policy: Replacement::Lru,
            rng: Xoshiro256::seed_from(seed),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Switches the replacement policy.
    pub fn with_policy(mut self, policy: Replacement) -> Self {
        self.policy = policy;
        self
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Demand ways available per set.
    pub fn demand_ways(&self) -> u16 {
        self.cfg.ways - self.cfg.reserved_ways
    }

    /// (hits, misses) since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Demand-access hit rate; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> u64 {
        line_addr % self.sets
    }

    #[inline]
    fn tag(&self, line_addr: u64) -> u64 {
        line_addr / self.sets
    }

    /// Looks up the 64-byte line containing byte address `addr` (demand
    /// access), allocating on miss. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LookupResult {
        let line_addr = addr >> 6;
        self.access_line(line_addr, is_write)
    }

    /// Looks up by line address directly.
    pub fn access_line(&mut self, line_addr: u64, is_write: bool) -> LookupResult {
        self.tick += 1;
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let reserved = self.cfg.reserved_ways as usize;
        let ways = self.cfg.ways as usize;
        let base = (set * self.cfg.ways as u64) as usize;

        // Hit path: scan the demand ways.
        for w in reserved..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= is_write;
                self.hits += 1;
                return LookupResult::Hit;
            }
        }
        self.misses += 1;

        // Miss: find a victim among demand ways (invalid first).
        let victim_way = {
            let mut invalid = None;
            let mut lru_way = reserved;
            let mut lru_min = u64::MAX;
            for w in reserved..ways {
                let line = &self.lines[base + w];
                if !line.valid {
                    invalid = Some(w);
                    break;
                }
                if line.lru < lru_min {
                    lru_min = line.lru;
                    lru_way = w;
                }
            }
            match (invalid, self.policy) {
                (Some(w), _) => w,
                (None, Replacement::Lru) => lru_way,
                (None, Replacement::Random) => {
                    reserved + self.rng.gen_range((ways - reserved) as u64) as usize
                }
            }
        };

        let victim = self.lines[base + victim_way];
        let writeback = if victim.valid && victim.dirty {
            // Reconstruct the victim's line address from tag and set.
            Some(victim.tag * self.sets + set)
        } else {
            None
        };
        self.lines[base + victim_way] = Line { tag, valid: true, dirty: is_write, lru: self.tick };
        LookupResult::Miss { writeback }
    }

    /// Invalidates everything (used when reconfiguring reservations).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::config::LlcConfig;

    fn small_cfg(reserved: u16) -> LlcConfig {
        // 4 sets x 4 ways x 64 B = 1 KB.
        LlcConfig { capacity_bytes: 1024, ways: 4, line_bytes: 64, reserved_ways: reserved }
    }

    #[test]
    fn hit_after_fill() {
        let mut c = Llc::new(small_cfg(0), 0);
        assert!(matches!(c.access(0x100, false), LookupResult::Miss { .. }));
        assert_eq!(c.access(0x100, false), LookupResult::Hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Llc::new(small_cfg(0), 0);
        // Lines 0,4,8,12 all map to set 0 (4 sets).
        for i in 0..4u64 {
            c.access_line(i * 4, false);
        }
        // Touch line 0 so line 4 becomes LRU.
        c.access_line(0, false);
        // Insert a fifth line; line 4 must be evicted.
        c.access_line(16, false);
        assert_eq!(c.access_line(0, false), LookupResult::Hit);
        assert!(matches!(c.access_line(4, false), LookupResult::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Llc::new(small_cfg(0), 0);
        c.access_line(0, true); // dirty
        for i in 1..=4u64 {
            let r = c.access_line(i * 4, false);
            if i == 4 {
                assert_eq!(r, LookupResult::Miss { writeback: Some(0) });
            }
        }
    }

    #[test]
    fn reservation_shrinks_capacity() {
        let mut full = Llc::new(small_cfg(0), 0);
        let mut half = Llc::new(small_cfg(2), 0);
        // Working set of 4 lines in one set: fits in 4 ways, not in 2.
        for round in 0..3 {
            for i in 0..4u64 {
                let rf = full.access_line(i * 4, false);
                let rh = half.access_line(i * 4, false);
                if round > 0 {
                    assert_eq!(rf, LookupResult::Hit);
                    assert!(matches!(rh, LookupResult::Miss { .. }));
                }
            }
        }
        assert!(half.hit_rate() < full.hit_rate());
    }

    #[test]
    fn paper_llc_has_8192_sets() {
        let c = Llc::new(LlcConfig::paper_baseline(), 0);
        assert_eq!(c.config().sets(), 8192);
        assert_eq!(c.demand_ways(), 16);
    }

    #[test]
    fn random_policy_still_caches() {
        let mut c = Llc::new(small_cfg(0), 7).with_policy(Replacement::Random);
        c.access_line(0, false);
        assert_eq!(c.access_line(0, false), LookupResult::Hit);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn reserving_all_ways_panics() {
        let _ = Llc::new(small_cfg(4), 0);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Llc::new(small_cfg(0), 0);
        c.access_line(0, false);
        c.flush();
        assert!(matches!(c.access_line(0, false), LookupResult::Miss { .. }));
    }
}

// Property tests, run as deterministic seeded sweeps (the container has no
// crates.io access, so `proptest` is replaced by the workspace's own PRNG;
// the sampled space matches the original strategies).
#[cfg(test)]
mod proptests {
    use super::*;
    use sim_core::rng::Xoshiro256;

    /// A line just inserted must hit on an immediately repeated access.
    #[test]
    fn prop_insert_then_hit() {
        let mut rng = Xoshiro256::seed_from(0x11c0_0001);
        for _ in 0..64 {
            let mut c = Llc::new(
                sim_core::config::LlcConfig {
                    capacity_bytes: 16 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    reserved_ways: 0,
                },
                1,
            );
            let n = 1 + rng.gen_range(199) as usize; // 1..200
            for _ in 0..n {
                let a = rng.gen_range(1_000_000);
                c.access_line(a, false);
                assert_eq!(c.access_line(a, false), LookupResult::Hit, "addr {a:#x}");
            }
        }
    }

    /// Hit + miss counts always equal total accesses.
    #[test]
    fn prop_counts_balance() {
        let mut rng = Xoshiro256::seed_from(0x11c0_0002);
        for _ in 0..64 {
            let mut c = Llc::new(
                sim_core::config::LlcConfig {
                    capacity_bytes: 8 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    reserved_ways: 2,
                },
                2,
            );
            let n = 1 + rng.gen_range(299); // 1..300
            for _ in 0..n {
                c.access_line(rng.gen_range(4096), false);
            }
            let (h, m) = c.hit_miss();
            assert_eq!(h + m, n);
        }
    }
}
